//! # baselines
//!
//! Baseline schedulers for independent monotone malleable tasks, implementing
//! the prior work the paper positions itself against (§1):
//!
//! * **Turek–Wolf–Yu two-phase method** ([`two_phase`]): select an allotment
//!   minimising the trivial lower bound `Λ(α) = max(W(α)/m, t_max(α))`, then
//!   schedule the resulting rigid tasks with a non-malleable heuristic.  TWY
//!   proved that any ρ-approximation for the rigid problem transfers to the
//!   malleable problem; Ludwig improved the allotment-selection complexity and
//!   instantiated the rigid phase with Steinberg's 2-approximate strip
//!   packing.  Our rigid phase offers the classical level algorithms
//!   (FFDH / NFDH) and contiguous list scheduling — the substitution for
//!   Steinberg is recorded in `DESIGN.md`.
//! * **Gang scheduling** ([`naive::gang_schedule`]): every task runs on the
//!   whole machine, one after another (optimal for perfectly parallel tasks,
//!   terrible for sequential ones).
//! * **Sequential LPT** ([`naive::sequential_lpt`]): every task runs on one
//!   processor, scheduled by Graham's LPT rule (optimal-ish for sequential
//!   tasks, terrible for wide ones).
//!
//! All baselines return plain [`malleable_core::Schedule`]s so they can be
//! validated by the simulator and compared in the benchmark harness.

pub mod naive;
pub mod two_phase;

pub use naive::{gang_schedule, sequential_lpt};
pub use two_phase::{ludwig, twy_allotment, RigidScheduler, TwoPhaseScheduler};
