//! Naive baselines: gang scheduling and sequential LPT.
//!
//! These two extremes bracket the behaviour of malleable schedulers: gang
//! scheduling is optimal when every task scales perfectly (it realises the
//! area bound) and arbitrarily bad for sequential tasks; sequential LPT is
//! within `4/3` of the optimum when no task can use more than one processor
//! and arbitrarily bad for highly parallel tasks.  The benchmark harness uses
//! them as sanity anchors for the comparison experiments.

use malleable_core::allotment::Allotment;
use malleable_core::list::{schedule_rigid, ListOrder};
use malleable_core::{Instance, ProcessorRange, Schedule, ScheduledTask};

/// Gang scheduling: every task occupies the whole machine; tasks run back to
/// back in decreasing order of their full-machine execution time.
pub fn gang_schedule(instance: &Instance) -> Schedule {
    let m = instance.processors();
    let mut order: Vec<usize> = (0..instance.task_count()).collect();
    order.sort_by(|&a, &b| {
        instance
            .time(b, m)
            .partial_cmp(&instance.time(a, m))
            .unwrap()
    });
    let mut schedule = Schedule::new(m);
    let mut clock = 0.0;
    for task in order {
        let duration = instance.time(task, m);
        schedule.push(ScheduledTask {
            task,
            start: clock,
            duration,
            processors: ProcessorRange::new(0, m),
        });
        clock += duration;
    }
    schedule
}

/// Sequential LPT: every task runs on a single processor, scheduled greedily
/// in decreasing order of sequential time (Graham's LPT rule).
pub fn sequential_lpt(instance: &Instance) -> Schedule {
    let allotment = Allotment::sequential(instance);
    schedule_rigid(instance, &allotment, ListOrder::DecreasingAllottedTime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::bounds;
    use malleable_core::SpeedupProfile;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::linear(4.0, 4).unwrap(),
                SpeedupProfile::sequential(1.5).unwrap(),
                SpeedupProfile::new(vec![2.0, 1.2, 1.0, 0.9]).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn gang_schedule_is_valid_and_serialises_tasks() {
        let inst = instance();
        let sched = gang_schedule(&inst);
        assert!(sched.validate(&inst).is_ok());
        // Makespan is the sum of the full-machine times.
        let expected: f64 = (0..3).map(|t| inst.time(t, 4)).sum();
        assert!((sched.makespan() - expected).abs() < 1e-9);
        // Tasks never overlap in time.
        let mut finishes: Vec<f64> = sched.entries().iter().map(|e| e.finish()).collect();
        finishes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(finishes.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn gang_is_optimal_for_perfectly_parallel_tasks() {
        let inst = Instance::from_profiles(
            vec![
                SpeedupProfile::linear(4.0, 4).unwrap(),
                SpeedupProfile::linear(2.0, 4).unwrap(),
            ],
            4,
        )
        .unwrap();
        let sched = gang_schedule(&inst);
        assert!((sched.makespan() - bounds::area_bound(&inst)).abs() < 1e-9);
    }

    #[test]
    fn sequential_lpt_is_valid_and_respects_graham_bound() {
        let inst = instance();
        let sched = sequential_lpt(&inst);
        assert!(sched.validate(&inst).is_ok());
        let total: f64 = (0..3).map(|t| inst.time(t, 1)).sum();
        let tmax = (0..3).map(|t| inst.time(t, 1)).fold(0.0, f64::max);
        assert!(sched.makespan() <= total / 4.0 + tmax + 1e-9);
    }

    #[test]
    fn baselines_bracket_each_other_on_skewed_instances() {
        // Perfectly parallel instance: gang wins.  Sequential instance: LPT wins.
        let parallel = Instance::from_profiles(
            (0..6)
                .map(|_| SpeedupProfile::linear(4.0, 8).unwrap())
                .collect(),
            8,
        )
        .unwrap();
        assert!(gang_schedule(&parallel).makespan() < sequential_lpt(&parallel).makespan());

        let sequential = Instance::from_profiles(
            (0..8)
                .map(|_| SpeedupProfile::sequential(1.0).unwrap())
                .collect(),
            8,
        )
        .unwrap();
        assert!(sequential_lpt(&sequential).makespan() < gang_schedule(&sequential).makespan());
    }
}
