//! The Turek–Wolf–Yu / Ludwig two-phase method.
//!
//! Phase 1 — **allotment selection**: choose a processor count for every task
//! so that the trivial lower bound of the induced rigid instance,
//! `Λ(α) = max(W(α)/m, max_j t_j(α_j))`, is minimised.  Turek, Wolf and Yu
//! observed that it suffices to consider, for every candidate value `τ` of the
//! maximal execution time, the minimal-work allotment with `t_j(α_j) ≤ τ` —
//! which under the monotone assumption is exactly the canonical allotment for
//! the deadline `τ`.  The candidate values are the `O(n·m)` distinct profile
//! entries; Ludwig's contribution was to organise this search efficiently.
//!
//! Phase 2 — **rigid scheduling**: schedule the fixed-allotment tasks with a
//! non-malleable heuristic.  Ludwig used Steinberg's strip-packing algorithm
//! (absolute guarantee 2); we provide the classical level algorithms FFDH and
//! NFDH and contiguous list scheduling instead, which are the standard
//! practical stand-ins (the substitution is documented in `DESIGN.md` and its
//! effect measured in `EXPERIMENTS.md`).

use malleable_core::allotment::Allotment;
use malleable_core::canonical::CanonicalAllotment;
use malleable_core::list::{schedule_rigid, ListOrder};
use malleable_core::mrt::level_packing_schedule;
use malleable_core::{Instance, ProcessorRange, Result, Schedule, ScheduledTask};
use packing::rect::Rect;
use packing::strip::nfdh;

/// The rigid (phase 2) scheduler used on the selected allotment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RigidScheduler {
    /// First Fit Decreasing Height level packing (the default; closest in
    /// spirit and guarantee to Ludwig's Steinberg-based phase).
    Ffdh,
    /// Next Fit Decreasing Height level packing.
    Nfdh,
    /// Contiguous list scheduling by decreasing execution time.
    List,
}

/// A configurable two-phase scheduler.
#[derive(Debug, Clone, Copy)]
pub struct TwoPhaseScheduler {
    /// Which rigid scheduler runs in phase 2.
    pub rigid: RigidScheduler,
}

impl Default for TwoPhaseScheduler {
    fn default() -> Self {
        TwoPhaseScheduler {
            rigid: RigidScheduler::Ffdh,
        }
    }
}

/// Phase 1: the TWY/Ludwig allotment selection.
///
/// Returns the allotment minimising `Λ(α) = max(W(α)/m, t_max(α))` among all
/// canonical allotments for candidate deadlines, together with the achieved
/// bound value.
pub fn twy_allotment(instance: &Instance) -> Result<(Allotment, f64)> {
    let m = instance.processors() as f64;
    // Candidate deadlines: every distinct execution time of every task, which
    // is where t_max(α) can change value.
    let mut candidates: Vec<f64> = Vec::new();
    for (_, task) in instance.iter() {
        candidates.extend_from_slice(task.profile.times());
    }
    candidates.sort_by(|a, b| a.partial_cmp(b).unwrap());
    candidates.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let mut best: Option<(Allotment, f64)> = None;
    for &tau in &candidates {
        let allotment = match Allotment::canonical(instance, tau) {
            Ok(a) => a,
            Err(_) => continue, // some task cannot meet τ at all
        };
        let bound = (allotment.total_work(instance) / m).max(allotment.max_time(instance));
        match &best {
            Some((_, current)) if *current <= bound => {}
            _ => best = Some((allotment, bound)),
        }
    }
    best.ok_or(malleable_core::Error::NoFeasibleSchedule)
}

impl TwoPhaseScheduler {
    /// Run both phases and return the schedule.
    pub fn schedule(&self, instance: &Instance) -> Result<Schedule> {
        let (allotment, _) = twy_allotment(instance)?;
        Ok(self.schedule_rigid_phase(instance, &allotment))
    }

    /// Run only phase 2 on a given allotment (used by tests and ablations).
    pub fn schedule_rigid_phase(&self, instance: &Instance, allotment: &Allotment) -> Schedule {
        match self.rigid {
            RigidScheduler::List => {
                schedule_rigid(instance, allotment, ListOrder::DecreasingAllottedTime)
            }
            RigidScheduler::Ffdh => {
                // Reuse the canonical-allotment level packer from the core
                // crate by wrapping the chosen allotment in the canonical
                // data structure at its own deadline.
                let canonical = CanonicalAllotment::from_allotment(
                    instance,
                    allotment.clone(),
                    allotment.max_time(instance),
                );
                level_packing_schedule(instance, &canonical)
            }
            RigidScheduler::Nfdh => {
                let m = instance.processors();
                let rects: Vec<Rect> = (0..instance.task_count())
                    .map(|t| Rect::new(allotment.processors(t), allotment.time(instance, t)))
                    .collect();
                let packing = nfdh(&rects, m);
                let mut schedule = Schedule::new(m);
                for placement in &packing.placements {
                    let t = placement.index;
                    schedule.push(ScheduledTask {
                        task: t,
                        start: placement.y,
                        duration: allotment.time(instance, t),
                        processors: ProcessorRange::new(placement.x, allotment.processors(t)),
                    });
                }
                schedule
            }
        }
    }
}

/// The Ludwig-style baseline: TWY allotment selection followed by FFDH level
/// packing.  This is the "guarantee 2" practical method the paper improves on.
pub fn ludwig(instance: &Instance) -> Result<Schedule> {
    TwoPhaseScheduler::default().schedule(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::bounds;
    use malleable_core::SpeedupProfile;
    use proptest::prelude::*;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![6.0, 3.2, 2.4, 1.9]).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.7]).unwrap(),
                SpeedupProfile::sequential(1.2).unwrap(),
                SpeedupProfile::linear(4.0, 4).unwrap(),
                SpeedupProfile::sequential(0.4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn allotment_selection_minimises_lambda() {
        let inst = instance();
        let (allotment, bound) = twy_allotment(&inst).unwrap();
        // The bound is a valid lower bound for the rigid instance and no
        // coarser candidate (all sequential, all canonical at UB) beats it.
        let sequential = Allotment::sequential(&inst);
        let seq_bound = (sequential.total_work(&inst) / 4.0).max(sequential.max_time(&inst));
        assert!(bound <= seq_bound + 1e-9);
        assert!(bound >= bounds::area_bound(&inst) - 1e-9);
        assert_eq!(allotment.len(), inst.task_count());
    }

    #[test]
    fn all_rigid_schedulers_produce_valid_schedules() {
        let inst = instance();
        for rigid in [
            RigidScheduler::Ffdh,
            RigidScheduler::Nfdh,
            RigidScheduler::List,
        ] {
            let scheduler = TwoPhaseScheduler { rigid };
            let schedule = scheduler.schedule(&inst).unwrap();
            assert!(
                schedule.validate(&inst).is_ok(),
                "{rigid:?} produced an invalid schedule"
            );
        }
    }

    #[test]
    fn ludwig_baseline_stays_within_factor_three_of_lower_bound() {
        // The theoretical guarantee with Steinberg is 2; with FFDH the proven
        // bound is looser but the observed behaviour on monotone instances is
        // comfortably below 2 — assert a conservative factor here and let the
        // benchmarks report the measured distribution.
        let inst = instance();
        let schedule = ludwig(&inst).unwrap();
        let lb = bounds::lower_bound(&inst);
        assert!(schedule.makespan() <= 3.0 * lb + 1e-9);
    }

    #[test]
    fn two_phase_handles_single_task() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::linear(8.0, 8).unwrap()], 8).unwrap();
        let schedule = ludwig(&inst).unwrap();
        assert!((schedule.makespan() - 1.0).abs() < 1e-9);
    }

    proptest! {
        /// The two-phase baselines always produce valid schedules and stay
        /// within a factor 3 of the certified lower bound on monotone
        /// workloads (the paper's point is that √3 < 2 ≤ their guarantee, not
        /// that they are bad in practice).
        #[test]
        fn two_phase_valid_and_bounded(seed in 0u64..200, n in 2usize..20, m in 2usize..12) {
            let cfg = workload::WorkloadConfig::mixed(n, m, seed);
            let inst = workload::WorkloadGenerator::new(cfg).generate().unwrap();
            let lb = bounds::lower_bound(&inst);
            for rigid in [RigidScheduler::Ffdh, RigidScheduler::Nfdh, RigidScheduler::List] {
                let schedule = TwoPhaseScheduler { rigid }.schedule(&inst).unwrap();
                prop_assert!(schedule.validate(&inst).is_ok());
                prop_assert!(schedule.makespan() <= 3.0 * lb + 1e-6,
                    "{:?} makespan {} vs lb {}", rigid, schedule.makespan(), lb);
            }
        }
    }
}
