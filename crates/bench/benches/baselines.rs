//! Timing comparison of every scheduler on the same instances — the cost side
//! of the baseline comparison (`--bin compare_baselines` reports the quality
//! side).  The paper's pitch is "low complexity with a better guarantee", so
//! the MRT scheduler should stay in the same order of magnitude as the
//! two-phase baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mrt_bench::{all_solvers, default_registry, solver_makespan, Family};
use std::hint::black_box;

fn bench_all_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);

    let instance = Family::Mixed.instance(60, 32, 3);
    for algorithm in all_solvers() {
        group.bench_with_input(
            BenchmarkId::from_parameter(algorithm.name()),
            &instance,
            |b, inst| b.iter(|| black_box(solver_makespan(algorithm.as_ref(), black_box(inst)))),
        );
    }

    group.finish();
}

fn bench_wide_instances(c: &mut Criterion) {
    let mut group = c.benchmark_group("baselines_wide_tasks");
    group.sample_size(10);

    let registry = default_registry();
    let instance = Family::WideTasks.instance(48, 64, 5);
    for name in ["mrt", "ludwig"] {
        let algorithm = registry.get(name).expect("registered solver");
        group.bench_with_input(BenchmarkId::from_parameter(name), &instance, |b, inst| {
            b.iter(|| black_box(solver_makespan(algorithm.as_ref(), black_box(inst))))
        });
    }

    group.finish();
}

criterion_group!(benches, bench_all_algorithms, bench_wide_instances);
criterion_main!(benches);
