//! Cost of one instrumented probe (the branch-statistics experiment): the
//! probe evaluates all branches (two-shelf knapsack, canonical list, malleable
//! list, level packing) and reports which one wins, so its cost bounds the
//! per-guess overhead of the combined algorithm.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malleable_core::bounds;
use malleable_core::mrt::MrtScheduler;
use mrt_bench::Family;
use std::hint::black_box;

fn bench_instrumented_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_stats_probe");
    group.sample_size(10);

    let scheduler = MrtScheduler::default();
    for family in Family::ALL {
        let instance = family.instance(40, 32, 21);
        let omega = bounds::lower_bound(&instance) * 1.05;
        group.bench_with_input(
            BenchmarkId::from_parameter(family.name()),
            &instance,
            |b, inst| {
                b.iter(|| {
                    let (outcome, report) = scheduler.probe_with_report(black_box(inst), omega);
                    black_box((outcome.is_feasible(), report.lambda_area))
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_instrumented_probe);
criterion_main!(benches);
