//! Cost of the dual-approximation dichotomic search (§2.2) as a function of
//! the iteration budget `k`: each extra iteration adds one oracle probe and
//! divides the residual interval (and hence the `ε` in `√3(1 + ε)`) by two.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malleable_core::prelude::*;
use mrt_bench::Family;
use std::hint::black_box;

fn bench_iteration_budget(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_search_iterations");
    group.sample_size(10);

    let instance = Family::Mixed.instance(40, 32, 9);
    let scheduler = MrtScheduler::default();
    for &iterations in &[2usize, 5, 10, 20, 40] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &instance,
            |b, inst| {
                b.iter(|| {
                    let result = DualSearch::with_iterations(iterations)
                        .solve(black_box(inst), &scheduler)
                        .unwrap();
                    black_box(result.schedule.makespan())
                })
            },
        );
    }

    group.finish();
}

fn bench_single_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_search_single_probe");
    group.sample_size(10);

    let instance = Family::Mixed.instance(40, 32, 9);
    let omega = malleable_core::bounds::upper_bound(&instance);
    let scheduler = MrtScheduler::default();
    group.bench_function("mrt_probe_at_upper_bound", |b| {
        b.iter(|| black_box(scheduler.probe(black_box(&instance), omega).is_feasible()))
    });

    group.finish();
}

criterion_group!(benches, bench_iteration_budget, bench_single_probe);
criterion_main!(benches);
