//! Criterion bench for the Figure 8 reproduction: computing the `m_λ` curve
//! over the paper's λ range.  The quantity of interest is the report printed
//! by `--bin figure8`; this bench tracks that computing the whole curve stays
//! trivially cheap (it is a closed form, evaluated 50 times).

use criterion::{criterion_group, criterion_main, Criterion};
use malleable_core::canonical::{h_hat, k_star, m_lambda};
use std::hint::black_box;

fn bench_figure8(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure8");
    group.sample_size(20);

    group.bench_function("m_lambda_curve_50_points", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..=50 {
                let lambda = 0.7551 + (1.0 - 0.7551) * i as f64 / 50.0;
                acc += m_lambda(black_box(lambda)).unwrap();
                acc += k_star(lambda) + h_hat(lambda);
            }
            black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(benches, bench_figure8);
criterion_main!(benches);
