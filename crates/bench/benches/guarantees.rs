//! Criterion bench backing the guarantee table: end-to-end MRT scheduling of
//! one representative instance per workload family.  The measured quantity is
//! the full dual-approximation search (the paper's "practical algorithm"),
//! i.e. what a resource manager would pay per scheduling decision.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malleable_core::prelude::*;
use mrt_bench::Family;
use std::hint::black_box;

fn bench_guarantees(c: &mut Criterion) {
    let mut group = c.benchmark_group("guarantee_table");
    group.sample_size(10);

    for family in Family::ALL {
        let instance = family.instance(40, 32, 1);
        group.bench_with_input(
            BenchmarkId::new("mrt_end_to_end", family.name()),
            &instance,
            |b, inst| {
                b.iter(|| {
                    let result = MrtScheduler::default().schedule(black_box(inst)).unwrap();
                    black_box(result.schedule.makespan())
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_guarantees);
criterion_main!(benches);
