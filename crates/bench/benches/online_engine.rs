//! Timing of the online engine across arrival rates and policies.
//!
//! The sweep covers the load spectrum: at low rates the machine drains
//! between arrivals (many small planning rounds), at high rates the pending
//! batches grow and the offline solvers dominate the cost.  The greedy
//! policy is the per-event-cost floor the re-planning policies are measured
//! against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malleable_core::solver::SolverHandle;
use malleable_core::MrtSolver;
use online::policy::PolicyKind;
use std::hint::black_box;
use std::sync::Arc;
use workload::{ArrivalPattern, ArrivalTrace, TraceConfig, WorkloadConfig};

fn mrt() -> SolverHandle {
    Arc::new(MrtSolver)
}

fn trace_at_rate(rate: f64) -> ArrivalTrace {
    ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(150, 16, 7),
        pattern: ArrivalPattern::Poisson { rate },
    })
    .expect("trace generation succeeds")
}

fn run_policy(trace: &ArrivalTrace, kind: &PolicyKind) -> f64 {
    let mut policy = kind.build().expect("valid policy");
    online::run(trace, policy.as_mut())
        .expect("engine run succeeds")
        .makespan
}

fn bench_arrival_rates(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_engine_rates");
    group.sample_size(10);

    for rate in [0.5, 2.0, 8.0] {
        let trace = trace_at_rate(rate);
        for (name, kind) in [
            ("greedy", PolicyKind::Greedy),
            (
                "epoch-mrt",
                PolicyKind::Epoch {
                    period: 1.0,
                    solver: mrt(),
                },
            ),
            ("batch-mrt", PolicyKind::Batch { solver: mrt() }),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("rate={rate}")),
                &trace,
                |b, trace| b.iter(|| black_box(run_policy(black_box(trace), &kind))),
            );
        }
    }

    group.finish();
}

fn bench_epoch_periods(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_engine_epochs");
    group.sample_size(10);

    let trace = trace_at_rate(4.0);
    for period in [0.25, 1.0, 4.0] {
        let kind = PolicyKind::Epoch {
            period,
            solver: mrt(),
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("period={period}")),
            &trace,
            |b, trace| b.iter(|| black_box(run_policy(black_box(trace), &kind))),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_arrival_rates, bench_epoch_periods);
criterion_main!(benches);
