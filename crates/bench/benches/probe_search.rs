//! Breakpoint-exact search vs classical bisection, cold vs reusable
//! workspace: the timing companion of `src/bin/probe_report.rs`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use malleable_core::prelude::*;
use mrt_bench::Family;
use std::hint::black_box;

fn bench_search_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_search_modes");
    group.sample_size(10);

    let scheduler = MrtScheduler::default();
    let search = DualSearch::default();
    for &n in &[50usize, 200] {
        let instance = Family::Mixed.instance(n, 64, 9);
        group.bench_with_input(BenchmarkId::new("bisect_cold", n), &instance, |b, inst| {
            b.iter(|| {
                let result = search.solve(black_box(inst), &scheduler).unwrap();
                black_box(result.schedule.makespan())
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_cold", n), &instance, |b, inst| {
            b.iter(|| {
                let result = search.solve_exact(black_box(inst), &scheduler).unwrap();
                black_box(result.schedule.makespan())
            })
        });
        group.bench_with_input(BenchmarkId::new("exact_warm", n), &instance, |b, inst| {
            let mut workspace = ProbeWorkspace::new();
            // Warm-up probe sizes the buffers outside the measurement.
            search
                .solve_exact_in(inst, &scheduler, &mut workspace)
                .unwrap();
            b.iter(|| {
                let result = search
                    .solve_exact_in(black_box(inst), &scheduler, &mut workspace)
                    .unwrap();
                black_box(result.schedule.makespan())
            })
        });
    }

    group.finish();
}

fn bench_workspace_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrt_probe_workspace");
    group.sample_size(10);

    let instance = Family::Mixed.instance(200, 64, 9);
    let omega = malleable_core::bounds::upper_bound(&instance);
    let scheduler = MrtScheduler::default();
    group.bench_function("probe_cold", |b| {
        b.iter(|| black_box(scheduler.probe(black_box(&instance), omega).is_feasible()))
    });
    group.bench_function("probe_warm_workspace", |b| {
        let mut workspace = ProbeWorkspace::new();
        scheduler.probe_with_report_in(&instance, omega, &mut workspace);
        b.iter(|| {
            black_box(
                scheduler
                    .probe_with_report_in(black_box(&instance), omega, &mut workspace)
                    .0
                    .is_feasible(),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_search_modes, bench_workspace_probe);
criterion_main!(benches);
