//! Complexity of the allotment-selection knapsack (Theorem 3: `O(n·m)` for the
//! exact pseudo-polynomial resolution, `O(n³/ε)` for the FPTAS): solve
//! scheduling-shaped knapsack instances of growing size with both strategies,
//! and locate the crossover the paper's complexity discussion predicts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use knapsack::{solve_exact, solve_fptas, Item};
use std::hint::black_box;

/// Build a scheduling-shaped knapsack instance: weights are "processors to
/// finish within λω" (a few units to a few dozen), profits are canonical
/// counts (slightly smaller), capacity is a fraction of `n·mean_weight`.
fn scheduling_items(n: usize, max_width: u64, seed: u64) -> (Vec<Item>, u64) {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let items: Vec<Item> = (0..n)
        .map(|_| {
            let weight = 1 + next() % max_width;
            let profit = 1 + (weight.saturating_sub(1)).max(next() % max_width.max(1)) / 2;
            Item { weight, profit }
        })
        .collect();
    let total: u64 = items.iter().map(|i| i.weight).sum();
    (items, total / 3)
}

fn bench_exact_vs_fptas(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack_exact_vs_fptas");
    group.sample_size(10);

    for &(n, width) in &[(50usize, 32u64), (200, 128), (600, 384)] {
        let (items, capacity) = scheduling_items(n, width, 7);
        group.bench_with_input(
            BenchmarkId::new("exact_dp", format!("n{n}_m{width}")),
            &items,
            |b, items| b.iter(|| black_box(solve_exact(black_box(items), capacity)).profit),
        );
        group.bench_with_input(
            BenchmarkId::new("fptas_eps0.1", format!("n{n}_m{width}")),
            &items,
            |b, items| b.iter(|| black_box(solve_fptas(black_box(items), capacity, 0.1)).profit),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_exact_vs_fptas);
criterion_main!(benches);
