//! Complexity of the canonical list algorithm (Theorem 2:
//! `O(n·(log n + log m))`): one probe at a fixed guess, swept over `n` and `m`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use malleable_core::bounds;
use malleable_core::canonical::CanonicalListAlgorithm;
use malleable_core::dual::DualApproximation;
use mrt_bench::Family;
use std::hint::black_box;

fn bench_scaling_in_tasks(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_list_tasks");
    group.sample_size(10);
    for &n in &[200usize, 800, 3_200, 12_800] {
        let instance = Family::Mixed.instance(n, 64, 11);
        let omega = bounds::upper_bound(&instance);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &instance, |b, inst| {
            b.iter(|| {
                let outcome = CanonicalListAlgorithm::default().probe(black_box(inst), omega);
                black_box(outcome.is_feasible())
            })
        });
    }
    group.finish();
}

fn bench_scaling_in_processors(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_list_processors");
    group.sample_size(10);
    for &m in &[32usize, 128, 512, 2_048] {
        let instance = Family::Mixed.instance(2_000, m, 13);
        let omega = bounds::upper_bound(&instance);
        group.bench_with_input(BenchmarkId::from_parameter(m), &instance, |b, inst| {
            b.iter(|| {
                let outcome = CanonicalListAlgorithm::default().probe(black_box(inst), omega);
                black_box(outcome.is_feasible())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling_in_tasks, bench_scaling_in_processors);
criterion_main!(benches);
