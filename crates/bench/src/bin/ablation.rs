//! Ablation study: how much does each of the paper's mechanisms contribute?
//!
//! ```text
//! cargo run -p mrt-bench --release --bin ablation [instances-per-cell]
//! ```
//!
//! The combined scheduler evaluates four branches per probe (the §4 two-shelf
//! knapsack construction, the §3.2 canonical list, the §3.1 malleable list,
//! and FFDH level packing) and keeps the best schedule.  This report re-runs
//! the evaluation with restricted branch sets and with a λ sweep to answer
//! the design questions called out in `DESIGN.md`:
//!
//! * does the knapsack/two-shelf branch actually matter, or do the list
//!   algorithms already deliver the quality?
//! * how sensitive is the result to the shelf parameter λ (the paper's
//!   choice is λ = √3 − 1)?
//! * what does the exact-vs-FPTAS knapsack strategy cost in quality?

use malleable_core::prelude::*;
use mrt_bench::{summarize, Family};

fn ratios(scheduler: &MrtScheduler, family: Family, per_cell: u64) -> Vec<f64> {
    (0..per_cell)
        .map(|seed| {
            let instance = family.instance(40, 32, seed);
            scheduler
                .schedule(&instance)
                .expect("scheduling succeeds")
                .ratio()
        })
        .collect()
}

fn report(label: &str, scheduler: &MrtScheduler, per_cell: u64) {
    print!("{label:<34}");
    for family in Family::ALL {
        let summary = summarize(&ratios(scheduler, family, per_cell));
        print!("  {:>5.3}/{:<5.3}", summary.mean, summary.max);
    }
    println!();
}

fn main() {
    let per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(15);

    println!("ablation study — mean/max ratio per family (n = 40, m = 32, {per_cell} instances)");
    print!("{:<34}", "configuration");
    for family in Family::ALL {
        print!("  {:^11}", family.name());
    }
    println!();

    // Branch ablations.
    report("all branches (paper)", &MrtScheduler::default(), per_cell);
    report(
        "two-shelf knapsack only",
        &MrtScheduler::with_branches(BranchSet::two_shelf_only()).unwrap(),
        per_cell,
    );
    report(
        "list algorithms only (§3)",
        &MrtScheduler::with_branches(BranchSet::lists_only()).unwrap(),
        per_cell,
    );
    report(
        "level packing only (TWY-like)",
        &MrtScheduler::with_branches(BranchSet {
            two_shelf: false,
            canonical_list: false,
            malleable_list: false,
            level_packing: true,
        })
        .unwrap(),
        per_cell,
    );

    println!();

    // λ sweep.
    for lambda in [0.6, 0.7, malleable_core::LAMBDA_SQRT3, 0.8, 0.9, 1.0] {
        let scheduler = MrtScheduler::with_lambda(lambda).unwrap();
        report(&format!("lambda = {lambda:.3}"), &scheduler, per_cell);
    }

    println!();

    // Knapsack strategy.
    let exact = MrtScheduler {
        strategy: knapsack::Strategy::Exact,
        ..Default::default()
    };
    let fptas = MrtScheduler {
        strategy: knapsack::Strategy::Fptas(0.1),
        ..Default::default()
    };
    report("knapsack: exact DP", &exact, per_cell);
    report("knapsack: FPTAS eps=0.1", &fptas, per_cell);

    println!();
    println!("# columns: mean/max ratio vs certified lower bound, per workload family");
}
