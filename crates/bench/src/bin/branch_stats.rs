//! Branch statistics of the combined MRT scheduler: which of the paper's
//! mechanisms (two-shelf knapsack, canonical list, malleable list, level
//! packing) wins the probe, and how the canonical λ-area condition of
//! Theorem 2 splits the instances.
//!
//! ```text
//! cargo run -p mrt-bench --release --bin branch_stats [instances-per-cell]
//! ```

use malleable_core::bounds;
use malleable_core::mrt::{Branch, MrtScheduler};
use malleable_core::two_shelf::TwoShelfKind;
use mrt_bench::Family;

#[derive(Default)]
struct Counters {
    two_shelf_empty: usize,
    two_shelf_trivial: usize,
    two_shelf_knapsack: usize,
    two_shelf_dual: usize,
    canonical_list: usize,
    malleable_list: usize,
    level_packing: usize,
    area_condition_holds: usize,
    total: usize,
}

impl Counters {
    fn record(&mut self, branch: Branch, area_condition: bool) {
        self.total += 1;
        if area_condition {
            self.area_condition_holds += 1;
        }
        match branch {
            Branch::TwoShelf(TwoShelfKind::EmptyGamma) => self.two_shelf_empty += 1,
            Branch::TwoShelf(TwoShelfKind::Trivial) => self.two_shelf_trivial += 1,
            Branch::TwoShelf(TwoShelfKind::Knapsack) => self.two_shelf_knapsack += 1,
            Branch::TwoShelf(TwoShelfKind::DualKnapsack) => self.two_shelf_dual += 1,
            Branch::CanonicalList => self.canonical_list += 1,
            Branch::MalleableList => self.malleable_list += 1,
            Branch::LevelPacking => self.level_packing += 1,
        }
    }

    fn pct(&self, value: usize) -> f64 {
        100.0 * value as f64 / self.total.max(1) as f64
    }
}

fn main() {
    let per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let tasks = 40;
    let processors = 32;
    let scheduler = MrtScheduler::default();

    println!("branch statistics — {per_cell} instances per family, n = {tasks}, m = {processors}");
    println!("(probe at ω = 1.05 × certified lower bound, i.e. just above the optimum)");
    println!();

    for family in Family::ALL {
        let mut counters = Counters::default();
        for seed in 0..per_cell {
            let instance = family.instance(tasks, processors, seed);
            let omega = bounds::lower_bound(&instance) * 1.05;
            let (outcome, report) = scheduler.probe_with_report(&instance, omega);
            if !outcome.is_feasible() {
                continue;
            }
            counters.record(
                report.branch.expect("feasible probes report a branch"),
                report.area_condition.unwrap_or(false),
            );
        }
        println!("family: {}", family.name());
        println!(
            "  probes with a schedule: {:>3}   λ-area condition (Thm 2) held: {:>5.1}%",
            counters.total,
            counters.pct(counters.area_condition_holds)
        );
        println!(
            "  winning branch: two-shelf/empty {:>5.1}%  two-shelf/trivial {:>5.1}%  \
             two-shelf/knapsack {:>5.1}%  two-shelf/dual {:>5.1}%",
            counters.pct(counters.two_shelf_empty),
            counters.pct(counters.two_shelf_trivial),
            counters.pct(counters.two_shelf_knapsack),
            counters.pct(counters.two_shelf_dual),
        );
        println!(
            "                  canonical-list {:>5.1}%  malleable-list {:>5.1}%  level-packing {:>5.1}%",
            counters.pct(counters.canonical_list),
            counters.pct(counters.malleable_list),
            counters.pct(counters.level_packing),
        );
        println!();
    }
}
