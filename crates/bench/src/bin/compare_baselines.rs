//! Head-to-head comparison of the MRT scheduler against the two-phase and
//! naive baselines, with crossover analysis in the machine size.
//!
//! ```text
//! cargo run -p mrt-bench --release --bin compare_baselines [instances-per-cell]
//! ```
//!
//! The paper's claim is qualitative: the √3 algorithm improves on the best
//! practical method (Ludwig's two-phase 2-approximation) in the worst case.
//! This report measures, per workload family and machine size, the mean ratio
//! of each algorithm and how often MRT is at least as good as each baseline.

use malleable_core::bounds;
use mrt_bench::{all_solvers, solver_makespan, summarize, Family};

fn main() {
    let per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let tasks = 40;

    println!("baseline comparison — {per_cell} instances per cell, n = {tasks}");
    println!(
        "{:<18} {:>5} {:<16} {:>10} {:>10} {:>12}",
        "family", "m", "algorithm", "mean", "max", "mrt wins (%)"
    );

    let solvers = all_solvers();
    for family in Family::ALL {
        for &m in &[8usize, 16, 32, 64] {
            // Evaluate every registered solver on the same instances.
            let instances: Vec<_> = (0..per_cell)
                .map(|seed| family.instance(tasks, m, seed))
                .collect();
            let lower_bounds: Vec<f64> = instances.iter().map(bounds::lower_bound).collect();
            let mrt: Vec<f64> = {
                let handle = mrt_bench::default_registry().get("mrt").expect("mrt");
                instances
                    .iter()
                    .map(|inst| solver_makespan(handle.as_ref(), inst))
                    .collect()
            };

            for algorithm in &solvers {
                let makespans: Vec<f64> = if algorithm.name() == "mrt" {
                    mrt.clone()
                } else {
                    instances
                        .iter()
                        .map(|inst| solver_makespan(algorithm.as_ref(), inst))
                        .collect()
                };
                let ratios: Vec<f64> = makespans
                    .iter()
                    .zip(&lower_bounds)
                    .map(|(mk, lb)| mk / lb)
                    .collect();
                let wins = makespans
                    .iter()
                    .zip(&mrt)
                    .filter(|(other, ours)| **ours <= **other + 1e-9)
                    .count();
                let summary = summarize(&ratios);
                println!(
                    "{:<18} {:>5} {:<16} {:>10.3} {:>10.3} {:>11.0}%",
                    family.name(),
                    m,
                    algorithm.name(),
                    summary.mean,
                    summary.max,
                    100.0 * wins as f64 / per_cell as f64
                );
            }
            println!();
        }
    }
}
