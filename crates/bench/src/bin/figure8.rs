//! Reproduce Figure 8 of the paper: `m_λ` (the minimal machine size for which
//! Property 3 of the canonical list algorithm is asserted) as a function of λ.
//!
//! ```text
//! cargo run -p mrt-bench --release --bin figure8
//! ```
//!
//! The output is a CSV-like table (λ, k*, ĥ_λ, m_λ) over the same λ range the
//! paper plots (0.75 < λ ≤ 1.0), followed by the two anchor checks recorded in
//! `EXPERIMENTS.md`: the value at λ = √3/2 and the monotone decreasing shape.

use malleable_core::canonical::{h_hat, k_star, m_lambda};

fn main() {
    println!("lambda,k_star,h_hat,m_lambda");
    let mut previous: Option<usize> = None;
    let mut monotone = true;
    let steps = 50usize;
    for i in 0..=steps {
        let lambda = 0.7551 + (1.0 - 0.7551) * i as f64 / steps as f64;
        let m = m_lambda(lambda).expect("lambda > 3/4");
        println!("{lambda:.4},{},{},{m}", k_star(lambda), h_hat(lambda));
        if let Some(prev) = previous {
            if m > prev {
                monotone = false;
            }
        }
        previous = Some(m);
    }

    let sqrt3_over_2 = 3f64.sqrt() / 2.0;
    println!();
    println!(
        "# anchor: m_lambda(sqrt(3)/2) = {}",
        m_lambda(sqrt3_over_2).unwrap()
    );
    println!("# shape: non-increasing in lambda = {monotone}");
    println!(
        "# divergence near 3/4: m_lambda(0.76) = {}, m_lambda(0.99) = {}",
        m_lambda(0.76).unwrap(),
        m_lambda(0.99).unwrap()
    );
}
