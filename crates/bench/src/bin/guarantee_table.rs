//! The guarantee table: measured approximation ratios of every scheduler over
//! every workload family, against the paper's worst-case claims.
//!
//! ```text
//! cargo run -p mrt-bench --release --bin guarantee_table [instances-per-cell]
//! ```
//!
//! Reproduces the quantitative comparison embedded in §1/§5 of the paper:
//! the MRT algorithm's ratios must stay below √3 ≈ 1.732, below the Ludwig
//! two-phase baseline's guarantee of 2, and below the measured ratios of the
//! naive baselines on the families that defeat them.

use mrt_bench::{all_solvers, ratio_sweep, summarize, Family};

fn main() {
    let per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let tasks = 40;
    let processors = 32;

    println!(
        "guarantee table — {} instances per cell, n = {tasks}, m = {processors}",
        per_cell
    );
    println!(
        "{:<18} {:<16} {:>8} {:>8} {:>8} {:>8}",
        "family", "algorithm", "mean", "p95", "max", "bound"
    );

    let mut violations = 0usize;
    let solvers = all_solvers();
    for family in Family::ALL {
        for algorithm in &solvers {
            let ratios = ratio_sweep(algorithm.as_ref(), family, tasks, processors, 0..per_cell);
            let summary = summarize(&ratios);
            // The claimed worst-case bound comes from the solver's own
            // capability record, not a hard-coded table.
            let bound = algorithm.capabilities().guarantee.unwrap_or(f64::INFINITY);
            let bound_label = if bound.is_finite() {
                format!("{bound:.3}")
            } else {
                "-".to_string()
            };
            println!(
                "{:<18} {:<16} {:>8.3} {:>8.3} {:>8.3} {:>8}",
                family.name(),
                algorithm.name(),
                summary.mean,
                summary.p95,
                summary.max,
                bound_label
            );
            if bound.is_finite() && summary.max > bound + 0.02 {
                violations += 1;
            }
        }
        println!();
    }

    println!("# worst-case bound violations (beyond the dichotomy slack): {violations}");
    if violations == 0 {
        println!("# PASS: every measured ratio respects the claimed guarantee");
    }
}
