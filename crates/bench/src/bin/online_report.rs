//! Competitive-ratio report: online policies vs the clairvoyant offline MRT
//! run, per trace family, emitted as JSON for the perf trajectory.
//!
//! ```text
//! cargo run -p bench --release --bin online_report [seeds-per-cell]
//! ```
//!
//! Every cell runs `seeds-per-cell` traces (default 5) of a family through a
//! policy and reports the makespan ratios against the offline MRT makespan
//! and against the certified lower bound, plus flow-time statistics.  The
//! output is one JSON document on stdout.

use mrt_bench::online_traces::{online_policies, trace_families};
use mrt_bench::summarize;
use serde_json::{json, Value};

fn main() {
    let seeds_per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    let mut cells: Vec<Value> = Vec::new();
    for family in trace_families() {
        for kind in online_policies() {
            let mut vs_offline = Vec::new();
            let mut vs_lower_bound = Vec::new();
            let mut mean_flows = Vec::new();
            let mut policy_name = String::new();
            for seed in 0..seeds_per_cell {
                let trace = family.trace(seed);
                let mut policy = kind.build().expect("valid policy");
                let result = online::run(&trace, policy.as_mut()).expect("engine run succeeds");
                assert!(
                    online::validate_against_trace(&trace, &result.schedule).is_empty(),
                    "invalid schedule from {}",
                    result.policy
                );
                let report = online::competitive_report(&trace, &result).expect("report succeeds");
                vs_offline.push(report.ratio_vs_offline);
                vs_lower_bound.push(report.ratio_vs_lower_bound);
                mean_flows.push(result.mean_flow_time);
                policy_name = result.policy;
            }
            let offline = summarize(&vs_offline);
            let lower = summarize(&vs_lower_bound);
            let flow = summarize(&mean_flows);
            cells.push(json!({
                "family": family.name,
                "policy": policy_name,
                "seeds": seeds_per_cell,
                "ratio_vs_offline_mean": offline.mean,
                "ratio_vs_offline_max": offline.max,
                "ratio_vs_lower_bound_mean": lower.mean,
                "ratio_vs_lower_bound_max": lower.max,
                "mean_flow_time": flow.mean,
            }));
        }
    }

    let doc = json!({
        "report": "online-competitive-ratio",
        "cells": cells,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serialisation")
    );
}
