//! Competitive-ratio report: online policies vs the clairvoyant offline MRT
//! run, per trace family, emitted as JSON for the perf trajectory
//! (`BENCH_7.json` in CI).
//!
//! ```text
//! cargo run -p bench --release --bin online_report [seeds-per-cell]
//! ```
//!
//! Six sections (the `BENCH_7.json` surface — a superset of the earlier
//! `BENCH_4.json`/`BENCH_5.json`/`BENCH_6.json`):
//!
//! * `cells` — every policy × family of the classical evaluation (the PR-1
//!   surface, unchanged);
//! * `backfill` — frontier-only vs backfilling engine on the bursty suite
//!   (with and without departures), per policy.  **Gate:** on every
//!   departure-free bursty family the backfill mean competitive ratio must
//!   not exceed the frontier-only engine's;
//! * `preemption` — non-preemptive vs preemptive epoch re-planning, plus
//!   the deterministic queued-reallotment scenario.  **Gate:** preemption
//!   strictly beats the non-preemptive run on that shipped scenario;
//! * `reallotment` — queued-only preemption vs full mid-execution
//!   re-allotment of running tasks on the bursty *overload* suite, plus the
//!   deterministic running-reallotment scenario.  **Gates:** on the
//!   departure-free overload family the re-allotting engine's seed-sweep
//!   mean competitive ratio is strictly better than queued-only preemption,
//!   every piecewise schedule passes the extended simulator validation
//!   (per-segment feasibility + work conservation), and re-allotment
//!   strictly beats queued-only preemption on the shipped scenario;
//! * `telemetry` — a fully recorded bursty run through the re-allotting
//!   engine: p50/p99 decision latency, epoch-solve spans, probes per solve,
//!   tasks/sec placed, and the time-weighted utilisation figure.  **Gate:**
//!   the recorded stream contains zero `invariant_violation` events;
//! * `faults` — graceful degradation: the bursty suite replayed through the
//!   fault-tolerant engine under seeded fault plans of increasing intensity
//!   (crash MTBF + per-attempt task-failure rate), against its own
//!   fault-free baseline, plus one recorded run whose epoch solver is
//!   forced to fail once behind the `solver::FallbackSolver` ladder.
//!   **Gates:** every faulted run passes `validate_fault_run` (no overlap
//!   among executed or wasted segments, nothing scheduled inside an
//!   outage), every task is accounted for (completed + departed +
//!   abandoned = submitted), on the departure-free family the mean faulted
//!   makespan stays within 2× of the fault-free mean, and the forced solver
//!   fault degrades exactly one epoch with zero invariant violations.
//!
//! Runs whose tasks *all* departed have no competitive ratio
//! (`ratio_vs_lower_bound = null`); such seeds are excluded from every mean
//! and gate rather than poisoning them with NaN.
//!
//! Passing the token `hetero` after the seed count switches to the
//! heterogeneous surface (`BENCH_8.json` in CI): the classed epoch engine on
//! a strongly asymmetric two-class cluster, the LP assignment vs the
//! speed-blind ablation on the same machine (equal total capacity), plus the
//! greedy-density baseline and the homogeneous-equivalent reference run.
//! **Gates:** every classed run passes `ClassedRunResult::check`, and on
//! every task count the LP assignment's mean ratio vs the classed lower
//! bound strictly beats the speed-blind ablation's.
//!
//! The process exits non-zero when a gate fails, so CI catches regressions.

use std::collections::HashSet;
use std::sync::Arc;

use mrt_bench::online_traces::{
    bursty_overload_suite, bursty_suite, online_policies, trace_families, TraceFamily,
};
use mrt_bench::summarize;
use online::policy::{EpochReplan, PolicyKind, PolicyOptions};
use serde_json::{json, Value};
use solver::{FallbackSolver, FaultInjectingSolver, SolverFaultMode};
use workload::{FaultConfig, FaultPlan, RetryPolicy};

/// The seed-sweep observations of one (family, policy, options) cell.
struct FamilyRuns {
    vs_offline: Vec<f64>,
    vs_lower_bound: Vec<f64>,
    mean_flows: Vec<f64>,
    departed: usize,
    reallotted: usize,
    /// Seeds whose runs had no competitive ratio (every task departed) —
    /// excluded from the means and gates instead of reported as NaN.
    skipped_seeds: usize,
    policy_name: String,
}

fn run_family(
    family: &TraceFamily,
    kind: &PolicyKind,
    options: PolicyOptions,
    seeds: u64,
) -> FamilyRuns {
    let mut runs = FamilyRuns {
        vs_offline: Vec::new(),
        vs_lower_bound: Vec::new(),
        mean_flows: Vec::new(),
        departed: 0,
        reallotted: 0,
        skipped_seeds: 0,
        policy_name: String::new(),
    };
    for seed in 0..seeds {
        let trace = family.trace(seed);
        let mut policy = kind.build_with(options.clone()).expect("valid policy");
        let result = online::run(&trace, policy.as_mut()).expect("engine run succeeds");
        assert!(
            online::validate_against_trace(&trace, &result.schedule).is_empty(),
            "invalid schedule from {}",
            result.policy
        );
        // Every schedule — including piecewise re-allotted ones — must pass
        // the extended simulator validation (per-segment feasibility + work
        // conservation).
        let report = simulator::validate_piecewise_subset(
            &trace.instance().expect("trace instance"),
            &result.schedule,
            None,
        );
        assert!(
            report.is_valid(),
            "{}: piecewise validation failed: {:?}",
            result.policy,
            report.violations
        );
        let report = online::competitive_report(&trace, &result).expect("report succeeds");
        match (report.ratio_vs_offline, report.ratio_vs_lower_bound) {
            (Some(vs_offline), Some(vs_lb)) => {
                runs.vs_offline.push(vs_offline);
                runs.vs_lower_bound.push(vs_lb);
                runs.mean_flows.push(result.mean_flow_time);
            }
            _ => runs.skipped_seeds += 1,
        }
        runs.departed += result.departed;
        runs.reallotted += result.reallotted;
        runs.policy_name = result.policy;
    }
    runs
}

/// Mean of a gated sample, or `None` when every seed was skipped (the gate
/// is then skipped too, rather than failing on an empty sample).
fn gated_mean(values: &[f64]) -> Option<f64> {
    (!values.is_empty()).then(|| summarize(values).mean)
}

/// The `hetero` mode: classed-engine assignment strategies on an
/// asymmetric two-class cluster, gated on the LP assignment strictly
/// beating the speed-blind ablation at equal total capacity.
fn hetero_report(seeds_per_cell: u64) {
    let spec = "old=8x1.0,new=4x2.5";
    let cluster = hetero::ClassedCluster::from_spec(spec).expect("valid cluster spec");
    let classes = workload::parse_class_specs(spec).expect("valid class spec");
    let flat = cluster.homogeneous_equivalent();
    let mut gate_failures: Vec<String> = Vec::new();
    let mut cells: Vec<Value> = Vec::new();

    let run = |trace: &workload::ArrivalTrace,
               on: &hetero::ClassedCluster,
               strategy: hetero::AssignStrategy|
     -> hetero::ClassedRunResult {
        let options = hetero::ClassedEngineOptions {
            strategy,
            ..hetero::ClassedEngineOptions::default()
        };
        hetero::run_classed(trace, on, &options).expect("classed engine run succeeds")
    };

    for tasks in [28usize, 48] {
        let mut lp_ratios: Vec<f64> = Vec::new();
        let mut greedy_ratios: Vec<f64> = Vec::new();
        let mut blind_ratios: Vec<f64> = Vec::new();
        let mut flat_makespans: Vec<f64> = Vec::new();
        let mut lp_makespans: Vec<f64> = Vec::new();
        let mut blind_makespans: Vec<f64> = Vec::new();
        let mut lp_flows: Vec<f64> = Vec::new();
        let mut blind_flows: Vec<f64> = Vec::new();
        let mut migrations = 0usize;
        let mut utilization = vec![0.0f64; cluster.classes().len()];
        for seed in 0..seeds_per_cell {
            let trace = workload::classed_trace(&classes, tasks, seed).expect("valid trace");
            let instance = trace.instance().expect("trace instance");
            let lower_bound = hetero::HeteroInstance::from_instance(&instance, cluster.clone())
                .expect("classed instance")
                .lower_bound();
            let lp = run(&trace, &cluster, hetero::AssignStrategy::Lp);
            let greedy = run(&trace, &cluster, hetero::AssignStrategy::GreedyDensity);
            let blind = run(&trace, &cluster, hetero::AssignStrategy::ClassBlind);
            // The homogeneous-equivalent reference: one uniform class of the
            // same total capacity — the class-free machine the classed runs
            // are measured against.
            let uniform = run(&trace, &flat, hetero::AssignStrategy::Lp);
            for (label, result) in [("lp", &lp), ("greedy", &greedy), ("blind", &blind)] {
                let violations = result.check(&trace);
                if !violations.is_empty() {
                    gate_failures.push(format!(
                        "hetero gate: {label} tasks {tasks} seed {seed} invalid: {}",
                        violations.join("; ")
                    ));
                }
            }
            lp_ratios.push(lp.makespan / lower_bound);
            greedy_ratios.push(greedy.makespan / lower_bound);
            blind_ratios.push(blind.makespan / lower_bound);
            lp_makespans.push(lp.makespan);
            blind_makespans.push(blind.makespan);
            flat_makespans.push(uniform.makespan);
            lp_flows.push(lp.mean_flow_time);
            blind_flows.push(blind.mean_flow_time);
            migrations += lp.migrations;
            for (class, busy) in utilization.iter_mut().enumerate() {
                *busy += lp.class_utilization(class);
            }
        }
        let lp_mean = summarize(&lp_ratios).mean;
        let blind_mean = summarize(&blind_ratios).mean;
        if lp_mean >= blind_mean - 1e-9 {
            gate_failures.push(format!(
                "hetero gate: tasks {tasks} lp mean ratio {lp_mean:.4} does not beat \
                 class-blind {blind_mean:.4}"
            ));
        }
        let class_utilization: Vec<Value> = cluster
            .classes()
            .iter()
            .zip(&utilization)
            .map(|(class, busy)| {
                json!({
                    "class": class.name.clone(),
                    "count": class.count,
                    "speed": class.speed,
                    "lp_utilization_mean": busy / seeds_per_cell as f64,
                })
            })
            .collect();
        cells.push(json!({
            "cluster": spec,
            "tasks": tasks,
            "seeds": seeds_per_cell,
            "lp_ratio_vs_lb_mean": lp_mean,
            "greedy_ratio_vs_lb_mean": summarize(&greedy_ratios).mean,
            "blind_ratio_vs_lb_mean": blind_mean,
            "improvement_vs_blind": blind_mean - lp_mean,
            "lp_makespan_mean": summarize(&lp_makespans).mean,
            "blind_makespan_mean": summarize(&blind_makespans).mean,
            "homogeneous_equivalent_makespan_mean": summarize(&flat_makespans).mean,
            "lp_mean_flow": summarize(&lp_flows).mean,
            "blind_mean_flow": summarize(&blind_flows).mean,
            "lp_migrations": migrations,
            "class_utilization": class_utilization,
        }));
    }

    let gate_ok = gate_failures.is_empty();
    let gates = json!({
        "hetero_lp_beats_class_blind_at_equal_capacity": gate_ok,
    });
    let doc = json!({
        "report": "hetero-classed-online",
        "cluster": spec,
        "total_capacity": cluster.total_capacity(),
        "cells": cells,
        "gates": gates,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serialisation")
    );
    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("GATE FAILURE: {failure}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let seeds_per_cell: u64 = args
        .iter()
        .find_map(|token| token.parse().ok())
        .unwrap_or(5);
    if args.iter().any(|token| token == "hetero") {
        hetero_report(seeds_per_cell);
        return;
    }
    let mut gate_failures: Vec<String> = Vec::new();

    // Section 1: the classical policy × family sweep.
    let mut cells: Vec<Value> = Vec::new();
    for family in trace_families() {
        for kind in online_policies() {
            let runs = run_family(&family, &kind, PolicyOptions::default(), seeds_per_cell);
            let offline = summarize(&runs.vs_offline);
            let lower = summarize(&runs.vs_lower_bound);
            let flow = summarize(&runs.mean_flows);
            cells.push(json!({
                "family": family.name,
                "policy": runs.policy_name,
                "seeds": seeds_per_cell,
                "ratio_vs_offline_mean": offline.mean,
                "ratio_vs_offline_max": offline.max,
                "ratio_vs_lower_bound_mean": lower.mean,
                "ratio_vs_lower_bound_max": lower.max,
                "mean_flow_time": flow.mean,
            }));
        }
    }

    // Section 2: frontier vs backfill on the bursty suite.  The epoch-mrt
    // frontier runs double as section 3's non-preemptive baseline (same
    // policy, same default options, same deterministic traces).
    let registry = mrt_bench::default_registry();
    let mut backfill_cells: Vec<Value> = Vec::new();
    let mut epoch_frontier_by_family: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for family in bursty_suite() {
        for (label, kind) in [
            ("greedy", PolicyKind::Greedy),
            (
                "epoch-mrt",
                PolicyKind::Epoch {
                    period: 1.0,
                    solver: registry.get("mrt").expect("registered"),
                },
            ),
        ] {
            let frontier = run_family(&family, &kind, PolicyOptions::default(), seeds_per_cell);
            if label == "epoch-mrt" {
                epoch_frontier_by_family
                    .push((frontier.vs_lower_bound.clone(), frontier.mean_flows.clone()));
            }
            let backfill = run_family(
                &family,
                &kind,
                PolicyOptions {
                    backfill: true,
                    ..PolicyOptions::default()
                },
                seeds_per_cell,
            );
            let frontier_mean = summarize(&frontier.vs_lower_bound).mean;
            let backfill_mean = summarize(&backfill.vs_lower_bound).mean;
            // The gate runs on the epoch re-planning policy (the engine's
            // flagship).  Greedy is reported but not gated: per-trace
            // Graham anomalies make its small-seed means noisy (see the
            // `backfilling_dominates_on_average` workspace test for its
            // statistical pin over a larger sweep).
            if label == "epoch-mrt"
                && !family.has_departures()
                && backfill_mean > frontier_mean + 1e-9
            {
                gate_failures.push(format!(
                    "backfill gate: {label} on {} regressed ({backfill_mean:.4} > {frontier_mean:.4})",
                    family.name
                ));
            }
            backfill_cells.push(json!({
                "family": family.name,
                "policy": label,
                "seeds": seeds_per_cell,
                "departures": family.has_departures(),
                "frontier_ratio_vs_lb_mean": frontier_mean,
                "backfill_ratio_vs_lb_mean": backfill_mean,
                "improvement": frontier_mean - backfill_mean,
                "frontier_mean_flow": summarize(&frontier.mean_flows).mean,
                "backfill_mean_flow": summarize(&backfill.mean_flows).mean,
                "frontier_departed": frontier.departed,
                "backfill_departed": backfill.departed,
            }));
        }
    }

    // Section 3: preemptive epoch re-planning.
    let mut preemption_cells: Vec<Value> = Vec::new();
    for (family, (plain_lb, plain_flows)) in bursty_suite().iter().zip(epoch_frontier_by_family) {
        let kind = PolicyKind::Epoch {
            period: 1.0,
            solver: registry.get("mrt").expect("registered"),
        };
        let preempt = run_family(
            family,
            &kind,
            PolicyOptions {
                preempt_queued: true,
                ..PolicyOptions::default()
            },
            seeds_per_cell,
        );
        preemption_cells.push(json!({
            "family": family.name,
            "seeds": seeds_per_cell,
            "plain_ratio_vs_lb_mean": summarize(&plain_lb).mean,
            "preempt_ratio_vs_lb_mean": summarize(&preempt.vs_lower_bound).mean,
            "plain_mean_flow": summarize(&plain_flows).mean,
            "preempt_mean_flow": summarize(&preempt.mean_flows).mean,
        }));
    }
    // The shipped deterministic scenario (shared with the engine's
    // hand-computed unit test): preemption must strictly win.
    let scenario = online::queued_reallotment_scenario().expect("valid scenario");
    let scenario_makespan = |preempt: bool| {
        let mut policy = EpochReplan::mrt(1.0)
            .expect("valid period")
            .with_preempt_queued(preempt);
        let result = online::run(&scenario, &mut policy).expect("scenario run succeeds");
        assert!(
            online::validate_against_trace(&scenario, &result.schedule).is_empty(),
            "invalid scenario schedule"
        );
        (result.makespan, result.preempted)
    };
    let (plain_makespan, _) = scenario_makespan(false);
    let (preempt_makespan, preempted) = scenario_makespan(true);
    if preempt_makespan >= plain_makespan - 1e-9 || preempted == 0 {
        gate_failures.push(format!(
            "preemption gate: scenario makespan {preempt_makespan:.4} (preempted {preempted}) \
             does not beat non-preemptive {plain_makespan:.4}"
        ));
    }
    preemption_cells.push(json!({
        "family": "queued-reallotment-scenario",
        "plain_makespan": plain_makespan,
        "preempt_makespan": preempt_makespan,
        "preempted_commitments": preempted,
    }));

    // Section 4: mid-execution re-allotment of running tasks on the bursty
    // overload suite — queued-only preemption vs full re-allotment, same
    // solver, same traces.
    let mut reallotment_cells: Vec<Value> = Vec::new();
    for family in bursty_overload_suite() {
        let kind = PolicyKind::Epoch {
            period: 1.0,
            solver: registry.get("mrt").expect("registered"),
        };
        let queued = run_family(
            &family,
            &kind,
            PolicyOptions {
                preempt_queued: true,
                ..PolicyOptions::default()
            },
            seeds_per_cell,
        );
        let running = run_family(
            &family,
            &kind,
            PolicyOptions {
                preempt_queued: true,
                preempt_running: true,
                ..PolicyOptions::default()
            },
            seeds_per_cell,
        );
        let queued_mean = gated_mean(&queued.vs_lower_bound);
        let running_mean = gated_mean(&running.vs_lower_bound);
        // The gate runs on every overload family (the traces are
        // deterministic per seed, so so is the comparison): re-allotment
        // must strictly improve the seed-sweep mean competitive ratio over
        // queued-only preemption, and must actually have re-allotted
        // something.  The win is modest without departures (~1e-4: the
        // queued re-planner is already near the certified bound) and large
        // with them (~0.5: freed tails let impatient tasks start before
        // their deadlines).  Seeds with no ratio (all tasks departed) are
        // excluded from the means; if *every* seed were such the gate is
        // skipped for that family.
        match (queued_mean, running_mean) {
            (Some(q), Some(r)) if r >= q - 1e-9 => gate_failures.push(format!(
                "reallotment gate: {} mean ratio {r:.4} does not beat queued-only {q:.4}",
                family.name
            )),
            (Some(_), Some(_)) if running.reallotted == 0 => gate_failures.push(format!(
                "reallotment gate: {} never truncated a running task",
                family.name
            )),
            _ => {}
        }
        reallotment_cells.push(json!({
            "family": family.name,
            "seeds": seeds_per_cell,
            "departures": family.has_departures(),
            "queued_ratio_vs_lb_mean": queued_mean,
            "reallot_ratio_vs_lb_mean": running_mean,
            "improvement": match (queued_mean, running_mean) {
                (Some(q), Some(r)) => Some(q - r),
                _ => None,
            },
            "queued_mean_flow": gated_mean(&queued.mean_flows),
            "reallot_mean_flow": gated_mean(&running.mean_flows),
            "reallotted_commitments": running.reallotted,
            "queued_departed": queued.departed,
            "reallot_departed": running.departed,
            "skipped_seeds": running.skipped_seeds + queued.skipped_seeds,
        }));
    }
    // The shipped deterministic scenario (shared with the engine's
    // hand-computed unit test): re-allotment of the running task must
    // strictly beat queued-only preemption, which cannot help here because
    // nothing is ever queued.
    let scenario = online::running_reallotment_scenario().expect("valid scenario");
    let scenario_makespan = |preempt_running: bool| {
        let mut policy = EpochReplan::mrt(1.0)
            .expect("valid period")
            .with_preempt_queued(true)
            .with_preempt_running(preempt_running);
        let result = online::run(&scenario, &mut policy).expect("scenario run succeeds");
        assert!(
            online::validate_against_trace(&scenario, &result.schedule).is_empty(),
            "invalid scenario schedule"
        );
        let report = simulator::validate_piecewise_subset(
            &scenario.instance().expect("scenario instance"),
            &result.schedule,
            None,
        );
        assert!(report.is_valid(), "scenario piecewise validation failed");
        (result.makespan, result.reallotted)
    };
    let (queued_makespan, _) = scenario_makespan(false);
    let (reallot_makespan, scenario_reallotted) = scenario_makespan(true);
    if reallot_makespan >= queued_makespan - 1e-9 || scenario_reallotted == 0 {
        gate_failures.push(format!(
            "reallotment gate: scenario makespan {reallot_makespan:.4} (reallotted \
             {scenario_reallotted}) does not beat queued-only {queued_makespan:.4}"
        ));
    }
    reallotment_cells.push(json!({
        "family": "running-reallotment-scenario",
        "queued_makespan": queued_makespan,
        "reallot_makespan": reallot_makespan,
        "reallotted_commitments": scenario_reallotted,
    }));

    // Section 5: one fully recorded run through the re-allotting engine —
    // the decision-latency and throughput surface of the telemetry
    // subsystem, gated on a clean (violation-free) event stream.
    let mut telemetry_cells: Vec<Value> = Vec::new();
    for family in bursty_suite().iter().filter(|f| !f.has_departures()) {
        let recorder = telemetry::CollectingRecorder::shared();
        let kind = PolicyKind::Epoch {
            period: 1.0,
            solver: registry.get("mrt").expect("registered"),
        };
        let mut policy = kind
            .build_with(PolicyOptions {
                preempt_queued: true,
                preempt_running: true,
                recorder: Some(recorder.clone() as telemetry::SharedRecorder),
                ..PolicyOptions::default()
            })
            .expect("valid policy");
        let trace = family.trace(0);
        let epoch_period = policy.epoch();
        let result = online::run_recorded(&trace, policy.as_mut(), recorder.as_ref())
            .expect("recorded engine run succeeds");
        let summary = online::summarize(&recorder, &result, epoch_period);
        if summary.invariant_violations != 0 {
            gate_failures.push(format!(
                "telemetry gate: {} recorded {} invariant violation(s)",
                family.name, summary.invariant_violations
            ));
        }
        telemetry_cells.push(json!({
            "family": family.name,
            "tasks": trace.len(),
            "summary": summary.to_json(),
        }));
    }

    // Section 6: graceful degradation under faults.  Each bursty family is
    // replayed through the fault-tolerant engine at three intensities —
    // fault-free (the baseline of the 2× gate), light, and heavy — under
    // seeded crash/repair outages plus per-attempt task failures, with the
    // default retry policy.  The fault-aware validator runs on every seed.
    let mut fault_cells: Vec<Value> = Vec::new();
    let intensities: [(&str, Option<f64>, f64); 3] = [
        ("fault-free", None, 0.0),
        ("light", Some(24.0), 0.05),
        ("heavy", Some(10.0), 0.2),
    ];
    for family in bursty_suite() {
        let mut fault_free_makespans: Vec<f64> = Vec::new();
        for (label, mtbf, failure_rate) in intensities {
            let retry = RetryPolicy::default();
            let mut makespans: Vec<f64> = Vec::new();
            let mut goodputs: Vec<f64> = Vec::new();
            let (mut crashes, mut failures, mut abandoned) = (0usize, 0usize, 0usize);
            let mut wasted = 0.0f64;
            for seed in 0..seeds_per_cell {
                let trace = family.trace(seed);
                // Same horizon rule as the CLI: comfortably past the last
                // arrival so repairs land inside the run.
                let horizon = (trace.last_arrival() + 1.0) * 4.0;
                let plan = match mtbf {
                    Some(mtbf) => {
                        let mut config =
                            FaultConfig::new(trace.processors(), trace.len(), horizon, seed)
                                .with_crashes(mtbf, 2.0);
                        if failure_rate > 0.0 {
                            config = config.with_task_failures(failure_rate, retry.max_attempts);
                        }
                        FaultPlan::generate(&config).expect("valid fault config")
                    }
                    None => FaultPlan::empty(trace.processors(), horizon),
                };
                let mut policy = EpochReplan::mrt(1.0).expect("valid period");
                let result = online::run_with_faults(&trace, &mut policy, &plan, retry, None)
                    .expect("faulted engine run succeeds");
                let violations = online::validate_fault_run(&trace, &result);
                if !violations.is_empty() {
                    gate_failures.push(format!(
                        "faults gate: {} {label} seed {seed} invalid: {}",
                        family.name,
                        violations.join("; ")
                    ));
                }
                // No lost tasks: every submission either ran to completion,
                // departed, or was abandoned after exhausting its retries.
                let completed: HashSet<usize> =
                    result.schedule.entries().iter().map(|e| e.task).collect();
                if completed.len() + result.departed + result.abandoned.len() != trace.len() {
                    gate_failures.push(format!(
                        "faults gate: {} {label} seed {seed} lost tasks ({} completed + {} \
                         departed + {} abandoned != {})",
                        family.name,
                        completed.len(),
                        result.departed,
                        result.abandoned.len(),
                        trace.len()
                    ));
                }
                makespans.push(result.makespan);
                goodputs.push(result.goodput_fraction());
                crashes += result.crashes;
                failures += result.failures;
                abandoned += result.abandoned.len();
                wasted += result.wasted_integral;
            }
            let mean_makespan = summarize(&makespans).mean;
            if label == "fault-free" {
                fault_free_makespans = makespans.clone();
            } else if !family.has_departures() {
                // Graceful degradation: even the heavy intensity must stay
                // within 2× of the machine's own fault-free makespan.
                let baseline = summarize(&fault_free_makespans).mean;
                if mean_makespan > 2.0 * baseline + 1e-9 {
                    gate_failures.push(format!(
                        "faults gate: {} {label} mean makespan {mean_makespan:.4} exceeds 2x \
                         fault-free {baseline:.4}",
                        family.name
                    ));
                }
            }
            fault_cells.push(json!({
                "family": family.name,
                "intensity": label,
                "seeds": seeds_per_cell,
                "mtbf": mtbf,
                "task_failure_rate": failure_rate,
                "mean_makespan": mean_makespan,
                "mean_goodput": summarize(&goodputs).mean,
                "crashes": crashes,
                "task_failures": failures,
                "abandoned": abandoned,
                "wasted_integral": wasted,
            }));
        }
    }
    // The solver-degradation cell: the second epoch solve of a recorded
    // bursty run is forced to fail, and the `FallbackSolver` ladder must
    // absorb it — one degraded epoch, a valid schedule, no violations.
    {
        let recorder = telemetry::CollectingRecorder::shared();
        let ladder = Arc::new(
            FallbackSolver::new(Arc::new(FaultInjectingSolver::new(
                registry.get("mrt").expect("registered"),
                1,
                SolverFaultMode::Error,
            )))
            .with_recorder(recorder.clone() as telemetry::SharedRecorder),
        );
        let kind = PolicyKind::Epoch {
            period: 1.0,
            solver: ladder.clone(),
        };
        let mut policy = kind
            .build_with(PolicyOptions::default())
            .expect("valid policy");
        let family = &bursty_suite()[0];
        let trace = family.trace(0);
        let epoch_period = policy.epoch();
        let result = online::run_recorded(&trace, policy.as_mut(), recorder.as_ref())
            .expect("degraded engine run succeeds");
        assert!(
            online::validate_against_trace(&trace, &result.schedule).is_empty(),
            "invalid schedule from the degraded run"
        );
        let summary = online::summarize(&recorder, &result, epoch_period);
        if ladder.degraded() != 1 || summary.solver_degraded != 1 {
            gate_failures.push(format!(
                "faults gate: forced solver fault degraded {} epoch(s) (recorded {}), expected 1",
                ladder.degraded(),
                summary.solver_degraded
            ));
        }
        if summary.invariant_violations != 0 {
            gate_failures.push(format!(
                "faults gate: degraded run recorded {} invariant violation(s)",
                summary.invariant_violations
            ));
        }
        fault_cells.push(json!({
            "family": family.name,
            "intensity": "solver-fault",
            "tasks": trace.len(),
            "solver_degraded": summary.solver_degraded,
            "makespan": result.makespan,
            "invariant_violations": summary.invariant_violations,
        }));
    }

    let backfill_gate_ok = !gate_failures.iter().any(|f| f.starts_with("backfill"));
    let preemption_gate_ok = !gate_failures.iter().any(|f| f.starts_with("preemption"));
    let reallotment_gate_ok = !gate_failures.iter().any(|f| f.starts_with("reallotment"));
    let telemetry_gate_ok = !gate_failures.iter().any(|f| f.starts_with("telemetry"));
    let faults_gate_ok = !gate_failures.iter().any(|f| f.starts_with("faults"));
    let gates = json!({
        "backfill_mean_ratio_not_worse_on_bursty_suite": backfill_gate_ok,
        "preemption_beats_plain_on_scenario": preemption_gate_ok,
        "reallotment_beats_preempt_queued_on_bursty_overload": reallotment_gate_ok,
        "telemetry_zero_invariant_violations": telemetry_gate_ok,
        "faults_degrade_gracefully_on_bursty_suite": faults_gate_ok,
    });
    let doc = json!({
        "report": "online-competitive-ratio",
        "cells": cells,
        "backfill": backfill_cells,
        "preemption": preemption_cells,
        "reallotment": reallotment_cells,
        "telemetry": telemetry_cells,
        "faults": fault_cells,
        "gates": gates,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serialisation")
    );

    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("GATE FAILURE: {failure}");
        }
        std::process::exit(1);
    }
}
