//! Competitive-ratio report: online policies vs the clairvoyant offline MRT
//! run, per trace family, emitted as JSON for the perf trajectory
//! (`BENCH_4.json` in CI).
//!
//! ```text
//! cargo run -p bench --release --bin online_report [seeds-per-cell]
//! ```
//!
//! Three sections:
//!
//! * `cells` — every policy × family of the classical evaluation (the PR-1
//!   surface, unchanged);
//! * `backfill` — frontier-only vs backfilling engine on the bursty suite
//!   (with and without departures), per policy.  **Gate:** on every
//!   departure-free bursty family the backfill mean competitive ratio must
//!   not exceed the frontier-only engine's;
//! * `preemption` — non-preemptive vs preemptive epoch re-planning, plus
//!   the deterministic queued-reallotment scenario.  **Gate:** preemption
//!   strictly beats the non-preemptive run on that shipped scenario.
//!
//! The process exits non-zero when a gate fails, so CI catches regressions.

use mrt_bench::online_traces::{bursty_suite, online_policies, trace_families, TraceFamily};
use mrt_bench::summarize;
use online::policy::{EpochReplan, PolicyKind, PolicyOptions};
use serde_json::{json, Value};

fn run_family(
    family: &TraceFamily,
    kind: &PolicyKind,
    options: PolicyOptions,
    seeds: u64,
) -> (Vec<f64>, Vec<f64>, Vec<f64>, usize, String) {
    let mut vs_offline = Vec::new();
    let mut vs_lower_bound = Vec::new();
    let mut mean_flows = Vec::new();
    let mut departed = 0usize;
    let mut policy_name = String::new();
    for seed in 0..seeds {
        let trace = family.trace(seed);
        let mut policy = kind.build_with(options).expect("valid policy");
        let result = online::run(&trace, policy.as_mut()).expect("engine run succeeds");
        assert!(
            online::validate_against_trace(&trace, &result.schedule).is_empty(),
            "invalid schedule from {}",
            result.policy
        );
        let report = online::competitive_report(&trace, &result).expect("report succeeds");
        vs_offline.push(report.ratio_vs_offline);
        vs_lower_bound.push(report.ratio_vs_lower_bound);
        mean_flows.push(result.mean_flow_time);
        departed += result.departed;
        policy_name = result.policy;
    }
    (
        vs_offline,
        vs_lower_bound,
        mean_flows,
        departed,
        policy_name,
    )
}

fn main() {
    let seeds_per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut gate_failures: Vec<String> = Vec::new();

    // Section 1: the classical policy × family sweep.
    let mut cells: Vec<Value> = Vec::new();
    for family in trace_families() {
        for kind in online_policies() {
            let (vs_offline, vs_lower_bound, mean_flows, _, policy_name) =
                run_family(&family, &kind, PolicyOptions::default(), seeds_per_cell);
            let offline = summarize(&vs_offline);
            let lower = summarize(&vs_lower_bound);
            let flow = summarize(&mean_flows);
            cells.push(json!({
                "family": family.name,
                "policy": policy_name,
                "seeds": seeds_per_cell,
                "ratio_vs_offline_mean": offline.mean,
                "ratio_vs_offline_max": offline.max,
                "ratio_vs_lower_bound_mean": lower.mean,
                "ratio_vs_lower_bound_max": lower.max,
                "mean_flow_time": flow.mean,
            }));
        }
    }

    // Section 2: frontier vs backfill on the bursty suite.  The epoch-mrt
    // frontier runs double as section 3's non-preemptive baseline (same
    // policy, same default options, same deterministic traces).
    let registry = mrt_bench::default_registry();
    let mut backfill_cells: Vec<Value> = Vec::new();
    let mut epoch_frontier_by_family: Vec<(Vec<f64>, Vec<f64>)> = Vec::new();
    for family in bursty_suite() {
        for (label, kind) in [
            ("greedy", PolicyKind::Greedy),
            (
                "epoch-mrt",
                PolicyKind::Epoch {
                    period: 1.0,
                    solver: registry.get("mrt").expect("registered"),
                },
            ),
        ] {
            let (_, frontier_lb, frontier_flows, frontier_departed, _) =
                run_family(&family, &kind, PolicyOptions::default(), seeds_per_cell);
            if label == "epoch-mrt" {
                epoch_frontier_by_family.push((frontier_lb.clone(), frontier_flows.clone()));
            }
            let (_, backfill_lb, backfill_flows, backfill_departed, _) = run_family(
                &family,
                &kind,
                PolicyOptions {
                    backfill: true,
                    preempt_queued: false,
                },
                seeds_per_cell,
            );
            let frontier_mean = summarize(&frontier_lb).mean;
            let backfill_mean = summarize(&backfill_lb).mean;
            // The gate runs on the epoch re-planning policy (the engine's
            // flagship).  Greedy is reported but not gated: per-trace
            // Graham anomalies make its small-seed means noisy (see the
            // `backfilling_dominates_on_average` workspace test for its
            // statistical pin over a larger sweep).
            if label == "epoch-mrt"
                && !family.has_departures()
                && backfill_mean > frontier_mean + 1e-9
            {
                gate_failures.push(format!(
                    "backfill gate: {label} on {} regressed ({backfill_mean:.4} > {frontier_mean:.4})",
                    family.name
                ));
            }
            backfill_cells.push(json!({
                "family": family.name,
                "policy": label,
                "seeds": seeds_per_cell,
                "departures": family.has_departures(),
                "frontier_ratio_vs_lb_mean": frontier_mean,
                "backfill_ratio_vs_lb_mean": backfill_mean,
                "improvement": frontier_mean - backfill_mean,
                "frontier_mean_flow": summarize(&frontier_flows).mean,
                "backfill_mean_flow": summarize(&backfill_flows).mean,
                "frontier_departed": frontier_departed,
                "backfill_departed": backfill_departed,
            }));
        }
    }

    // Section 3: preemptive epoch re-planning.
    let mut preemption_cells: Vec<Value> = Vec::new();
    for (family, (plain_lb, plain_flows)) in bursty_suite().iter().zip(epoch_frontier_by_family) {
        let kind = PolicyKind::Epoch {
            period: 1.0,
            solver: registry.get("mrt").expect("registered"),
        };
        let (_, preempt_lb, preempt_flows, _, _) = run_family(
            family,
            &kind,
            PolicyOptions {
                backfill: false,
                preempt_queued: true,
            },
            seeds_per_cell,
        );
        preemption_cells.push(json!({
            "family": family.name,
            "seeds": seeds_per_cell,
            "plain_ratio_vs_lb_mean": summarize(&plain_lb).mean,
            "preempt_ratio_vs_lb_mean": summarize(&preempt_lb).mean,
            "plain_mean_flow": summarize(&plain_flows).mean,
            "preempt_mean_flow": summarize(&preempt_flows).mean,
        }));
    }
    // The shipped deterministic scenario (shared with the engine's
    // hand-computed unit test): preemption must strictly win.
    let scenario = online::queued_reallotment_scenario();
    let scenario_makespan = |preempt: bool| {
        let mut policy = EpochReplan::mrt(1.0)
            .expect("valid period")
            .with_preempt_queued(preempt);
        let result = online::run(&scenario, &mut policy).expect("scenario run succeeds");
        assert!(
            online::validate_against_trace(&scenario, &result.schedule).is_empty(),
            "invalid scenario schedule"
        );
        (result.makespan, result.preempted)
    };
    let (plain_makespan, _) = scenario_makespan(false);
    let (preempt_makespan, preempted) = scenario_makespan(true);
    if preempt_makespan >= plain_makespan - 1e-9 || preempted == 0 {
        gate_failures.push(format!(
            "preemption gate: scenario makespan {preempt_makespan:.4} (preempted {preempted}) \
             does not beat non-preemptive {plain_makespan:.4}"
        ));
    }
    preemption_cells.push(json!({
        "family": "queued-reallotment-scenario",
        "plain_makespan": plain_makespan,
        "preempt_makespan": preempt_makespan,
        "preempted_commitments": preempted,
    }));

    let backfill_gate_ok = !gate_failures.iter().any(|f| f.starts_with("backfill"));
    let preemption_gate_ok = !gate_failures.iter().any(|f| f.starts_with("preemption"));
    let gates = json!({
        "backfill_mean_ratio_not_worse_on_bursty_suite": backfill_gate_ok,
        "preemption_beats_plain_on_scenario": preemption_gate_ok,
    });
    let doc = json!({
        "report": "online-competitive-ratio",
        "cells": cells,
        "backfill": backfill_cells,
        "preemption": preemption_cells,
        "gates": gates,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serialisation")
    );

    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("GATE FAILURE: {failure}");
        }
        std::process::exit(1);
    }
}
