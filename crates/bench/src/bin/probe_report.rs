//! Probe-count / allocation / warm-start report for the dual search
//! (`BENCH_2.json` of the perf trajectory).
//!
//! ```text
//! cargo run -p bench --release --bin probe_report [seeds-per-cell] > BENCH_2.json
//! ```
//!
//! Three sections, one JSON document on stdout:
//!
//! * **offline** — for `n ∈ {50, 200, 1000}` on `m = 64` (mixed family):
//!   oracle probes, ns/solve and a-posteriori ratio of the classical
//!   bisection search vs the breakpoint-exact search, cold workspace vs
//!   steady-state workspace.
//! * **workspace** — the allocation-free probe invariant: buffer growth
//!   events of a steady-state workspace (must be 0).
//! * **online** — end-to-end epoch-replan runs, cold bisection vs
//!   warm-started exact, with makespans, probe totals and wall time.
//! * **overhead** — the cost of the telemetry instrumentation when nothing
//!   records: `online::run` (uninstrumented path) vs
//!   `online::run_recorded(&NoopRecorder)` on the same trace,
//!   min-of-repetitions per variant.
//!
//! The binary *gates* the PR's acceptance criteria itself and exits
//! non-zero when they fail, so CI can run it directly:
//!
//! * exact mode uses ≥ 2× fewer oracle probes than bisection on the
//!   `n = 200 / m = 64` cells;
//! * steady-state probes perform zero workspace-buffer growth;
//! * online competitive ratios agree within the search slack;
//! * the `NoopRecorder` run is within 2% of the uninstrumented run (plus a
//!   1 ms absolute floor to absorb scheduler jitter on loaded CI hosts).

use std::sync::Arc;

use malleable_core::prelude::*;
use mrt_bench::Family;
use online::policy::EpochReplan;
use serde_json::{json, Value};
use workload::{ArrivalPattern, ArrivalTrace, TraceConfig, WorkloadConfig};

fn solve_timed(
    search: &DualSearch,
    instance: &Instance,
    scheduler: &MrtScheduler,
    mode: SearchMode,
    workspace: &mut ProbeWorkspace,
) -> (SearchResult, f64) {
    let start = telemetry::SpanTimer::start();
    let result = search
        .solve_guided(instance, scheduler, mode, None, workspace)
        .expect("solve succeeds");
    (result, start.elapsed_ns() as f64)
}

fn main() {
    let seeds_per_cell: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let scheduler = MrtScheduler::default();
    let search = DualSearch::default();
    let mut failures: Vec<String> = Vec::new();

    // ---- Offline: probes and ns/solve per search mode -------------------
    let m = 64usize;
    let mut offline_cells: Vec<Value> = Vec::new();
    for &n in &[50usize, 200, 1000] {
        let mut bisect_probes = Vec::new();
        let mut exact_probes = Vec::new();
        let mut bisect_ns = Vec::new();
        let mut exact_cold_ns = Vec::new();
        let mut exact_warm_ns = Vec::new();
        let mut bisect_ratios = Vec::new();
        let mut exact_ratios = Vec::new();
        let mut warm_workspace = ProbeWorkspace::new();
        for seed in 0..seeds_per_cell {
            let instance = Family::Mixed.instance(n, m, seed);
            let (bisect, ns) = solve_timed(
                &search,
                &instance,
                &scheduler,
                SearchMode::Bisect,
                &mut ProbeWorkspace::new(),
            );
            bisect_probes.push(bisect.probes as f64);
            bisect_ns.push(ns);
            bisect_ratios.push(bisect.ratio());

            let (exact_cold, ns) = solve_timed(
                &search,
                &instance,
                &scheduler,
                SearchMode::Exact,
                &mut ProbeWorkspace::new(),
            );
            exact_probes.push(exact_cold.probes as f64);
            exact_cold_ns.push(ns);
            exact_ratios.push(exact_cold.ratio());

            // Warm workspace: buffers survive across seeds of the cell.
            let (_, ns) = solve_timed(
                &search,
                &instance,
                &scheduler,
                SearchMode::Exact,
                &mut warm_workspace,
            );
            exact_warm_ns.push(ns);

            if n == 200 && 2 * exact_cold.probes > bisect.probes {
                failures.push(format!(
                    "n={n} m={m} seed={seed}: exact used {} probes, bisect {} (< 2x reduction)",
                    exact_cold.probes, bisect.probes
                ));
            }
        }
        let bp = mrt_bench::summarize(&bisect_probes);
        let ep = mrt_bench::summarize(&exact_probes);
        offline_cells.push(json!({
            "family": "mixed",
            "tasks": n,
            "processors": m,
            "seeds": seeds_per_cell,
            "bisect_probes_mean": bp.mean,
            "exact_probes_mean": ep.mean,
            "probe_reduction": bp.mean / ep.mean,
            "bisect_ns_per_solve": mrt_bench::summarize(&bisect_ns).mean,
            "exact_cold_ns_per_solve": mrt_bench::summarize(&exact_cold_ns).mean,
            "exact_warm_ns_per_solve": mrt_bench::summarize(&exact_warm_ns).mean,
            "bisect_ratio_mean": mrt_bench::summarize(&bisect_ratios).mean,
            "exact_ratio_mean": mrt_bench::summarize(&exact_ratios).mean,
        }));
    }

    // ---- Workspace: the allocation-free probe invariant ------------------
    let instance = Family::Mixed.instance(200, m, 0);
    let mut workspace = ProbeWorkspace::new();
    // Warm-up solves size every buffer for both probe sequences.
    search
        .solve_guided(
            &instance,
            &scheduler,
            SearchMode::Exact,
            None,
            &mut workspace,
        )
        .expect("warm-up solve");
    search
        .solve_guided(
            &instance,
            &scheduler,
            SearchMode::Bisect,
            None,
            &mut workspace,
        )
        .expect("warm-up solve");
    let warmup_probes = workspace.probes();
    workspace.reset_counters();
    search
        .solve_guided(
            &instance,
            &scheduler,
            SearchMode::Exact,
            None,
            &mut workspace,
        )
        .expect("steady-state solve");
    search
        .solve_guided(
            &instance,
            &scheduler,
            SearchMode::Bisect,
            None,
            &mut workspace,
        )
        .expect("steady-state solve");
    if workspace.grow_events() != 0 {
        failures.push(format!(
            "steady-state probes grew workspace buffers {} times",
            workspace.grow_events()
        ));
    }
    let workspace_section = json!({
        "warmup_probes": warmup_probes,
        "steady_state_probes": workspace.probes(),
        "steady_state_grow_events": workspace.grow_events(),
    });

    // ---- Online: cold bisection vs warm-started exact epoch replan ------
    let mut online_cells: Vec<Value> = Vec::new();
    for seed in 0..seeds_per_cell {
        let trace = ArrivalTrace::generate(&TraceConfig {
            workload: WorkloadConfig::mixed(400, 32, seed),
            pattern: ArrivalPattern::Poisson { rate: 6.0 },
        })
        .expect("trace generation");

        // Truly cold baseline: the pre-warm-start behaviour — classical
        // bisection, no cross-epoch workspace reuse, no interval hint.
        let mut cold_policy = EpochReplan::with_solver(1.0, Arc::new(MrtSolver))
            .expect("policy")
            .with_search(SearchMode::Bisect)
            .with_warm_start(false);
        let start = telemetry::SpanTimer::start();
        let cold = online::run(&trace, &mut cold_policy).expect("cold run");
        let cold_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut warm_policy = EpochReplan::mrt(1.0).expect("policy");
        let start = telemetry::SpanTimer::start();
        let warm = online::run(&trace, &mut warm_policy).expect("warm run");
        let warm_ms = start.elapsed().as_secs_f64() * 1e3;

        // Competitive ratios must agree up to the search slack.
        let drift = warm.makespan / cold.makespan;
        if !(0.95..=1.05).contains(&drift) {
            failures.push(format!(
                "online seed {seed}: warm makespan drifted {drift:.4}x vs cold"
            ));
        }
        online_cells.push(json!({
            "seed": seed,
            "tasks": trace.len(),
            "processors": trace.processors(),
            "cold_bisect_ms": cold_ms,
            "warm_exact_ms": warm_ms,
            "speedup": cold_ms / warm_ms,
            "cold_probes": cold_policy.probes(),
            "warm_probes": warm_policy.probes(),
            "cold_makespan": cold.makespan,
            "warm_makespan": warm.makespan,
            "makespan_drift": drift,
        }));
    }

    // ---- Overhead: uninstrumented run vs NoopRecorder-recorded run ------
    // Both paths share `run_inner`; the recorded one additionally branches
    // on the (noop) recorder per event.  Min-of-repetitions, interleaved so
    // slow host phases hit both variants alike.
    let overhead_trace = ArrivalTrace::generate(&TraceConfig {
        workload: WorkloadConfig::mixed(400, 32, 0),
        pattern: ArrivalPattern::Bursty {
            burst_size: 16,
            burst_gap: 4.0,
        },
    })
    .expect("trace generation");
    let noop = telemetry::NoopRecorder;
    let mut plain_ns = Vec::new();
    let mut noop_ns = Vec::new();
    for _ in 0..7 {
        let mut policy = EpochReplan::mrt(1.0).expect("policy");
        let start = telemetry::SpanTimer::start();
        let plain = online::run(&overhead_trace, &mut policy).expect("plain run");
        plain_ns.push(start.elapsed_ns() as f64);

        let mut policy = EpochReplan::mrt(1.0).expect("policy");
        let start = telemetry::SpanTimer::start();
        let recorded =
            online::run_recorded(&overhead_trace, &mut policy, &noop).expect("recorded run");
        noop_ns.push(start.elapsed_ns() as f64);
        assert_eq!(
            plain.makespan, recorded.makespan,
            "the noop-recorded run must be behaviourally identical"
        );
    }
    let min_of = |samples: &[f64]| samples.iter().copied().fold(f64::INFINITY, f64::min);
    let plain_min = min_of(&plain_ns);
    let noop_min = min_of(&noop_ns);
    let overhead = noop_min / plain_min - 1.0;
    if noop_min > plain_min * 1.02 + 1e6 {
        failures.push(format!(
            "noop telemetry overhead {:.2}% exceeds the 2% budget ({:.3} ms vs {:.3} ms)",
            overhead * 100.0,
            noop_min / 1e6,
            plain_min / 1e6
        ));
    }
    let overhead_section = json!({
        "tasks": overhead_trace.len(),
        "processors": overhead_trace.processors(),
        "repetitions": plain_ns.len(),
        "plain_min_ns": plain_min,
        "noop_min_ns": noop_min,
        "overhead_fraction": overhead,
        "budget_fraction": 0.02,
    });

    let doc = json!({
        "report": "probe-workspace-perf",
        "offline": offline_cells,
        "workspace": workspace_section,
        "online": online_cells,
        "overhead": overhead_section,
        "gates_failed": failures.clone(),
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serialisation")
    );
    if !failures.is_empty() {
        eprintln!("probe_report gates failed:");
        for failure in &failures {
            eprintln!("  - {failure}");
        }
        std::process::exit(1);
    }
}
