//! Complexity scaling report: wall-clock time of the schedulers as a function
//! of the number of tasks `n` and processors `m`, reproducing the complexity
//! claims of Theorems 2 and 3 (`O(n·(log n + log m))` for the list phase,
//! `O(n·m)` for the exact knapsack phase).
//!
//! ```text
//! cargo run -p mrt-bench --release --bin scaling_report
//! ```

use malleable_core::bounds;
use malleable_core::canonical::CanonicalListAlgorithm;
use malleable_core::dual::DualApproximation;
use malleable_core::mrt::MrtScheduler;
use mrt_bench::Family;

fn time_probe(algorithm: &dyn DualApproximation, instance: &malleable_core::Instance) -> f64 {
    let omega = bounds::upper_bound(instance);
    let start = telemetry::SpanTimer::start();
    let outcome = algorithm.probe(instance, omega);
    assert!(outcome.is_feasible());
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    println!("scaling in the number of tasks (m = 64, mixed family)");
    println!(
        "{:>8} {:>18} {:>18}",
        "n", "canonical-list ms", "mrt probe ms"
    );
    for &n in &[100usize, 316, 1_000, 3_162, 10_000, 31_623] {
        let instance = Family::Mixed.instance(n, 64, 42);
        let list_ms = time_probe(&CanonicalListAlgorithm::default(), &instance);
        let mrt_ms = time_probe(&MrtScheduler::default(), &instance);
        println!("{n:>8} {list_ms:>18.3} {mrt_ms:>18.3}");
    }

    println!();
    println!("scaling in the number of processors (n = 2000, mixed family)");
    println!(
        "{:>8} {:>18} {:>18}",
        "m", "canonical-list ms", "mrt probe ms"
    );
    for &m in &[16usize, 32, 64, 128, 256, 512, 1024] {
        let instance = Family::Mixed.instance(2_000, m, 7);
        let list_ms = time_probe(&CanonicalListAlgorithm::default(), &instance);
        let mrt_ms = time_probe(&MrtScheduler::default(), &instance);
        println!("{m:>8} {list_ms:>18.3} {mrt_ms:>18.3}");
    }

    println!();
    println!("# expectation: the list column grows roughly linearly in n (with a");
    println!("# logarithmic factor) and is almost flat in m; the MRT probe adds the");
    println!("# knapsack term that grows with n·m, matching Theorems 2 and 3.");
}
