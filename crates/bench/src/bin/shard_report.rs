//! Sharded-engine throughput report: the 1M-task bursty trace end-to-end,
//! emitted as JSON for the perf trajectory (`BENCH_9.json` in CI).
//!
//! ```text
//! cargo run -p bench --release --bin shard_report [tasks]
//! ```
//!
//! `tasks` scales the scaling trace and the reservation microbench (default
//! 1,000,000 — CI may pass a smaller figure to bound wall time).
//!
//! Three sections:
//!
//! * `equivalence` — the delegated `--shards 1` engine vs the event-driven
//!   `EpochReplan` engine on the classical trace families, several seeds
//!   each.  **Gate:** bit-exact schedules (same entries, same makespan,
//!   same planning rounds) on every cell;
//! * `scaling` — one bursty trace streamed through the sharded engine at
//!   1, 2, 4 and 8 shards: tasks/sec, p50/p99 decision latency, the
//!   solve-phase **critical path** (`Σ` per-round max shard solve time —
//!   the wall time a one-core-per-shard machine would spend solving), work
//!   steals and timeline counters.  **Gates:** zero invariant violations
//!   on every run, and critical-path solve speedup at 4 shards ≥ 1.5× the
//!   single-shard engine;
//! * `reservations` — the measure-first clause on the `Vec`-backed
//!   [`packing::ReservationTimeline`]: draining engine-regime runs
//!   (bursty reserve + floor-advance garbage collection) in frontier-only
//!   and backfill mode at two commit counts, plus an adversarial all-live
//!   scan at up to 1M reservations.  No gate — the section records the
//!   data behind the keep-or-replace decision (frontier mode scans no
//!   intervals, and backfill cost is flat in total commits because the GC
//!   bounds the live set; see `decision`).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use online::{engine, run_sharded, run_sharded_stream, CollectingSink, NullSink, ShardedConfig};
use online::{EpochReplan, OnlineResult};
use packing::reservations::{HolePolicy, ReservationTimeline};
use packing::timeline::TieBreak;
use serde_json::{json, Value};
use telemetry::{names, LogHistogram, Recorder, SharedRecorder, SpanTimer, TelemetryEvent};
use workload::{ArrivalPattern, ArrivalStream, TraceConfig, WorkloadConfig};

use mrt_bench::online_traces::trace_families;

/// A recorder that keeps counters and histograms but drops the event
/// stream: a million-task run through the event-driven engine emits one
/// `Place` and one `Complete` event per task, and materialising those here
/// would measure the report harness, not the engine.
#[derive(Debug, Default)]
struct LeanRecorder {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, LogHistogram>>,
}

impl LeanRecorder {
    fn shared() -> Arc<LeanRecorder> {
        Arc::new(LeanRecorder::default())
    }

    fn counter(&self, name: &str) -> u64 {
        *self
            .counters
            .lock()
            .expect("recorder lock")
            .get(name)
            .unwrap_or(&0)
    }

    fn histogram(&self, name: &str) -> Option<LogHistogram> {
        self.histograms
            .lock()
            .expect("recorder lock")
            .get(name)
            .cloned()
    }
}

impl Recorder for LeanRecorder {
    fn event(&self, _event: TelemetryEvent) {}

    fn add(&self, counter: &'static str, delta: u64) {
        *self
            .counters
            .lock()
            .expect("recorder lock")
            .entry(counter)
            .or_insert(0) += delta;
    }

    fn sample(&self, histogram: &'static str, value: u64) {
        self.histograms
            .lock()
            .expect("recorder lock")
            .entry(histogram)
            .or_default()
            .record(value);
    }
}

fn mrt() -> malleable_core::SolverHandle {
    solver::default_registry().get("mrt").expect("mrt solver")
}

/// The scaling trace: synchronised 1000-task bursts of mixed traffic on a
/// 16-processor machine, the configuration named by the issue.
fn scaling_trace(tasks: usize) -> TraceConfig {
    TraceConfig {
        workload: WorkloadConfig::mixed(tasks, 16, 42),
        pattern: ArrivalPattern::Bursty {
            burst_size: 1000,
            burst_gap: 2.0,
        },
    }
}

fn quantile_ns(hist: &Option<LogHistogram>, q: f64) -> u64 {
    hist.as_ref().map(|h| h.quantile(q)).unwrap_or(0)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale_tasks: usize = args
        .iter()
        .find_map(|t| t.parse().ok())
        .unwrap_or(1_000_000);
    let mut gate_failures: Vec<String> = Vec::new();

    // ── Section 1: single-shard delegation is bit-exact with the engine ──
    let mut equivalence_cells: Vec<Value> = Vec::new();
    for family in trace_families() {
        for seed in [1u64, 2, 3] {
            let trace = family.trace(seed);
            let mut policy = EpochReplan::mrt(1.0).expect("epoch policy");
            let expected: OnlineResult = engine::run(&trace, &mut policy).expect("engine run");
            let config = ShardedConfig::new(1, 1.0, mrt());
            let mut sink = CollectingSink::new(trace.processors());
            let result =
                run_sharded(&trace, &config, &mut sink, None).expect("single-shard delegation");
            let schedule = sink.into_schedule();
            let bit_exact = schedule == expected.schedule
                && result.makespan == expected.makespan
                && result.rounds == expected.replans;
            if !bit_exact {
                gate_failures.push(format!(
                    "equivalence gate: {} seed {seed}: --shards 1 diverged from the engine \
                     (makespan {} vs {}, rounds {} vs {})",
                    family.name,
                    result.makespan,
                    expected.makespan,
                    result.rounds,
                    expected.replans
                ));
            }
            equivalence_cells.push(json!({
                "family": family.name,
                "seed": seed,
                "tasks": trace.len(),
                "makespan": result.makespan,
                "rounds": result.rounds,
                "bit_exact": bit_exact,
            }));
        }
    }

    // ── Section 2: throughput scaling on the bursty trace ────────────────
    let mut scaling_cells: Vec<Value> = Vec::new();
    let mut critical_ns_by_shards: BTreeMap<usize, u64> = BTreeMap::new();
    let mut tasks_per_sec_by_shards: BTreeMap<usize, f64> = BTreeMap::new();
    let trace_config = scaling_trace(scale_tasks);
    for shards in [1usize, 2, 4, 8] {
        let recorder = LeanRecorder::shared();
        let shared: SharedRecorder = Arc::clone(&recorder) as SharedRecorder;
        let config = ShardedConfig::new(shards, 1.0, mrt());
        let stream = ArrivalStream::new(&trace_config).expect("arrival stream");
        let mut sink = NullSink;
        let result =
            run_sharded_stream(stream, 16, &config, &mut sink, Some(shared)).expect("sharded run");
        let seconds = result.run_ns as f64 / 1e9;
        let tasks_per_sec = if seconds > 0.0 {
            result.placed as f64 / seconds
        } else {
            0.0
        };
        let decisions = recorder.histogram(names::DECISION_NS);
        if result.placed != scale_tasks {
            gate_failures.push(format!(
                "scaling gate: {} shard(s) placed {} of {scale_tasks} tasks",
                shards, result.placed
            ));
        }
        if result.invariant_violations != 0 {
            gate_failures.push(format!(
                "scaling gate: {} shard(s) recorded {} invariant violation(s)",
                shards, result.invariant_violations
            ));
        }
        critical_ns_by_shards.insert(shards, result.solve_critical_ns);
        tasks_per_sec_by_shards.insert(shards, tasks_per_sec);
        scaling_cells.push(json!({
            "policy": result.policy,
            "shards": shards,
            "tasks": result.placed,
            "makespan": result.makespan,
            "rounds": result.rounds,
            "solves": result.solves,
            "steals": result.steals,
            "run_ns": result.run_ns,
            "tasks_per_sec": tasks_per_sec,
            "solve_critical_ns": result.solve_critical_ns,
            "solve_total_ns": result.solve_total_ns,
            "decision_p50_ns": quantile_ns(&decisions, 0.50),
            "decision_p99_ns": quantile_ns(&decisions, 0.99),
            // The single-shard engine samples per event-loop iteration;
            // the sharded coordinator samples per epoch round.
            "decision_granularity": if shards == 1 { "event" } else { "round" },
            "invariant_violations": result.invariant_violations,
            "steal_events": recorder.counter(names::STEALS),
            "timeline_reservations": result.timeline.reservations,
            "timeline_holes_scanned": result.timeline.holes_scanned,
        }));
    }
    let baseline_critical = *critical_ns_by_shards.get(&1).unwrap_or(&0);
    let mut speedup_members: Vec<(String, Value)> = Vec::new();
    for (&shards, &critical) in &critical_ns_by_shards {
        let speedup = if critical > 0 {
            baseline_critical as f64 / critical as f64
        } else {
            0.0
        };
        speedup_members.push((format!("x{shards}"), json!(speedup)));
        if shards == 4 && speedup < 1.5 {
            gate_failures.push(format!(
                "scaling gate: solve critical-path speedup at 4 shards is {speedup:.2}x \
                 (< 1.5x the single-shard engine)"
            ));
        }
    }
    let solve_speedups = Value::Object(speedup_members);
    let tasks_per_sec = Value::Object(
        tasks_per_sec_by_shards
            .iter()
            .map(|(shards, tps)| (format!("x{shards}"), json!(*tps)))
            .collect(),
    );

    // ── Section 3: the measure-first reservation microbench ──────────────
    // Engine regime: a draining machine at full utilisation.  Each round
    // commits a burst through `earliest_window` + `reserve`, then the
    // floor advances to the horizon the machine had *before the previous
    // burst* — exactly the `MachineState::advance_to` garbage collection
    // as completed work drains — so the live interval population stays
    // near the in-flight window (a burst or two), not the running total
    // of commits.  Run once in the engine's default frontier-only mode at
    // the full commit count, and twice in duration-aware backfill mode at
    // two commit counts: if the per-query cost is flat between them, the
    // scans are linear in the GC-bounded *live* set, not the total.
    let engine_total = scale_tasks.max(1);
    let draining_regime = |total: usize, policy: HolePolicy| -> Value {
        let mut timeline = ReservationTimeline::new(16, policy);
        let burst = 1000usize.min(total);
        let rounds = total.div_ceil(burst);
        let mut live_max = 0usize;
        let mut live_sum = 0u64;
        let mut live_samples = 0u64;
        // `live_reservations` walks every slot ever committed (a debug
        // accessor, not an engine path) — sample it sparsely so the probe
        // does not dominate the measurement.
        let sample_every = (rounds / 50).max(1);
        let mut drained_horizon = 0.0f64;
        let query_timer = SpanTimer::start();
        let mut queries = 0u64;
        for round in 0..rounds {
            timeline.advance_to(drained_horizon);
            drained_horizon = timeline.makespan();
            for i in 0..burst.min(total - round * burst) {
                let count = 1 + (i % 4);
                let duration = 0.5 + ((i * 37) % 100) as f64 / 100.0;
                let window = timeline.earliest_window(count, duration, TieBreak::PaperConvention);
                queries += 1;
                timeline.reserve(window.first, count, window.start, duration);
            }
            if round % sample_every == 0 {
                let live = timeline.live_reservations();
                live_max = live_max.max(live);
                live_sum += live as u64;
                live_samples += 1;
            }
        }
        let ns_per_op = query_timer.elapsed_ns() as f64 / queries.max(1) as f64;
        json!({
            "policy": format!("{policy:?}"),
            "total_reservations": total,
            "burst": burst,
            "live_mean": live_sum as f64 / live_samples.max(1) as f64,
            "live_max": live_max,
            "ns_per_reserve_query": ns_per_op,
            "holes_scanned": timeline.stats().holes_scanned,
        })
    };
    let frontier_cell = draining_regime(engine_total, HolePolicy::FrontierOnly);
    let backfill_small_total = (engine_total / 10).max(10_000);
    let backfill_small = draining_regime(backfill_small_total, HolePolicy::Backfill);
    let backfill_full =
        draining_regime(engine_total.max(backfill_small_total), HolePolicy::Backfill);
    let ns_of = |cell: &Value| {
        cell.get("ns_per_reserve_query")
            .and_then(Value::as_f64)
            .unwrap_or(f64::INFINITY)
    };
    let frontier_scans = frontier_cell
        .get("holes_scanned")
        .and_then(Value::as_u64)
        .unwrap_or(u64::MAX);
    let backfill_cost_flat = ns_of(&backfill_full) <= ns_of(&backfill_small) * 1.75 + 500.0;

    // Adversarial regime: every reservation stays live (the floor never
    // advances), then duration-aware window queries must sweep the packed
    // interval lists end to end — the worst case the O(log n) structure
    // would help.
    let mut worst_cells: Vec<Value> = Vec::new();
    for n in [10_000usize, 100_000, 1_000_000] {
        let n = n.min(engine_total.max(10_000));
        let mut packed = ReservationTimeline::new(16, HolePolicy::Backfill);
        for i in 0..n {
            let first = i % 16;
            let start = (i / 16) as f64;
            packed.reserve(first, 1, start, 1.0);
        }
        let sweeps = 5u32;
        let sweep_timer = SpanTimer::start();
        for _ in 0..sweeps {
            let window = packed.earliest_window(4, 1.0, TieBreak::PaperConvention);
            assert!(window.start.is_finite());
        }
        let ns_per_query = sweep_timer.elapsed_ns() as f64 / f64::from(sweeps);
        worst_cells.push(json!({
            "live_reservations": packed.live_reservations(),
            "ns_per_query": ns_per_query,
            "holes_scanned": packed.stats().holes_scanned,
        }));
    }
    // The keep-or-replace decision, from the data: the engine's default
    // frontier-only mode never scans intervals at all (O(m) per query,
    // `holes_scanned` stays 0), and the duration-aware backfill mode's
    // per-query cost is flat in the total commit count because the floor
    // GC keeps the live set near the in-flight burst.  Only the
    // adversarial all-live scan degrades linearly, and it requires
    // backfill mode *and* a floor that never advances — neither holds on
    // the engine path, so the Vec stays.
    let vec_scan_ok = frontier_scans == 0 && backfill_cost_flat;
    let decision = if vec_scan_ok {
        "retain-vec: frontier mode scans nothing and backfill cost is flat in total \
         commits (linear only in the GC-bounded live set)"
    } else {
        "replace: scan cost grows with total commits; adopt an O(log n) interval structure"
    };
    let reservations = json!({
        "engine_regime": json!([frontier_cell, backfill_small, backfill_full]),
        "all_live_scan": worst_cells,
        "vec_scan_ok": vec_scan_ok,
        "decision": decision,
    });

    let equivalence_gate_ok = !gate_failures.iter().any(|f| f.starts_with("equivalence"));
    let scaling_gate_ok = !gate_failures.iter().any(|f| f.starts_with("scaling"));
    let gates = json!({
        "single_shard_bit_exact_with_engine": equivalence_gate_ok,
        "zero_invariant_violations_and_1p5x_solve_speedup_at_4_shards": scaling_gate_ok,
    });
    let doc = json!({
        "report": "sharded-online-engine",
        "tasks": scale_tasks,
        "equivalence": equivalence_cells,
        "scaling": scaling_cells,
        "solve_critical_speedup": solve_speedups,
        "tasks_per_sec": tasks_per_sec,
        "reservations": reservations,
        "gates": gates,
    });
    println!(
        "{}",
        serde_json::to_string_pretty(&doc).expect("report serialisation")
    );

    if !gate_failures.is_empty() {
        for failure in &gate_failures {
            eprintln!("GATE FAILURE: {failure}");
        }
        std::process::exit(1);
    }
}
