//! Hand-rolled argument parsing for the `malleable-sched` binary.
//!
//! The parser is deliberately dependency-free (the workspace keeps its
//! dependency footprint to the numerical crates) and strict: unknown flags
//! and missing values are reported with the offending token.

use std::fmt;

/// Resolve a solver name or alias against the workspace [`SolverRegistry`],
/// returning the canonical name.  Every algorithm the CLI can run — offline
/// (`schedule --solver`) or as an online planning oracle (`online --solver`)
/// — goes through this one lookup, so a solver registered in the `solver`
/// crate is immediately available everywhere.
///
/// [`SolverRegistry`]: malleable_core::solver::SolverRegistry
fn resolve_solver(flag: &str, token: &str) -> Result<String, ParseError> {
    let registry = solver::default_registry();
    registry
        .resolve(token)
        .map(str::to_string)
        .ok_or_else(|| ParseError::UnknownSolver {
            flag: flag.to_string(),
            value: token.to_string(),
            registered: registry.names().collect::<Vec<_>>().join(", "),
        })
}

/// Which workload family a `generate` invocation should draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FamilyChoice {
    /// Mixed Amdahl / power-law / communication / sequential tasks.
    Mixed,
    /// Wide parallel tasks dominating (knapsack regime).
    Wide,
    /// Small sequential tasks dominating (LPT regime).
    Sequential,
}

impl FamilyChoice {
    fn parse(token: &str) -> Result<Self, ParseError> {
        match token {
            "mixed" => Ok(FamilyChoice::Mixed),
            "wide" | "wide-tasks" => Ok(FamilyChoice::Wide),
            "sequential" | "sequential-heavy" => Ok(FamilyChoice::Sequential),
            other => Err(ParseError::InvalidValue {
                flag: "--family".into(),
                value: other.into(),
            }),
        }
    }
}

/// Which arrival pattern a `trace` invocation should use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PatternChoice {
    /// Poisson arrivals with the given rate.
    Poisson { rate: f64 },
    /// Bursts of simultaneous arrivals.
    Bursty { burst_size: usize, burst_gap: f64 },
}

/// Which online policy an `online` invocation should run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PolicyChoice {
    /// Immediate greedy list scheduling.
    Greedy,
    /// Epoch-based offline re-planning.
    Epoch,
    /// Batch the queue until the machine is idle.
    Batch,
}

/// Which dual-search mode the MRT scheduler uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchChoice {
    /// Breakpoint-index bisection: `⌈log₂(n·m)⌉ + O(1)` probes, exact
    /// certified bound (default).
    #[default]
    Exact,
    /// Classical 30-iteration `f64` midpoint bisection of §2.2.
    Bisect,
}

impl SearchChoice {
    fn parse(token: &str) -> Result<Self, ParseError> {
        match token {
            "exact" | "breakpoint" => Ok(SearchChoice::Exact),
            "bisect" | "bisection" => Ok(SearchChoice::Bisect),
            other => Err(ParseError::InvalidValue {
                flag: "--search".into(),
                value: other.into(),
            }),
        }
    }
}

/// A parsed command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic instance and write it as JSON.
    Generate {
        family: FamilyChoice,
        tasks: usize,
        processors: usize,
        seed: u64,
        output: Option<String>,
    },
    /// Generate an arrival trace and write it as JSON.
    Trace {
        family: FamilyChoice,
        pattern: PatternChoice,
        tasks: usize,
        processors: usize,
        seed: u64,
        /// Mean patience before a queued task departs (None = no departures).
        departure_patience: Option<f64>,
        output: Option<String>,
    },
    /// Run the online engine over an arrival trace.
    Online {
        /// Trace file; when absent a trace is generated from the flags below.
        trace: Option<String>,
        policy: PolicyChoice,
        /// Canonical name of the offline solver (registry-resolved).
        solver: String,
        search: SearchChoice,
        epoch: f64,
        /// Partition the cluster into this many per-shard timelines and run
        /// the sharded parallel engine (epoch policies only; 1 = the
        /// event-driven engine).
        shards: usize,
        /// Plan arrival-only epochs as deltas against the surviving
        /// schedule, falling back to a full re-solve after departures or
        /// faults (epoch policies with a preemption flag only).
        delta_plan: bool,
        /// First-fit placements into idle holes below the frontier.
        backfill: bool,
        /// Revoke queued commitments at epoch boundaries and re-solve them
        /// (epoch policies only).
        preempt_queued: bool,
        /// Truncate running commitments at epoch boundaries and re-solve
        /// their residuals — mid-execution re-allotment (epoch policies
        /// only; implies --preempt-queued).
        preempt_running: bool,
        /// Machine-class spec (`old=8x1.0,new=4x2.0`): run the classed
        /// engine over per-class pools instead of the identical-machines
        /// engine (epoch policies only).
        machine_classes: Option<String>,
        family: FamilyChoice,
        pattern: PatternChoice,
        tasks: usize,
        processors: usize,
        seed: u64,
        /// Mean patience for the inline-generated trace (None = no
        /// departures; ignored when --trace is given).
        departure_patience: Option<f64>,
        /// Mean time between crashes per processor (None = no crashes).
        mtbf: Option<f64>,
        /// Mean repair time for crashed processors.
        mttr: f64,
        /// Probability each (task, attempt) pair is killed mid-segment.
        task_failure_rate: f64,
        /// Attempts budget per task before it is abandoned.
        max_attempts: usize,
        /// Base backoff before the first retry (doubles per failure, capped).
        retry_backoff: f64,
        /// Seed of the deterministic fault plan (defaults to --seed).
        fault_seed: Option<u64>,
        /// Force the primary solver to fault on this 1-based solve index,
        /// degrading that epoch to the greedy-list fallback.
        solver_fault: Option<usize>,
        /// Record structured telemetry and write the event stream to this
        /// JSONL file; also prints the decision-latency/throughput summary.
        telemetry: Option<String>,
        json: bool,
        no_validate: bool,
        output: Option<String>,
    },
    /// Schedule an instance file.
    Schedule {
        instance: String,
        /// Canonical name of the solver (registry-resolved).
        solver: String,
        search: SearchChoice,
        parallel_branches: bool,
        /// Machine-class spec, forwarded to the classed solvers as their
        /// `machine-classes` config key (hetero solvers only).
        machine_classes: Option<String>,
        gantt: bool,
        output: Option<String>,
    },
    /// Validate a schedule file against an instance file.
    Validate { instance: String, schedule: String },
    /// Print bounds and statistics of an instance file.
    Bounds { instance: String },
    /// List every registered solver with its aliases and capabilities.
    Solvers,
    /// Print the usage text.
    Help,
}

/// The parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The selected command.
    pub command: Command,
}

/// Errors produced while parsing the command line.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// No subcommand was given.
    MissingCommand,
    /// The subcommand is not one of the known ones.
    UnknownCommand(String),
    /// A flag that is not understood by the subcommand.
    UnknownFlag(String),
    /// A flag that needs a value was given without one.
    MissingValue(String),
    /// A flag value could not be parsed.
    InvalidValue { flag: String, value: String },
    /// A solver name that is not in the registry.
    UnknownSolver {
        flag: String,
        value: String,
        registered: String,
    },
    /// A required positional argument is missing.
    MissingArgument(&'static str),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::MissingCommand => write!(f, "no command given (try `help`)"),
            ParseError::UnknownCommand(c) => write!(f, "unknown command `{c}` (try `help`)"),
            ParseError::UnknownFlag(flag) => write!(f, "unknown flag `{flag}`"),
            ParseError::MissingValue(flag) => write!(f, "flag `{flag}` needs a value"),
            ParseError::InvalidValue { flag, value } => {
                write!(f, "invalid value `{value}` for `{flag}`")
            }
            ParseError::UnknownSolver {
                flag,
                value,
                registered,
            } => {
                write!(
                    f,
                    "unknown solver `{value}` for `{flag}` (registered: {registered}; \
                     run `malleable-sched solvers` for details)"
                )
            }
            ParseError::MissingArgument(name) => write!(f, "missing argument <{name}>"),
        }
    }
}

impl std::error::Error for ParseError {}

/// The usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
malleable-sched — scheduling independent monotonic malleable tasks (SPAA 1999 reproduction)

USAGE:
  malleable-sched generate --family <mixed|wide|sequential> [--tasks N] [--processors M]
                           [--seed S] [--output FILE]
  malleable-sched trace    --pattern <poisson|bursty> [--rate R] [--burst-size N] [--burst-gap G]
                           [--family <mixed|wide|sequential>] [--tasks N] [--processors M]
                           [--seed S] [--departure-patience P] [--output FILE]
                           (--departure-patience gives every task an exponential
                           patience with mean P: tasks not started in time depart)
  malleable-sched online   [--trace FILE] --policy <greedy|epoch-mrt|epoch-ludwig|epoch-list|batch-idle>
                           [--epoch D] [--solver NAME] [--search <exact|bisect>]
                           [--shards N] [--delta-plan]
                           [--backfill] [--preempt-queued] [--preempt-running]
                           [--machine-classes old=8x1.0,new=4x2.0]
                           [--mtbf T [--mttr T]] [--task-failure-rate P]
                           [--max-attempts N] [--retry-backoff T] [--fault-seed S]
                           [--solver-fault K]
                           [--telemetry events.jsonl] [--json] [--no-validate]
                           [--output schedule.json]
                           (without --trace, the trace flags of `trace` generate one
                           inline; --shards N partitions the cluster into N per-shard
                           timelines and runs the sharded parallel engine — epoch
                           solves for different shards run concurrently and queued
                           tasks are stolen from overloaded shards at epoch
                           boundaries; epoch policies only, not combinable with the
                           fault, departure, class or preemption flags; --delta-plan
                           makes preemptive epoch policies plan arrival-only epochs
                           as deltas (no revocations), falling back to a full
                           re-solve after departures or faults;
                           --backfill first-fits placements into idle holes
                           below the frontier; --preempt-queued makes epoch policies
                           revoke not-yet-started commitments at every epoch boundary
                           and re-solve them with the pending set; --preempt-running
                           additionally truncates running commitments at the boundary
                           and re-solves their residuals — mid-execution re-allotment,
                           work conserved under the speed-up model; --telemetry records
                           the structured event stream as JSONL and prints decision-
                           latency percentiles, tasks/sec and the utilisation timeline;
                           --mtbf injects seeded processor crashes with mean uptime T
                           and mean repair --mttr, --task-failure-rate kills each task
                           attempt with probability P and retries it with capped
                           exponential backoff up to --max-attempts, --solver-fault
                           forces the K-th epoch solve to fail and degrade to the
                           greedy-list fallback — all deterministic per --fault-seed;
                           --machine-classes splits the machine into named speed
                           classes and runs the classed epoch engine: per-class
                           solves, queued tasks may migrate between classes at
                           epoch boundaries — epoch policies only, and not
                           combinable with fault, departure or preemption flags)
  malleable-sched schedule <instance.json> [--solver NAME]
                           [--search <exact|bisect>] [--parallel-branches]
                           [--machine-classes old=8x1.0,new=4x2.0]
                           [--gantt] [--output schedule.json]
                           (--algorithm is a deprecated alias of --solver; --search and
                           --parallel-branches only affect the mrt solver: `exact` bisects
                           over the oracle's breakpoints, `bisect` is the classical
                           midpoint search of the paper; --machine-classes needs a
                           classed solver — `--solver hetero-lp` or `hetero-greedy` —
                           whose class counts must sum to the instance's processors)
  malleable-sched solvers  (list every registered solver: names, aliases, guarantees)
  malleable-sched validate <instance.json> <schedule.json>
  malleable-sched bounds   <instance.json>
  malleable-sched help

Solver NAMEs are resolved through the workspace solver registry
(mrt, list, ludwig, twy-list, twy-nfdh, gang, lpt, hetero-lp, hetero-greedy,
plus aliases — see `solvers`).
";

struct TokenStream<'a> {
    tokens: &'a [String],
    index: usize,
}

impl<'a> TokenStream<'a> {
    fn new(tokens: &'a [String]) -> Self {
        TokenStream { tokens, index: 0 }
    }

    fn next(&mut self) -> Option<&'a str> {
        let token = self.tokens.get(self.index).map(String::as_str);
        self.index += 1;
        token
    }

    fn value_for(&mut self, flag: &str) -> Result<&'a str, ParseError> {
        self.next()
            .ok_or_else(|| ParseError::MissingValue(flag.to_string()))
    }
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ParseError> {
    value.parse().map_err(|_| ParseError::InvalidValue {
        flag: flag.to_string(),
        value: value.to_string(),
    })
}

/// Validate a `--machine-classes` spec (`old=8x1.0,new=4x2.0`) at parse
/// time so malformed class lists fail before any file is read.
fn parse_class_spec(value: &str) -> Result<String, ParseError> {
    workload::parse_class_specs(value)
        .map(|_| value.to_string())
        .map_err(|_| ParseError::InvalidValue {
            flag: "--machine-classes".into(),
            value: value.to_string(),
        })
}

impl Cli {
    /// Parse an argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<Self, ParseError> {
        let mut stream = TokenStream::new(args);
        let command = match stream.next() {
            None => return Err(ParseError::MissingCommand),
            Some("help" | "--help" | "-h") => Command::Help,
            Some("generate") => Self::parse_generate(&mut stream)?,
            Some("trace") => Self::parse_trace(&mut stream)?,
            Some("online") => Self::parse_online(&mut stream)?,
            Some("schedule") => Self::parse_schedule(&mut stream)?,
            Some("validate") => Self::parse_validate(&mut stream)?,
            Some("bounds") => Self::parse_bounds(&mut stream)?,
            Some("solvers") => Command::Solvers,
            Some(other) => return Err(ParseError::UnknownCommand(other.to_string())),
        };
        Ok(Cli { command })
    }

    fn parse_generate(stream: &mut TokenStream) -> Result<Command, ParseError> {
        let mut family = FamilyChoice::Mixed;
        let mut tasks = 40usize;
        let mut processors = 32usize;
        let mut seed = 0u64;
        let mut output = None;
        while let Some(token) = stream.next() {
            match token {
                "--family" => family = FamilyChoice::parse(stream.value_for("--family")?)?,
                "--tasks" => tasks = parse_number("--tasks", stream.value_for("--tasks")?)?,
                "--processors" => {
                    processors = parse_number("--processors", stream.value_for("--processors")?)?
                }
                "--seed" => seed = parse_number("--seed", stream.value_for("--seed")?)?,
                "--output" | "-o" => output = Some(stream.value_for("--output")?.to_string()),
                other => return Err(ParseError::UnknownFlag(other.to_string())),
            }
        }
        Ok(Command::Generate {
            family,
            tasks,
            processors,
            seed,
            output,
        })
    }

    fn parse_trace(stream: &mut TokenStream) -> Result<Command, ParseError> {
        let mut family = FamilyChoice::Mixed;
        let mut pattern_name = "poisson".to_string();
        let mut rate = 4.0f64;
        let mut burst_size = 16usize;
        let mut burst_gap = 4.0f64;
        let mut tasks = 200usize;
        let mut processors = 32usize;
        let mut seed = 0u64;
        let mut departure_patience = None;
        let mut output = None;
        while let Some(token) = stream.next() {
            match token {
                "--family" => family = FamilyChoice::parse(stream.value_for("--family")?)?,
                "--pattern" => pattern_name = stream.value_for("--pattern")?.to_string(),
                "--rate" => rate = parse_number("--rate", stream.value_for("--rate")?)?,
                "--burst-size" => {
                    burst_size = parse_number("--burst-size", stream.value_for("--burst-size")?)?
                }
                "--burst-gap" => {
                    burst_gap = parse_number("--burst-gap", stream.value_for("--burst-gap")?)?
                }
                "--tasks" => tasks = parse_number("--tasks", stream.value_for("--tasks")?)?,
                "--processors" => {
                    processors = parse_number("--processors", stream.value_for("--processors")?)?
                }
                "--seed" => seed = parse_number("--seed", stream.value_for("--seed")?)?,
                "--departure-patience" => {
                    departure_patience = Some(parse_number(
                        "--departure-patience",
                        stream.value_for("--departure-patience")?,
                    )?)
                }
                "--output" | "-o" => output = Some(stream.value_for("--output")?.to_string()),
                other => return Err(ParseError::UnknownFlag(other.to_string())),
            }
        }
        let pattern = Self::resolve_pattern(&pattern_name, rate, burst_size, burst_gap)?;
        Ok(Command::Trace {
            family,
            pattern,
            tasks,
            processors,
            seed,
            departure_patience,
            output,
        })
    }

    fn resolve_pattern(
        name: &str,
        rate: f64,
        burst_size: usize,
        burst_gap: f64,
    ) -> Result<PatternChoice, ParseError> {
        match name {
            "poisson" => Ok(PatternChoice::Poisson { rate }),
            "bursty" | "burst" => Ok(PatternChoice::Bursty {
                burst_size,
                burst_gap,
            }),
            other => Err(ParseError::InvalidValue {
                flag: "--pattern".into(),
                value: other.into(),
            }),
        }
    }

    fn parse_online(stream: &mut TokenStream) -> Result<Command, ParseError> {
        let mut trace = None;
        let mut policy = None;
        let mut solver_flag: Option<String> = None;
        let mut solver_from_policy: Option<String> = None;
        let mut search = SearchChoice::default();
        let mut epoch = 1.0f64;
        let mut shards = 1usize;
        let mut delta_plan = false;
        let mut backfill = false;
        let mut preempt_queued = false;
        let mut preempt_running = false;
        let mut machine_classes = None;
        let mut family = FamilyChoice::Mixed;
        let mut pattern_name = "poisson".to_string();
        let mut rate = 4.0f64;
        let mut burst_size = 16usize;
        let mut burst_gap = 4.0f64;
        let mut tasks = 200usize;
        let mut processors = 32usize;
        let mut seed = 0u64;
        let mut departure_patience = None;
        let mut mtbf = None;
        let mut mttr = 2.0f64;
        let mut task_failure_rate = 0.0f64;
        let mut max_attempts = 4usize;
        let mut retry_backoff = 0.5f64;
        let mut fault_seed = None;
        let mut solver_fault = None;
        let mut telemetry = None;
        let mut json = false;
        let mut no_validate = false;
        let mut output = None;
        while let Some(token) = stream.next() {
            match token {
                "--trace" | "-t" => trace = Some(stream.value_for("--trace")?.to_string()),
                "--policy" | "-p" => {
                    let value = stream.value_for("--policy")?;
                    // `epoch-<solver>` tokens imply the solver; any registered
                    // solver name after the `epoch-` prefix is accepted.
                    let (choice, implied) = match value {
                        "greedy" | "greedy-list" => (PolicyChoice::Greedy, None),
                        "epoch" => (PolicyChoice::Epoch, Some("mrt".to_string())),
                        "batch" | "batch-idle" => (PolicyChoice::Batch, None),
                        other => match other.strip_prefix("epoch-") {
                            Some(solver) => (
                                PolicyChoice::Epoch,
                                Some(resolve_solver("--policy", solver)?),
                            ),
                            None => {
                                return Err(ParseError::InvalidValue {
                                    flag: "--policy".into(),
                                    value: other.into(),
                                })
                            }
                        },
                    };
                    policy = Some(choice);
                    solver_from_policy = implied;
                }
                "--solver" => {
                    solver_flag = Some(resolve_solver("--solver", stream.value_for("--solver")?)?)
                }
                "--search" => search = SearchChoice::parse(stream.value_for("--search")?)?,
                "--epoch" => epoch = parse_number("--epoch", stream.value_for("--epoch")?)?,
                "--shards" => shards = parse_number("--shards", stream.value_for("--shards")?)?,
                "--delta-plan" => delta_plan = true,
                "--backfill" => backfill = true,
                "--preempt-queued" => preempt_queued = true,
                "--preempt-running" => preempt_running = true,
                "--machine-classes" => {
                    machine_classes =
                        Some(parse_class_spec(stream.value_for("--machine-classes")?)?)
                }
                "--family" => family = FamilyChoice::parse(stream.value_for("--family")?)?,
                "--pattern" => pattern_name = stream.value_for("--pattern")?.to_string(),
                "--rate" => rate = parse_number("--rate", stream.value_for("--rate")?)?,
                "--burst-size" => {
                    burst_size = parse_number("--burst-size", stream.value_for("--burst-size")?)?
                }
                "--burst-gap" => {
                    burst_gap = parse_number("--burst-gap", stream.value_for("--burst-gap")?)?
                }
                "--tasks" => tasks = parse_number("--tasks", stream.value_for("--tasks")?)?,
                "--processors" => {
                    processors = parse_number("--processors", stream.value_for("--processors")?)?
                }
                "--seed" => seed = parse_number("--seed", stream.value_for("--seed")?)?,
                "--departure-patience" => {
                    departure_patience = Some(parse_number(
                        "--departure-patience",
                        stream.value_for("--departure-patience")?,
                    )?)
                }
                "--mtbf" => mtbf = Some(parse_number("--mtbf", stream.value_for("--mtbf")?)?),
                "--mttr" => mttr = parse_number("--mttr", stream.value_for("--mttr")?)?,
                "--task-failure-rate" => {
                    task_failure_rate = parse_number(
                        "--task-failure-rate",
                        stream.value_for("--task-failure-rate")?,
                    )?
                }
                "--max-attempts" => {
                    max_attempts =
                        parse_number("--max-attempts", stream.value_for("--max-attempts")?)?
                }
                "--retry-backoff" => {
                    retry_backoff =
                        parse_number("--retry-backoff", stream.value_for("--retry-backoff")?)?
                }
                "--fault-seed" => {
                    fault_seed = Some(parse_number(
                        "--fault-seed",
                        stream.value_for("--fault-seed")?,
                    )?)
                }
                "--solver-fault" => {
                    solver_fault = Some(parse_number(
                        "--solver-fault",
                        stream.value_for("--solver-fault")?,
                    )?)
                }
                "--telemetry" => telemetry = Some(stream.value_for("--telemetry")?.to_string()),
                "--json" => json = true,
                "--no-validate" => no_validate = true,
                "--output" | "-o" => output = Some(stream.value_for("--output")?.to_string()),
                other => return Err(ParseError::UnknownFlag(other.to_string())),
            }
        }
        let pattern = Self::resolve_pattern(&pattern_name, rate, burst_size, burst_gap)?;
        Ok(Command::Online {
            trace,
            policy: policy.ok_or(ParseError::MissingArgument("--policy"))?,
            solver: solver_flag
                .or(solver_from_policy)
                .unwrap_or_else(|| "mrt".to_string()),
            search,
            epoch,
            shards,
            delta_plan,
            backfill,
            preempt_queued,
            preempt_running,
            machine_classes,
            family,
            pattern,
            tasks,
            processors,
            seed,
            departure_patience,
            mtbf,
            mttr,
            task_failure_rate,
            max_attempts,
            retry_backoff,
            fault_seed,
            solver_fault,
            telemetry,
            json,
            no_validate,
            output,
        })
    }

    fn parse_schedule(stream: &mut TokenStream) -> Result<Command, ParseError> {
        let mut instance = None;
        let mut solver = "mrt".to_string();
        let mut search = SearchChoice::default();
        let mut parallel_branches = false;
        let mut machine_classes = None;
        let mut gantt = false;
        let mut output = None;
        while let Some(token) = stream.next() {
            match token {
                "--solver" | "-s" => {
                    solver = resolve_solver("--solver", stream.value_for("--solver")?)?
                }
                // Deprecated aliases of --solver, kept for scripts written
                // against the pre-registry CLI.
                "--algorithm" | "-a" => {
                    solver = resolve_solver("--algorithm", stream.value_for("--algorithm")?)?
                }
                "--search" => search = SearchChoice::parse(stream.value_for("--search")?)?,
                "--parallel-branches" => parallel_branches = true,
                "--machine-classes" => {
                    machine_classes =
                        Some(parse_class_spec(stream.value_for("--machine-classes")?)?)
                }
                "--gantt" => gantt = true,
                "--output" | "-o" => output = Some(stream.value_for("--output")?.to_string()),
                other if other.starts_with('-') => {
                    return Err(ParseError::UnknownFlag(other.to_string()))
                }
                positional => instance = Some(positional.to_string()),
            }
        }
        Ok(Command::Schedule {
            instance: instance.ok_or(ParseError::MissingArgument("instance.json"))?,
            solver,
            search,
            parallel_branches,
            machine_classes,
            gantt,
            output,
        })
    }

    fn parse_validate(stream: &mut TokenStream) -> Result<Command, ParseError> {
        let mut positionals = Vec::new();
        while let Some(token) = stream.next() {
            if token.starts_with('-') {
                return Err(ParseError::UnknownFlag(token.to_string()));
            }
            positionals.push(token.to_string());
        }
        let mut drain = positionals.into_iter();
        Ok(Command::Validate {
            instance: drain
                .next()
                .ok_or(ParseError::MissingArgument("instance.json"))?,
            schedule: drain
                .next()
                .ok_or(ParseError::MissingArgument("schedule.json"))?,
        })
    }

    fn parse_bounds(stream: &mut TokenStream) -> Result<Command, ParseError> {
        let instance = match stream.next() {
            Some(token) if !token.starts_with('-') => token.to_string(),
            Some(token) => return Err(ParseError::UnknownFlag(token.to_string())),
            None => return Err(ParseError::MissingArgument("instance.json")),
        };
        Ok(Command::Bounds { instance })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_generate_with_all_flags() {
        let cli = Cli::parse(&args(&[
            "generate",
            "--family",
            "wide",
            "--tasks",
            "10",
            "--processors",
            "16",
            "--seed",
            "3",
            "--output",
            "x.json",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Generate {
                family: FamilyChoice::Wide,
                tasks: 10,
                processors: 16,
                seed: 3,
                output: Some("x.json".into()),
            }
        );
    }

    #[test]
    fn generate_defaults_are_sensible() {
        let cli = Cli::parse(&args(&["generate"])).unwrap();
        match cli.command {
            Command::Generate {
                family,
                tasks,
                processors,
                seed,
                output,
            } => {
                assert_eq!(family, FamilyChoice::Mixed);
                assert_eq!((tasks, processors, seed), (40, 32, 0));
                assert!(output.is_none());
            }
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn parses_schedule_with_solver_and_gantt() {
        // --solver is the canonical flag; --algorithm stays as a deprecated
        // alias of it.
        for flag in ["--solver", "--algorithm"] {
            let cli =
                Cli::parse(&args(&["schedule", "inst.json", flag, "ludwig", "--gantt"])).unwrap();
            assert_eq!(
                cli.command,
                Command::Schedule {
                    instance: "inst.json".into(),
                    solver: "ludwig".into(),
                    search: SearchChoice::Exact,
                    parallel_branches: false,
                    machine_classes: None,
                    gantt: true,
                    output: None,
                }
            );
        }
    }

    #[test]
    fn parses_schedule_search_and_parallel_flags() {
        let cli = Cli::parse(&args(&[
            "schedule",
            "inst.json",
            "--search",
            "bisect",
            "--parallel-branches",
        ]))
        .unwrap();
        match cli.command {
            Command::Schedule {
                search,
                parallel_branches,
                ..
            } => {
                assert_eq!(search, SearchChoice::Bisect);
                assert!(parallel_branches);
            }
            other => panic!("unexpected command {other:?}"),
        }
        // Aliases and the default.
        for (token, expected) in [
            ("exact", SearchChoice::Exact),
            ("breakpoint", SearchChoice::Exact),
            ("bisection", SearchChoice::Bisect),
        ] {
            match Cli::parse(&args(&["schedule", "i.json", "--search", token]))
                .unwrap()
                .command
            {
                Command::Schedule { search, .. } => assert_eq!(search, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(matches!(
            Cli::parse(&args(&["schedule", "i.json", "--search", "magic"])).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
        match Cli::parse(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--search",
            "bisect",
        ]))
        .unwrap()
        .command
        {
            Command::Online { search, .. } => assert_eq!(search, SearchChoice::Bisect),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn schedule_requires_an_instance() {
        assert_eq!(
            Cli::parse(&args(&["schedule", "--gantt"])).unwrap_err(),
            ParseError::MissingArgument("instance.json")
        );
    }

    #[test]
    fn parses_validate_and_bounds() {
        assert_eq!(
            Cli::parse(&args(&["validate", "a.json", "b.json"]))
                .unwrap()
                .command,
            Command::Validate {
                instance: "a.json".into(),
                schedule: "b.json".into()
            }
        );
        assert_eq!(
            Cli::parse(&args(&["bounds", "a.json"])).unwrap().command,
            Command::Bounds {
                instance: "a.json".into()
            }
        );
    }

    #[test]
    fn rejects_unknown_commands_flags_and_values() {
        assert!(matches!(
            Cli::parse(&args(&["frobnicate"])).unwrap_err(),
            ParseError::UnknownCommand(_)
        ));
        assert!(matches!(
            Cli::parse(&args(&["generate", "--frequency", "3"])).unwrap_err(),
            ParseError::UnknownFlag(_)
        ));
        assert!(matches!(
            Cli::parse(&args(&["generate", "--tasks", "many"])).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
        assert!(matches!(
            Cli::parse(&args(&["schedule", "i.json", "--algorithm", "magic"])).unwrap_err(),
            ParseError::UnknownSolver { .. }
        ));
        assert_eq!(Cli::parse(&[]).unwrap_err(), ParseError::MissingCommand);
    }

    #[test]
    fn solver_aliases_resolve_to_canonical_names() {
        for (token, expected) in [
            ("sqrt3", "mrt"),
            ("mrt-sqrt3", "mrt"),
            ("two-phase", "ludwig"),
            ("sequential", "lpt"),
            ("canonical-list", "list"),
            ("twy-nfdh", "twy-nfdh"),
        ] {
            let cli = Cli::parse(&args(&["schedule", "i.json", "--solver", token])).unwrap();
            match cli.command {
                Command::Schedule { solver, .. } => assert_eq!(solver, expected, "{token}"),
                other => panic!("unexpected {other:?}"),
            }
        }
        // Unknown names are rejected with the registered list.
        let err = Cli::parse(&args(&["schedule", "i.json", "--solver", "magic"])).unwrap_err();
        match &err {
            ParseError::UnknownSolver { registered, .. } => {
                assert!(registered.contains("mrt") && registered.contains("gang"));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(err.to_string().contains("registered"));
    }

    #[test]
    fn solvers_subcommand_parses() {
        assert_eq!(
            Cli::parse(&args(&["solvers"])).unwrap().command,
            Command::Solvers
        );
    }

    #[test]
    fn parses_trace_with_patterns() {
        let cli = Cli::parse(&args(&[
            "trace",
            "--pattern",
            "bursty",
            "--burst-size",
            "8",
            "--burst-gap",
            "2.5",
            "--tasks",
            "64",
            "--processors",
            "16",
            "--seed",
            "9",
            "--output",
            "t.json",
        ]))
        .unwrap();
        assert_eq!(
            cli.command,
            Command::Trace {
                family: FamilyChoice::Mixed,
                pattern: PatternChoice::Bursty {
                    burst_size: 8,
                    burst_gap: 2.5
                },
                tasks: 64,
                processors: 16,
                seed: 9,
                departure_patience: None,
                output: Some("t.json".into()),
            }
        );
        assert!(matches!(
            Cli::parse(&args(&["trace", "--pattern", "weird"])).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
        match Cli::parse(&args(&["trace", "--departure-patience", "2.5"]))
            .unwrap()
            .command
        {
            Command::Trace {
                departure_patience, ..
            } => assert_eq!(departure_patience, Some(2.5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_online_resource_model_flags() {
        // Default: frontier-only, no preemption, no departures.
        match Cli::parse(&args(&["online", "--policy", "greedy"]))
            .unwrap()
            .command
        {
            Command::Online {
                backfill,
                preempt_queued,
                preempt_running,
                departure_patience,
                ..
            } => {
                assert!(!backfill && !preempt_queued && !preempt_running);
                assert!(departure_patience.is_none());
            }
            other => panic!("unexpected {other:?}"),
        }
        match Cli::parse(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--backfill",
            "--preempt-queued",
            "--preempt-running",
            "--departure-patience",
            "3",
        ]))
        .unwrap()
        .command
        {
            Command::Online {
                backfill,
                preempt_queued,
                preempt_running,
                departure_patience,
                ..
            } => {
                assert!(backfill && preempt_queued && preempt_running);
                assert_eq!(departure_patience, Some(3.0));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            Cli::parse(&args(&[
                "online",
                "--policy",
                "greedy",
                "--departure-patience"
            ]))
            .unwrap_err(),
            ParseError::MissingValue(_)
        ));
    }

    #[test]
    fn parses_online_fault_flags() {
        // Defaults: faults entirely off.
        match Cli::parse(&args(&["online", "--policy", "greedy"]))
            .unwrap()
            .command
        {
            Command::Online {
                mtbf,
                mttr,
                task_failure_rate,
                max_attempts,
                retry_backoff,
                fault_seed,
                solver_fault,
                ..
            } => {
                assert!(mtbf.is_none() && fault_seed.is_none() && solver_fault.is_none());
                assert_eq!(mttr, 2.0);
                assert_eq!(task_failure_rate, 0.0);
                assert_eq!(max_attempts, 4);
                assert_eq!(retry_backoff, 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }
        match Cli::parse(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--mtbf",
            "20",
            "--mttr",
            "3",
            "--task-failure-rate",
            "0.05",
            "--max-attempts",
            "3",
            "--retry-backoff",
            "1.5",
            "--fault-seed",
            "9",
            "--solver-fault",
            "2",
        ]))
        .unwrap()
        .command
        {
            Command::Online {
                mtbf,
                mttr,
                task_failure_rate,
                max_attempts,
                retry_backoff,
                fault_seed,
                solver_fault,
                ..
            } => {
                assert_eq!(mtbf, Some(20.0));
                assert_eq!(mttr, 3.0);
                assert_eq!(task_failure_rate, 0.05);
                assert_eq!(max_attempts, 3);
                assert_eq!(retry_backoff, 1.5);
                assert_eq!(fault_seed, Some(9));
                assert_eq!(solver_fault, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(
            Cli::parse(&args(&["online", "--policy", "greedy", "--mtbf", "often"])).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }

    #[test]
    fn parses_online_policies_and_solvers() {
        let cli = Cli::parse(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--trace",
            "t.json",
            "--epoch",
            "0.5",
        ]))
        .unwrap();
        match cli.command {
            Command::Online {
                trace,
                policy,
                solver,
                epoch,
                ..
            } => {
                assert_eq!(trace.as_deref(), Some("t.json"));
                assert_eq!(policy, PolicyChoice::Epoch);
                assert_eq!(solver, "mrt");
                assert_eq!(epoch, 0.5);
            }
            other => panic!("unexpected {other:?}"),
        }

        // The policy token implies a solver, an explicit flag overrides it.
        let cli = Cli::parse(&args(&[
            "online",
            "--policy",
            "epoch-ludwig",
            "--solver",
            "list",
        ]))
        .unwrap();
        match cli.command {
            Command::Online { policy, solver, .. } => {
                assert_eq!(policy, PolicyChoice::Epoch);
                assert_eq!(solver, "list");
            }
            other => panic!("unexpected {other:?}"),
        }

        // Any registered solver works behind the epoch- prefix.
        match Cli::parse(&args(&["online", "--policy", "epoch-gang"]))
            .unwrap()
            .command
        {
            Command::Online { policy, solver, .. } => {
                assert_eq!(policy, PolicyChoice::Epoch);
                assert_eq!(solver, "gang");
            }
            other => panic!("unexpected {other:?}"),
        }

        // Batch and greedy parse; --policy is mandatory.
        for (token, expected) in [
            ("greedy", PolicyChoice::Greedy),
            ("batch-idle", PolicyChoice::Batch),
        ] {
            match Cli::parse(&args(&["online", "--policy", token]))
                .unwrap()
                .command
            {
                Command::Online { policy, .. } => assert_eq!(policy, expected),
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(
            Cli::parse(&args(&["online"])).unwrap_err(),
            ParseError::MissingArgument("--policy")
        );
        assert!(matches!(
            Cli::parse(&args(&["online", "--policy", "psychic"])).unwrap_err(),
            ParseError::InvalidValue { .. }
        ));
    }

    #[test]
    fn parses_machine_classes_on_schedule_and_online() {
        match Cli::parse(&args(&[
            "schedule",
            "i.json",
            "--solver",
            "hetero-lp",
            "--machine-classes",
            "old=8x1.0,new=4x2.0",
        ]))
        .unwrap()
        .command
        {
            Command::Schedule {
                solver,
                machine_classes,
                ..
            } => {
                assert_eq!(solver, "hetero-lp");
                assert_eq!(machine_classes.as_deref(), Some("old=8x1.0,new=4x2.0"));
            }
            other => panic!("unexpected {other:?}"),
        }
        // The `hetero` alias resolves to the classed solver.
        match Cli::parse(&args(&["schedule", "i.json", "--solver", "hetero"]))
            .unwrap()
            .command
        {
            Command::Schedule { solver, .. } => assert_eq!(solver, "hetero-lp"),
            other => panic!("unexpected {other:?}"),
        }
        match Cli::parse(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--machine-classes",
            "a=2x1.0,b=2x2.0",
        ]))
        .unwrap()
        .command
        {
            Command::Online {
                machine_classes, ..
            } => assert_eq!(machine_classes.as_deref(), Some("a=2x1.0,b=2x2.0")),
            other => panic!("unexpected {other:?}"),
        }
        // Malformed specs are rejected at parse time, before any file IO.
        for bad in ["old=8", "old=0x1.0", "=8x1.0", "old=8x-1", ""] {
            assert!(
                matches!(
                    Cli::parse(&args(&["schedule", "i.json", "--machine-classes", bad]))
                        .unwrap_err(),
                    ParseError::InvalidValue { .. }
                ),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn help_is_parsed_and_errors_display() {
        assert_eq!(Cli::parse(&args(&["help"])).unwrap().command, Command::Help);
        assert!(ParseError::MissingCommand.to_string().contains("help"));
        assert!(ParseError::UnknownFlag("--x".into())
            .to_string()
            .contains("--x"));
    }
}
