//! Execution of the parsed CLI commands.

use std::fmt;
use std::fs;
// The prelude glob exports `malleable_core::Result`; this command layer deals
// with its own error type, so pull the standard `Result` back into scope.
use std::result::Result;

use malleable_core::prelude::*;
use online::{
    competitive_report, run_sharded, validate_against_trace, validate_fault_run, CollectingSink,
    EpochReplan, OnlinePolicy, PolicyKind, PolicyOptions, ShardedConfig,
};
use serde_json::{json, Value};
use simulator::{render_gantt, simulate, validate_schedule};
use solver::{FallbackSolver, FaultInjectingSolver, SolverFaultMode};
use telemetry::{CollectingRecorder, Recorder, SharedRecorder};
use workload::{
    describe, instance_from_json, instance_to_json, trace_from_json, trace_to_json, ArrivalPattern,
    ArrivalTrace, DeparturePolicy, FaultConfig, FaultPlan, RetryPolicy, TraceConfig,
    WorkloadConfig, WorkloadGenerator,
};

use crate::args::{
    Cli, Command, FamilyChoice, ParseError, PatternChoice, PolicyChoice, SearchChoice, USAGE,
};
use crate::schedule_io::{schedule_from_json, schedule_to_json};

/// Errors produced while executing a command.
#[derive(Debug)]
pub enum CliError {
    /// The command line did not parse.
    Parse(ParseError),
    /// A file could not be read or written.
    Io { path: String, message: String },
    /// An input document could not be interpreted.
    Invalid(String),
    /// Scheduling failed.
    Scheduling(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Parse(e) => write!(f, "{e}\n\n{USAGE}"),
            CliError::Io { path, message } => write!(f, "cannot access `{path}`: {message}"),
            CliError::Invalid(message) => write!(f, "invalid input: {message}"),
            CliError::Scheduling(message) => write!(f, "scheduling failed: {message}"),
        }
    }
}

impl std::error::Error for CliError {}

fn read_file(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn write_file(path: &str, content: &str) -> Result<(), CliError> {
    fs::write(path, content).map_err(|e| CliError::Io {
        path: path.to_string(),
        message: e.to_string(),
    })
}

fn load_instance(path: &str) -> Result<Instance, CliError> {
    let text = read_file(path)?;
    instance_from_json(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))
}

/// Execute a parsed command and return the text to print.
pub fn run(cli: &Cli) -> Result<String, CliError> {
    match &cli.command {
        Command::Help => Ok(USAGE.to_string()),
        Command::Generate {
            family,
            tasks,
            processors,
            seed,
            output,
        } => generate(*family, *tasks, *processors, *seed, output.as_deref()),
        Command::Schedule {
            instance,
            solver,
            search,
            parallel_branches,
            machine_classes,
            gantt,
            output,
        } => schedule(
            instance,
            solver,
            *search,
            *parallel_branches,
            machine_classes.as_deref(),
            *gantt,
            output.as_deref(),
        ),
        Command::Validate { instance, schedule } => validate(instance, schedule),
        Command::Bounds { instance } => print_bounds(instance),
        Command::Solvers => Ok(list_solvers()),
        Command::Trace {
            family,
            pattern,
            tasks,
            processors,
            seed,
            departure_patience,
            output,
        } => generate_trace(
            *family,
            *pattern,
            *tasks,
            *processors,
            *seed,
            *departure_patience,
            output.as_deref(),
        ),
        Command::Online {
            trace,
            policy,
            solver,
            search,
            epoch,
            shards,
            delta_plan,
            backfill,
            preempt_queued,
            preempt_running,
            machine_classes,
            family,
            pattern,
            tasks,
            processors,
            seed,
            departure_patience,
            mtbf,
            mttr,
            task_failure_rate,
            max_attempts,
            retry_backoff,
            fault_seed,
            solver_fault,
            telemetry,
            json,
            no_validate,
            output,
        } => run_online(OnlineArgs {
            trace: trace.as_deref(),
            policy: *policy,
            solver,
            search: *search,
            epoch: *epoch,
            shards: *shards,
            delta_plan: *delta_plan,
            backfill: *backfill,
            preempt_queued: *preempt_queued,
            preempt_running: *preempt_running,
            machine_classes: machine_classes.as_deref(),
            family: *family,
            pattern: *pattern,
            tasks: *tasks,
            processors: *processors,
            seed: *seed,
            departure_patience: *departure_patience,
            mtbf: *mtbf,
            mttr: *mttr,
            task_failure_rate: *task_failure_rate,
            max_attempts: *max_attempts,
            retry_backoff: *retry_backoff,
            fault_seed: *fault_seed,
            solver_fault: *solver_fault,
            telemetry: telemetry.as_deref(),
            json: *json,
            no_validate: *no_validate,
            output: output.as_deref(),
        }),
    }
}

fn trace_config(
    family: FamilyChoice,
    pattern: PatternChoice,
    tasks: usize,
    processors: usize,
    seed: u64,
) -> TraceConfig {
    let workload = match family {
        FamilyChoice::Mixed => WorkloadConfig::mixed(tasks, processors, seed),
        FamilyChoice::Wide => WorkloadConfig::wide_tasks(tasks, processors, seed),
        FamilyChoice::Sequential => WorkloadConfig::sequential_heavy(tasks, processors, seed),
    };
    let pattern = match pattern {
        PatternChoice::Poisson { rate } => ArrivalPattern::Poisson { rate },
        PatternChoice::Bursty {
            burst_size,
            burst_gap,
        } => ArrivalPattern::Bursty {
            burst_size,
            burst_gap,
        },
    };
    TraceConfig { workload, pattern }
}

/// Generate the trace of the given flags, attaching departures when asked.
fn build_trace(
    family: FamilyChoice,
    pattern: PatternChoice,
    tasks: usize,
    processors: usize,
    seed: u64,
    departure_patience: Option<f64>,
) -> Result<ArrivalTrace, CliError> {
    let config = trace_config(family, pattern, tasks, processors, seed);
    let trace = ArrivalTrace::generate(&config).map_err(|e| CliError::Invalid(e.to_string()))?;
    match departure_patience {
        Some(mean) => trace
            .with_departures(DeparturePolicy::Patience { mean }, seed)
            .map_err(|e| CliError::Invalid(e.to_string())),
        None => Ok(trace),
    }
}

fn generate_trace(
    family: FamilyChoice,
    pattern: PatternChoice,
    tasks: usize,
    processors: usize,
    seed: u64,
    departure_patience: Option<f64>,
    output: Option<&str>,
) -> Result<String, CliError> {
    let trace = build_trace(family, pattern, tasks, processors, seed, departure_patience)?;
    let json = trace_to_json(&trace);
    match output {
        Some(path) => {
            write_file(path, &json)?;
            Ok(format!(
                "wrote {} arrivals on {} processors (last arrival {:.4}{}) to {path}\n",
                trace.len(),
                trace.processors(),
                trace.last_arrival(),
                if trace.has_departures() {
                    ", with departures"
                } else {
                    ""
                }
            ))
        }
        None => Ok(json),
    }
}

struct OnlineArgs<'a> {
    trace: Option<&'a str>,
    policy: PolicyChoice,
    solver: &'a str,
    search: SearchChoice,
    epoch: f64,
    shards: usize,
    delta_plan: bool,
    backfill: bool,
    preempt_queued: bool,
    preempt_running: bool,
    machine_classes: Option<&'a str>,
    family: FamilyChoice,
    pattern: PatternChoice,
    tasks: usize,
    processors: usize,
    seed: u64,
    departure_patience: Option<f64>,
    mtbf: Option<f64>,
    mttr: f64,
    task_failure_rate: f64,
    max_attempts: usize,
    retry_backoff: f64,
    fault_seed: Option<u64>,
    solver_fault: Option<usize>,
    telemetry: Option<&'a str>,
    json: bool,
    no_validate: bool,
    output: Option<&'a str>,
}

fn run_online(args: OnlineArgs) -> Result<String, CliError> {
    if args.shards == 0 {
        return Err(CliError::Invalid(
            "--shards must be at least 1 (use --shards 1 for the single-shard \
             event-driven engine)"
                .to_string(),
        ));
    }
    if args.delta_plan
        && (args.policy != PolicyChoice::Epoch || !(args.preempt_queued || args.preempt_running))
    {
        return Err(CliError::Invalid(
            "--delta-plan only affects preemptive epoch policies; combine it with an \
             epoch policy (--policy epoch-mrt) and --preempt-queued or --preempt-running"
                .to_string(),
        ));
    }
    if let Some(spec) = args.machine_classes {
        if args.shards > 1 {
            return Err(CliError::Invalid(
                "--shards cannot be combined with --machine-classes; the classed engine \
                 has its own per-class pools"
                    .to_string(),
            ));
        }
        return run_online_classed(&args, spec);
    }
    if args.shards > 1 {
        return run_online_sharded(&args);
    }
    let trace = match args.trace {
        Some(path) => {
            let text = read_file(path)?;
            trace_from_json(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?
        }
        None => build_trace(
            args.family,
            args.pattern,
            args.tasks,
            args.processors,
            args.seed,
            args.departure_patience,
        )?,
    };

    // The engine-level fault plan (crashes and task failures) is built only
    // when a fault flag asks for one; the forced solver fault degrades
    // through the solver wrap below and needs no plan.
    let faults_enabled =
        args.mtbf.is_some() || args.task_failure_rate > 0.0 || args.solver_fault.is_some();
    let fault_plan = if args.mtbf.is_some() || args.task_failure_rate > 0.0 {
        // Outages renew over a horizon generously past the last arrival so
        // late work still sees crashes.
        let horizon = (trace.last_arrival() + 1.0) * 4.0;
        let mut config = FaultConfig::new(
            trace.processors(),
            trace.len(),
            horizon,
            args.fault_seed.unwrap_or(args.seed),
        );
        if let Some(mtbf) = args.mtbf {
            config = config.with_crashes(mtbf, args.mttr);
        }
        if args.task_failure_rate > 0.0 {
            config = config.with_task_failures(args.task_failure_rate, args.max_attempts);
        }
        Some(FaultPlan::generate(&config).map_err(|e| CliError::Invalid(e.to_string()))?)
    } else {
        None
    };
    let retry = RetryPolicy {
        max_attempts: args.max_attempts,
        base_backoff: args.retry_backoff,
        multiplier: 2.0,
        max_backoff: args.retry_backoff * 16.0,
    };

    let mut solver = resolve_solver(args.solver)?;
    // One recorder handle shared between the engine and the policy, so the
    // workspace counters and the engine events land in the same stream.
    // Fault runs always record (the chaos gates read the counters) even
    // when no --telemetry path was given.
    let recorder = (args.telemetry.is_some() || faults_enabled).then(CollectingRecorder::shared);
    if faults_enabled {
        // Degradation ladder: an optional forced fault on the K-th solve,
        // then the greedy-list fallback catching errors and budget blows.
        if let Some(target) = args.solver_fault {
            solver = std::sync::Arc::new(FaultInjectingSolver::new(
                solver,
                target.saturating_sub(1),
                SolverFaultMode::Error,
            ));
        }
        let mut fallback = FallbackSolver::new(solver);
        if let Some(handle) = &recorder {
            fallback = fallback.with_recorder(handle.clone() as SharedRecorder);
        }
        solver = std::sync::Arc::new(fallback);
    }
    let options = PolicyOptions {
        backfill: args.backfill,
        preempt_queued: args.preempt_queued,
        preempt_running: args.preempt_running,
        delta_plan: args.delta_plan,
        recorder: recorder.clone().map(|handle| handle as SharedRecorder),
    };
    let mut policy: Box<dyn OnlinePolicy> = match args.policy {
        PolicyChoice::Greedy => PolicyKind::Greedy
            .build_with(options)
            .map_err(|e| CliError::Invalid(e.to_string()))?,
        // The epoch policy is built directly so warm-start-capable solvers
        // can honour the --search flag.
        PolicyChoice::Epoch => {
            let mut epoch_policy = EpochReplan::with_solver(args.epoch, solver)
                .map_err(|e| CliError::Invalid(e.to_string()))?
                .with_search(search_mode(args.search))
                .with_backfill(args.backfill)
                .with_preempt_queued(args.preempt_queued)
                .with_preempt_running(args.preempt_running)
                .with_delta_planning(args.delta_plan);
            if let Some(handle) = &recorder {
                epoch_policy = epoch_policy.with_recorder(handle.clone() as SharedRecorder);
            }
            Box::new(epoch_policy)
        }
        PolicyChoice::Batch => PolicyKind::Batch { solver }
            .build_with(options)
            .map_err(|e| CliError::Invalid(e.to_string()))?,
    };
    let epoch_period = policy.epoch();
    let result = match (&fault_plan, &recorder) {
        (Some(plan), handle) => online::run_with_faults(
            &trace,
            policy.as_mut(),
            plan,
            retry,
            handle.as_ref().map(|h| h.as_ref() as &dyn Recorder),
        ),
        (None, Some(handle)) => online::run_recorded(&trace, policy.as_mut(), handle.as_ref()),
        (None, None) => online::run(&trace, policy.as_mut()),
    }
    .map_err(|e| CliError::Scheduling(e.to_string()))?;
    let report =
        competitive_report(&trace, &result).map_err(|e| CliError::Scheduling(e.to_string()))?;

    // Write the event stream when asked, and build the summary both output
    // modes share whenever a recorder ran.
    if let (Some(handle), Some(path)) = (&recorder, args.telemetry) {
        let mut buffer = Vec::new();
        handle.write_jsonl(&mut buffer).map_err(|e| CliError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        let text =
            String::from_utf8(buffer).expect("JSONL telemetry streams are UTF-8 by construction");
        write_file(path, &text)?;
    }
    let summary = recorder
        .as_ref()
        .map(|handle| online::summarize(handle, &result, epoch_period));

    let validation = if args.no_validate {
        None
    } else if fault_plan.is_some() {
        // The fault-aware validator: abandoned tasks may be unscheduled,
        // and wasted segments must not overlap anything (including
        // outages).
        Some(validate_fault_run(&trace, &result))
    } else {
        Some(validate_against_trace(&trace, &result.schedule))
    };
    if let Some(violations) = &validation {
        if !violations.is_empty() {
            let mut out = String::from("INVALID online schedule:\n");
            for violation in violations {
                out.push_str(&format!("  - {violation}\n"));
            }
            return Err(CliError::Invalid(out));
        }
    }

    if let Some(path) = args.output {
        write_file(path, &schedule_to_json(&result.schedule))?;
    }

    let out = if args.json {
        // Machine-readable mode: stdout is exactly one JSON document (the
        // schedule path travels inside it, not as a trailing text line).
        let doc = json!({
            "policy": result.policy.clone(),
            "tasks": trace.len(),
            "processors": trace.processors(),
            "last_arrival": report.last_arrival,
            "online_makespan": report.online_makespan,
            "offline_mrt_makespan": report.offline_makespan,
            "certified_lower_bound": report.certified_lower_bound,
            "ratio_vs_offline": report.ratio_vs_offline,
            "ratio_vs_lower_bound": report.ratio_vs_lower_bound,
            "mean_flow_time": result.mean_flow_time,
            "max_flow_time": result.max_flow_time,
            "utilization": result.utilization(),
            "replans": result.replans,
            "events": result.events,
            "departed": result.departed,
            "preempted": result.preempted,
            "reallotted": result.reallotted,
            "time_weighted_utilization": result.time_weighted_utilization(),
            "nominal_utilization": result.nominal_utilization(),
            "completed": trace.len() - result.departed - result.abandoned.len(),
            "crashes": result.crashes,
            "repairs": result.repairs,
            "task_failures": result.failures,
            "retries_exhausted": result.retries_exhausted,
            "wasted_integral": result.wasted_integral,
            "goodput": result.goodput_fraction(),
            "validated": validation.is_some(),
            "schedule_file": args.output,
            "telemetry_file": args.telemetry,
            "telemetry": summary.as_ref().map_or(Value::Null, |s| s.to_json()),
        });
        let mut text = serde_json::to_string_pretty(&doc).expect("report serialisation");
        text.push('\n');
        text
    } else {
        // Ratios are absent when every task departed before starting.
        let ratio = |r: Option<f64>| match r {
            Some(r) => format!("{r:.4}"),
            None => "n/a (all tasks departed)".to_string(),
        };
        let mut text = format!(
            "policy           : {}\ntrace            : {} tasks on {} processors (last arrival {:.4})\nonline makespan  : {:.4}\noffline mrt      : {:.4}\ncertified LB     : {:.4}\nratio vs offline : {}\nratio vs LB      : {}\nmean flow time   : {:.4}\nmax flow time    : {:.4}\nutilisation      : {:.1}%\nreplans          : {}\nevents           : {}\ndeparted         : {}\npreempted        : {}\nreallotted       : {}\nvalidation       : {}\n",
            result.policy,
            trace.len(),
            trace.processors(),
            report.last_arrival,
            report.online_makespan,
            report.offline_makespan,
            report.certified_lower_bound,
            ratio(report.ratio_vs_offline),
            ratio(report.ratio_vs_lower_bound),
            result.mean_flow_time,
            result.max_flow_time,
            100.0 * result.utilization(),
            result.replans,
            result.events,
            result.departed,
            result.preempted,
            result.reallotted,
            if validation.is_some() { "OK" } else { "skipped" },
        );
        if faults_enabled {
            text.push_str(&format!(
                "faults           : {} crashes, {} repairs, {} task failures, {} abandoned\ngoodput          : {:.3} ({:.3} processor-time wasted)\n",
                result.crashes,
                result.repairs,
                result.failures,
                result.retries_exhausted,
                result.goodput_fraction(),
                result.wasted_integral,
            ));
        }
        if let Some(summary) = &summary {
            text.push_str("\ntelemetry\n");
            for line in summary.render_table() {
                text.push_str("  ");
                text.push_str(&line);
                text.push('\n');
            }
            if let Some(path) = args.telemetry {
                text.push_str(&format!("telemetry stream written to {path}\n"));
            }
        }
        text
    };
    match args.output {
        Some(path) if !args.json => Ok(out + &format!("schedule written to {path}\n")),
        _ => Ok(out),
    }
}

/// The `--shards N` branch of `online`: partition the cluster into N
/// per-shard timelines and run the sharded parallel engine (concurrent
/// epoch solves, work stealing at epoch boundaries), reporting the
/// shard-level breakdown next to the usual metrics.
fn run_online_sharded(args: &OnlineArgs) -> Result<String, CliError> {
    if args.policy != PolicyChoice::Epoch {
        return Err(CliError::Invalid(
            "--shards runs the sharded epoch engine; pick an epoch policy \
             (--policy epoch-mrt)"
                .to_string(),
        ));
    }
    if args.mtbf.is_some() || args.task_failure_rate > 0.0 || args.solver_fault.is_some() {
        return Err(CliError::Invalid(
            "--shards cannot be combined with the fault-injection flags \
             (--mtbf, --task-failure-rate, --solver-fault)"
                .to_string(),
        ));
    }
    if args.preempt_queued || args.preempt_running || args.delta_plan {
        return Err(CliError::Invalid(
            "--shards cannot be combined with the preemption flags or --delta-plan; \
             shard epochs plan arrivals only"
                .to_string(),
        ));
    }
    if args.departure_patience.is_some() {
        return Err(CliError::Invalid(
            "--shards cannot be combined with --departure-patience; the sharded \
             engine does not model departures"
                .to_string(),
        ));
    }
    let trace = match args.trace {
        Some(path) => {
            let text = read_file(path)?;
            trace_from_json(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?
        }
        None => build_trace(
            args.family,
            args.pattern,
            args.tasks,
            args.processors,
            args.seed,
            None,
        )?,
    };
    if trace.has_departures() {
        return Err(CliError::Invalid(
            "the sharded engine does not model departures; re-generate the trace \
             without them"
                .to_string(),
        ));
    }
    let solver = resolve_solver(args.solver)?;
    let mut config =
        ShardedConfig::new(args.shards, args.epoch, solver).with_backfill(args.backfill);
    config.search = search_mode(args.search);
    let recorder = args.telemetry.is_some().then(CollectingRecorder::shared);
    let mut sink = CollectingSink::new(trace.processors());
    let result = run_sharded(
        &trace,
        &config,
        &mut sink,
        recorder.clone().map(|handle| handle as SharedRecorder),
    )
    .map_err(|e| CliError::Scheduling(e.to_string()))?;
    let schedule = sink.into_schedule();

    let validation = (!args.no_validate).then(|| validate_against_trace(&trace, &schedule));
    if let Some(violations) = &validation {
        if !violations.is_empty() {
            let mut out = String::from("INVALID sharded online schedule:\n");
            for violation in violations {
                out.push_str(&format!("  - {violation}\n"));
            }
            return Err(CliError::Invalid(out));
        }
    }
    if let (Some(handle), Some(path)) = (&recorder, args.telemetry) {
        let mut buffer = Vec::new();
        handle.write_jsonl(&mut buffer).map_err(|e| CliError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        let text =
            String::from_utf8(buffer).expect("JSONL telemetry streams are UTF-8 by construction");
        write_file(path, &text)?;
    }
    if let Some(path) = args.output {
        write_file(path, &schedule_to_json(&schedule))?;
    }

    let out = if args.json {
        let per_shard: Vec<Value> = result
            .per_shard
            .iter()
            .map(|s| {
                json!({
                    "shard": s.shard,
                    "first_processor": s.first_processor,
                    "processors": s.processors,
                    "placements": s.placements,
                    "solves": s.solves,
                    "solve_ns": s.solve_ns,
                    "probes": s.probes,
                    "steals_in": s.steals_in,
                    "steals_out": s.steals_out,
                    "makespan": s.makespan,
                })
            })
            .collect();
        let doc = json!({
            "policy": result.policy.clone(),
            "shards": result.shards,
            "tasks": trace.len(),
            "processors": trace.processors(),
            "last_arrival": trace.last_arrival(),
            "placed": result.placed,
            "online_makespan": result.makespan,
            "mean_flow_time": result.mean_flow_time,
            "max_flow_time": result.max_flow_time,
            "utilization": result.utilization(trace.processors()),
            "rounds": result.rounds,
            "solves": result.solves,
            "steals": result.steals,
            "solve_critical_ns": result.solve_critical_ns,
            "solve_total_ns": result.solve_total_ns,
            "run_ns": result.run_ns,
            "invariant_violations": result.invariant_violations,
            "per_shard": per_shard,
            "validated": validation.is_some(),
            "schedule_file": args.output,
            "telemetry_file": args.telemetry,
        });
        let mut text = serde_json::to_string_pretty(&doc).expect("report serialisation");
        text.push('\n');
        text
    } else {
        let mut text = format!(
            "policy           : {}\ntrace            : {} tasks on {} processors (last arrival {:.4})\nonline makespan  : {:.4}\nmean flow time   : {:.4}\nmax flow time    : {:.4}\nutilisation      : {:.1}%\nrounds           : {}\nsolves           : {}\nsteals           : {}\nsolve critical   : {:.3} ms (total {:.3} ms across shards)\nvalidation       : {}\n",
            result.policy,
            trace.len(),
            trace.processors(),
            trace.last_arrival(),
            result.makespan,
            result.mean_flow_time,
            result.max_flow_time,
            100.0 * result.utilization(trace.processors()),
            result.rounds,
            result.solves,
            result.steals,
            result.solve_critical_ns as f64 / 1e6,
            result.solve_total_ns as f64 / 1e6,
            if validation.is_some() { "OK" } else { "skipped" },
        );
        for s in &result.per_shard {
            text.push_str(&format!(
                "  shard {}: p{}..p{} — {} placed over {} solves, {} stolen in / {} out, makespan {:.4}\n",
                s.shard,
                s.first_processor,
                s.first_processor + s.processors - 1,
                s.placements,
                s.solves,
                s.steals_in,
                s.steals_out,
                s.makespan,
            ));
        }
        if let Some(path) = args.telemetry {
            text.push_str(&format!("telemetry stream written to {path}\n"));
        }
        text
    };
    match args.output {
        Some(path) if !args.json => Ok(out + &format!("schedule written to {path}\n")),
        _ => Ok(out),
    }
}

/// The `--machine-classes` branch of `online`: run the classed epoch
/// engine (per-class pools, queued-task migration between classes) over
/// the trace and report per-class utilisation next to the usual metrics.
fn run_online_classed(args: &OnlineArgs, spec: &str) -> Result<String, CliError> {
    if args.policy != PolicyChoice::Epoch {
        return Err(CliError::Invalid(
            "--machine-classes runs the classed epoch engine; pick an epoch policy \
             (--policy epoch-mrt)"
                .to_string(),
        ));
    }
    if args.mtbf.is_some() || args.task_failure_rate > 0.0 || args.solver_fault.is_some() {
        return Err(CliError::Invalid(
            "--machine-classes cannot be combined with the fault-injection flags \
             (--mtbf, --task-failure-rate, --solver-fault)"
                .to_string(),
        ));
    }
    if args.backfill || args.preempt_queued || args.preempt_running {
        return Err(CliError::Invalid(
            "--machine-classes cannot be combined with --backfill or the preemption \
             flags; the classed engine replans queued tasks at every epoch"
                .to_string(),
        ));
    }
    if args.departure_patience.is_some() {
        return Err(CliError::Invalid(
            "--machine-classes cannot be combined with --departure-patience".to_string(),
        ));
    }
    let trace = match args.trace {
        Some(path) => {
            let text = read_file(path)?;
            trace_from_json(&text).map_err(|e| CliError::Invalid(format!("{path}: {e}")))?
        }
        None => build_trace(
            args.family,
            args.pattern,
            args.tasks,
            args.processors,
            args.seed,
            None,
        )?,
    };
    if trace.has_departures() {
        return Err(CliError::Invalid(
            "the classed engine does not model departures; re-generate the trace \
             without them"
                .to_string(),
        ));
    }
    let cluster =
        hetero::ClassedCluster::from_spec(spec).map_err(|e| CliError::Invalid(e.to_string()))?;
    // `--solver hetero-greedy` picks the density baseline; every other
    // solver token (including the epoch-policy default `mrt`) gets the LP
    // assignment — the per-class allotment solves are always MRT.
    let strategy = if args.solver == "hetero-greedy" {
        hetero::AssignStrategy::GreedyDensity
    } else {
        hetero::AssignStrategy::Lp
    };
    let recorder = args.telemetry.is_some().then(CollectingRecorder::shared);
    let options = hetero::ClassedEngineOptions {
        epoch: args.epoch,
        strategy,
        search: search_mode(args.search),
        recorder: recorder.clone().map(|handle| handle as SharedRecorder),
    };
    let result = hetero::run_classed(&trace, &cluster, &options)
        .map_err(|e| CliError::Scheduling(e.to_string()))?;

    let validation = (!args.no_validate).then(|| result.check(&trace));
    if let Some(violations) = &validation {
        if !violations.is_empty() {
            let mut out = String::from("INVALID classed online schedule:\n");
            for violation in violations {
                out.push_str(&format!("  - {violation}\n"));
            }
            return Err(CliError::Invalid(out));
        }
    }

    // The classed lower bound (critical path over best classes ∨ weighted
    // area) plays the role the certified LB plays in the flat report.
    let instance = trace
        .instance()
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let lower_bound = hetero::HeteroInstance::from_instance(&instance, cluster.clone())
        .map_err(|e| CliError::Invalid(e.to_string()))?
        .lower_bound();
    let ratio = (lower_bound > 0.0).then(|| result.makespan / lower_bound);

    if let (Some(handle), Some(path)) = (&recorder, args.telemetry) {
        let mut buffer = Vec::new();
        handle.write_jsonl(&mut buffer).map_err(|e| CliError::Io {
            path: path.to_string(),
            message: e.to_string(),
        })?;
        let text =
            String::from_utf8(buffer).expect("JSONL telemetry streams are UTF-8 by construction");
        write_file(path, &text)?;
    }
    if let Some(path) = args.output {
        write_file(path, &schedule_to_json(&result.schedule))?;
    }

    let out = if args.json {
        let classes: Vec<Value> = cluster
            .classes()
            .iter()
            .enumerate()
            .map(|(index, class)| {
                json!({
                    "name": class.name.clone(),
                    "count": class.count,
                    "speed": class.speed,
                    "utilization": result.class_utilization(index),
                })
            })
            .collect();
        let doc = json!({
            "policy": format!("classed-epoch ({})", strategy.name()),
            "machine_classes": cluster.spec(),
            "tasks": trace.len(),
            "processors": trace.processors(),
            "last_arrival": trace.last_arrival(),
            "online_makespan": result.makespan,
            "lower_bound": lower_bound,
            "ratio_vs_lower_bound": ratio,
            "mean_flow_time": result.mean_flow_time,
            "migrations": result.migrations,
            "replans": result.replans,
            "classes": classes,
            "validated": validation.is_some(),
            "schedule_file": args.output,
            "telemetry_file": args.telemetry,
        });
        let mut text = serde_json::to_string_pretty(&doc).expect("report serialisation");
        text.push('\n');
        text
    } else {
        let mut text = format!(
            "policy           : classed-epoch ({})\ncluster          : {} ({} processors, capacity {:.1})\ntrace            : {} tasks (last arrival {:.4})\nonline makespan  : {:.4}\nclassed LB       : {:.4}\nratio vs LB      : {}\nmean flow time   : {:.4}\nmigrations       : {}\nreplans          : {}\n",
            strategy.name(),
            cluster.spec(),
            cluster.total_processors(),
            cluster.total_capacity(),
            trace.len(),
            trace.last_arrival(),
            result.makespan,
            lower_bound,
            ratio.map_or_else(|| "n/a".to_string(), |r| format!("{r:.4}")),
            result.mean_flow_time,
            result.migrations,
            result.replans,
        );
        for (index, class) in cluster.classes().iter().enumerate() {
            text.push_str(&format!(
                "  class {:<8} : {} × speed {:.2}, utilisation {:.1}%\n",
                class.name,
                class.count,
                class.speed,
                100.0 * result.class_utilization(index),
            ));
        }
        text.push_str(&format!(
            "validation       : {}\n",
            if validation.is_some() {
                "OK"
            } else {
                "skipped"
            },
        ));
        if let Some(path) = args.telemetry {
            text.push_str(&format!("telemetry stream written to {path}\n"));
        }
        text
    };
    match args.output {
        Some(path) if !args.json => Ok(out + &format!("schedule written to {path}\n")),
        _ => Ok(out),
    }
}

fn generate(
    family: FamilyChoice,
    tasks: usize,
    processors: usize,
    seed: u64,
    output: Option<&str>,
) -> Result<String, CliError> {
    let config = match family {
        FamilyChoice::Mixed => WorkloadConfig::mixed(tasks, processors, seed),
        FamilyChoice::Wide => WorkloadConfig::wide_tasks(tasks, processors, seed),
        FamilyChoice::Sequential => WorkloadConfig::sequential_heavy(tasks, processors, seed),
    };
    let instance = WorkloadGenerator::new(config)
        .generate()
        .map_err(|e| CliError::Invalid(e.to_string()))?;
    let json = instance_to_json(&instance);
    match output {
        Some(path) => {
            write_file(path, &json)?;
            Ok(format!(
                "wrote {} tasks on {} processors to {path}\n",
                instance.task_count(),
                instance.processors()
            ))
        }
        None => Ok(json),
    }
}

/// Map the CLI search flag onto the core search mode.
fn search_mode(choice: SearchChoice) -> SearchMode {
    match choice {
        SearchChoice::Exact => SearchMode::Exact,
        SearchChoice::Bisect => SearchMode::Bisect,
    }
}

/// Resolve a (parse-time validated) solver name against the registry.
fn resolve_solver(name: &str) -> Result<SolverHandle, CliError> {
    solver::default_registry().get(name).ok_or_else(|| {
        CliError::Invalid(format!(
            "solver `{name}` is not registered (run `malleable-sched solvers`)"
        ))
    })
}

/// The `solvers` subcommand: one table row per registry entry.
fn list_solvers() -> String {
    let registry = solver::default_registry();
    let mut out = format!(
        "{:<13} {:>9} {:>12} {:>8} {:>10}  {}\n",
        "solver", "guarantee", "certified-LB", "anytime", "warm-start", "aliases"
    );
    for handle in registry.solvers() {
        let caps = handle.capabilities();
        let yes_no = |b: bool| if b { "yes" } else { "no" };
        out.push_str(&format!(
            "{:<13} {:>9} {:>12} {:>8} {:>10}  {}\n",
            handle.name(),
            caps.guarantee
                .map_or_else(|| "-".to_string(), |g| format!("{g:.3}")),
            yes_no(caps.certified_lower_bound),
            yes_no(caps.anytime),
            yes_no(caps.supports_warm_start),
            registry.aliases(handle.name()).join(", "),
        ));
    }
    out
}

fn run_solver(
    name: &str,
    instance: &Instance,
    search: SearchChoice,
    parallel_branches: bool,
    machine_classes: Option<&str>,
) -> Result<SolveOutcome, CliError> {
    let handle = resolve_solver(name)?;
    let config = machine_classes.map(|spec| SolverConfig::new().with_text("machine-classes", spec));
    let mut request = SolveRequest::new(instance)
        .with_mode(search_mode(search))
        .with_parallel_branches(parallel_branches);
    if let Some(config) = &config {
        request = request.with_config(config);
    }
    handle
        .solve(&request)
        .map_err(|e| CliError::Scheduling(e.to_string()))
}

fn schedule(
    instance_path: &str,
    solver_name: &str,
    search: SearchChoice,
    parallel_branches: bool,
    machine_classes: Option<&str>,
    gantt: bool,
    output: Option<&str>,
) -> Result<String, CliError> {
    // Only the classed solvers read the `machine-classes` config key;
    // silently ignoring the spec elsewhere would misreport the makespan.
    if machine_classes.is_some() && !solver_name.starts_with("hetero") {
        return Err(CliError::Invalid(format!(
            "--machine-classes needs a classed solver, got `{solver_name}` \
             (use --solver hetero-lp or --solver hetero-greedy)"
        )));
    }
    let instance = load_instance(instance_path)?;
    let outcome = run_solver(
        solver_name,
        &instance,
        search,
        parallel_branches,
        machine_classes,
    )?;
    let trace = simulate(&instance, &outcome.schedule);

    let mut report = String::new();
    report.push_str(&format!(
        "solver           : {}\ninstance         : {} tasks on {} processors\nmakespan         : {:.4}\nlower bound      : {:.4}{}\nratio            : {:.4}\nprobes           : {}\nsolve time       : {:.3} ms\nutilisation      : {:.1}%\n",
        outcome.solver,
        instance.task_count(),
        instance.processors(),
        outcome.makespan(),
        outcome.lower_bound,
        if outcome.certified { " (certified)" } else { "" },
        outcome.ratio(),
        outcome.probes,
        outcome.wall_time.as_secs_f64() * 1e3,
        100.0 * trace.utilization,
    ));
    if gantt {
        report.push('\n');
        report.push_str(&render_gantt(&instance, &outcome.schedule, 72));
    }
    if let Some(path) = output {
        write_file(path, &schedule_to_json(&outcome.schedule))?;
        report.push_str(&format!("schedule written to {path}\n"));
    }
    Ok(report)
}

fn validate(instance_path: &str, schedule_path: &str) -> Result<String, CliError> {
    let instance = load_instance(instance_path)?;
    let schedule_text = read_file(schedule_path)?;
    let schedule = schedule_from_json(&schedule_text, &instance).map_err(CliError::Invalid)?;
    let report = validate_schedule(&instance, &schedule, None);
    if report.is_valid() {
        Ok(format!(
            "OK: {} tasks, makespan {:.4}, no violations\n",
            schedule.len(),
            schedule.makespan()
        ))
    } else {
        let mut out = String::from("INVALID schedule:\n");
        for violation in &report.violations {
            out.push_str(&format!("  - {violation}\n"));
        }
        Err(CliError::Invalid(out))
    }
}

fn print_bounds(instance_path: &str) -> Result<String, CliError> {
    let instance = load_instance(instance_path)?;
    let stats = describe(&instance);
    Ok(format!(
        "tasks             : {}\nprocessors        : {}\ntotal work        : {:.4}\nmean parallelism  : {:.2}\narea bound        : {:.4}\ncritical bound    : {:.4}\nlower bound       : {:.4}\nupper bound       : {:.4}\n",
        stats.tasks,
        stats.processors,
        stats.total_work,
        stats.mean_parallelism,
        stats.area_bound,
        stats.critical_bound,
        stats.lower_bound,
        stats.upper_bound,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_args;

    fn args(raw: &[&str]) -> Vec<String> {
        raw.iter().map(|s| s.to_string()).collect()
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("mrt-cli-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    }

    #[test]
    fn help_prints_usage() {
        let out = run_args(&args(&["help"])).unwrap();
        assert!(out.contains("USAGE"));
    }

    #[test]
    fn generate_schedule_validate_pipeline() {
        let instance_path = temp_path("instance.json");
        let schedule_path = temp_path("schedule.json");

        let out = run_args(&args(&[
            "generate",
            "--family",
            "mixed",
            "--tasks",
            "12",
            "--processors",
            "8",
            "--seed",
            "5",
            "--output",
            &instance_path,
        ]))
        .unwrap();
        assert!(out.contains("12 tasks"));

        let out = run_args(&args(&[
            "schedule",
            &instance_path,
            "--algorithm",
            "mrt",
            "--gantt",
            "--output",
            &schedule_path,
        ]))
        .unwrap();
        assert!(out.contains("makespan"));
        assert!(out.contains("P0"), "gantt output expected");

        let out = run_args(&args(&["validate", &instance_path, &schedule_path])).unwrap();
        assert!(out.starts_with("OK"));

        let out = run_args(&args(&["bounds", &instance_path])).unwrap();
        assert!(out.contains("lower bound"));

        fs::remove_file(instance_path).ok();
        fs::remove_file(schedule_path).ok();
    }

    #[test]
    fn every_registered_solver_runs() {
        let instance_path = temp_path("algo-instance.json");
        run_args(&args(&[
            "generate",
            "--tasks",
            "8",
            "--processors",
            "4",
            "--seed",
            "1",
            "--output",
            &instance_path,
        ]))
        .unwrap();
        // Every solver in the registry is reachable via --solver (nothing is
        // hard-coded in the CLI), and the deprecated --algorithm alias still
        // works.
        for name in solver::default_registry().names() {
            let out = run_args(&args(&["schedule", &instance_path, "--solver", name])).unwrap();
            assert!(out.contains("ratio"), "{name} did not report a ratio");
            assert!(out.contains(name), "{name} missing from the header: {out}");
        }
        let out = run_args(&args(&["schedule", &instance_path, "--algorithm", "mrt"])).unwrap();
        assert!(out.contains("certified"), "mrt bound must be certified");
        fs::remove_file(instance_path).ok();
    }

    #[test]
    fn solvers_subcommand_lists_the_registry() {
        let out = run_args(&args(&["solvers"])).unwrap();
        for name in solver::default_registry().names() {
            assert!(out.contains(name), "{name} missing: {out}");
        }
        assert!(out.contains("guarantee"));
        assert!(out.contains("sqrt3"), "aliases should be listed");
    }

    #[test]
    fn schedule_runs_both_search_modes_and_parallel_branches() {
        let instance_path = temp_path("search-instance.json");
        run_args(&args(&[
            "generate",
            "--tasks",
            "14",
            "--processors",
            "8",
            "--seed",
            "4",
            "--output",
            &instance_path,
        ]))
        .unwrap();
        for extra in [
            vec!["--search", "exact"],
            vec!["--search", "bisect"],
            vec!["--search", "exact", "--parallel-branches"],
        ] {
            let mut argv = vec!["schedule", instance_path.as_str(), "--algorithm", "mrt"];
            argv.extend(extra.iter().copied());
            let out = run_args(&args(&argv)).unwrap();
            assert!(out.contains("ratio"), "{argv:?}: {out}");
        }
        fs::remove_file(instance_path).ok();
    }

    #[test]
    fn online_honours_the_search_flag() {
        for search in ["exact", "bisect"] {
            let out = run_args(&args(&[
                "online",
                "--policy",
                "epoch-mrt",
                "--search",
                search,
                "--tasks",
                "20",
                "--processors",
                "8",
                "--seed",
                "3",
                "--rate",
                "5",
            ]))
            .unwrap();
            assert!(out.contains("validation       : OK"), "{search}: {out}");
        }
    }

    #[test]
    fn online_sharded_runs_validate_and_report_shards() {
        for shards in ["2", "4"] {
            let out = run_args(&args(&[
                "online",
                "--policy",
                "epoch-mrt",
                "--shards",
                shards,
                "--pattern",
                "bursty",
                "--burst-size",
                "10",
                "--burst-gap",
                "2",
                "--tasks",
                "40",
                "--processors",
                "8",
                "--seed",
                "5",
            ]))
            .unwrap();
            assert!(out.contains("validation       : OK"), "{shards}: {out}");
            assert!(
                out.contains(&format!("sharded-epoch-mrt(d=1)x{shards}")),
                "{out}"
            );
            assert!(out.contains("shard 0: p0..p"), "{out}");
        }
        // --shards 1 stays on the event-driven engine (full report).
        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--shards",
            "1",
            "--tasks",
            "20",
            "--processors",
            "8",
            "--seed",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("ratio vs LB"), "{out}");
    }

    #[test]
    fn online_sharded_json_reports_per_shard_breakdown() {
        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--shards",
            "4",
            "--tasks",
            "32",
            "--processors",
            "8",
            "--seed",
            "9",
            "--json",
        ]))
        .unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        assert_eq!(doc.get("shards").unwrap().as_u64(), Some(4));
        assert_eq!(doc.get("placed").unwrap().as_u64(), Some(32));
        assert_eq!(doc.get("invariant_violations").unwrap().as_u64(), Some(0));
        assert_eq!(doc.get("per_shard").unwrap().as_array().unwrap().len(), 4);
        assert!(doc.get("solve_critical_ns").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn sharded_and_delta_flags_reject_unsupported_combinations() {
        for argv in [
            // --shards needs an epoch policy and at least one shard.
            vec!["online", "--policy", "greedy", "--shards", "2"],
            vec!["online", "--policy", "epoch-mrt", "--shards", "0"],
            // ... and cannot mix with faults, classes, preemption or departures.
            vec![
                "online",
                "--policy",
                "epoch-mrt",
                "--shards",
                "2",
                "--mtbf",
                "4",
            ],
            vec![
                "online",
                "--policy",
                "epoch-mrt",
                "--shards",
                "2",
                "--machine-classes",
                "old=4x1.0,new=4x2.0",
            ],
            vec![
                "online",
                "--policy",
                "epoch-mrt",
                "--shards",
                "2",
                "--preempt-queued",
            ],
            vec![
                "online",
                "--policy",
                "epoch-mrt",
                "--shards",
                "2",
                "--departure-patience",
                "3",
            ],
            // --delta-plan needs a preemptive epoch policy.
            vec!["online", "--policy", "greedy", "--delta-plan"],
            vec!["online", "--policy", "epoch-mrt", "--delta-plan"],
        ] {
            assert!(run_args(&args(&argv)).is_err(), "{argv:?} should fail");
        }
    }

    #[test]
    fn online_delta_plan_runs_with_preemption() {
        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--preempt-queued",
            "--delta-plan",
            "--tasks",
            "24",
            "--processors",
            "8",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert!(out.contains("validation       : OK"), "{out}");
        assert!(out.contains("+delta"), "{out}");
    }

    #[test]
    fn trace_online_pipeline_round_trips() {
        let trace_path = temp_path("trace.json");
        let schedule_path = temp_path("online-schedule.json");

        let out = run_args(&args(&[
            "trace",
            "--pattern",
            "poisson",
            "--rate",
            "3",
            "--tasks",
            "40",
            "--processors",
            "8",
            "--seed",
            "11",
            "--output",
            &trace_path,
        ]))
        .unwrap();
        assert!(out.contains("40 arrivals"));

        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--epoch",
            "0.5",
            "--trace",
            &trace_path,
            "--output",
            &schedule_path,
        ]))
        .unwrap();
        assert!(out.contains("validation       : OK"), "{out}");
        assert!(out.contains("ratio vs LB"));

        // The emitted schedule validates offline against the trace instance.
        let text = fs::read_to_string(&trace_path).unwrap();
        let trace = workload::trace_from_json(&text).unwrap();
        let instance = trace.instance().unwrap();
        let schedule_text = fs::read_to_string(&schedule_path).unwrap();
        let schedule = crate::schedule_io::schedule_from_json(&schedule_text, &instance).unwrap();
        assert!(schedule.validate(&instance).is_ok());

        fs::remove_file(trace_path).ok();
        fs::remove_file(schedule_path).ok();
    }

    #[test]
    fn online_runs_every_policy_inline() {
        for policy in [
            "greedy",
            "epoch-mrt",
            "epoch-ludwig",
            "epoch-list",
            "batch-idle",
        ] {
            let out = run_args(&args(&[
                "online",
                "--policy",
                policy,
                "--tasks",
                "25",
                "--processors",
                "8",
                "--seed",
                "2",
                "--rate",
                "5",
            ]))
            .unwrap();
            assert!(out.contains("validation       : OK"), "{policy}: {out}");
        }
    }

    #[test]
    fn online_runs_backfill_preemption_and_departures() {
        // Bursty traffic with departures through every new resource-model
        // flag combination: all validate end to end.
        for extra in [
            vec!["--backfill"],
            vec!["--preempt-queued"],
            vec!["--backfill", "--preempt-queued"],
            vec!["--preempt-running"],
            vec!["--backfill", "--preempt-running"],
        ] {
            let mut argv = vec![
                "online",
                "--policy",
                "epoch-mrt",
                "--pattern",
                "bursty",
                "--burst-size",
                "10",
                "--burst-gap",
                "2",
                "--tasks",
                "30",
                "--processors",
                "8",
                "--seed",
                "4",
                "--departure-patience",
                "3",
            ];
            argv.extend(extra.iter().copied());
            let out = run_args(&args(&argv)).unwrap();
            assert!(out.contains("validation       : OK"), "{argv:?}: {out}");
            assert!(out.contains("departed"), "{argv:?}: {out}");
        }
        // The greedy policy accepts --backfill too.
        let out = run_args(&args(&[
            "online",
            "--policy",
            "greedy",
            "--backfill",
            "--tasks",
            "20",
            "--processors",
            "8",
            "--seed",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("greedy-list+backfill"), "{out}");
    }

    #[test]
    fn departure_traces_round_trip_through_files() {
        let trace_path = temp_path("departures-trace.json");
        let out = run_args(&args(&[
            "trace",
            "--pattern",
            "bursty",
            "--burst-size",
            "8",
            "--burst-gap",
            "3",
            "--tasks",
            "24",
            "--processors",
            "8",
            "--seed",
            "6",
            "--departure-patience",
            "2",
            "--output",
            &trace_path,
        ]))
        .unwrap();
        assert!(out.contains("with departures"), "{out}");
        let trace = workload::trace_from_json(&fs::read_to_string(&trace_path).unwrap()).unwrap();
        assert!(trace.has_departures());
        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--backfill",
            "--trace",
            &trace_path,
        ]))
        .unwrap();
        assert!(out.contains("validation       : OK"), "{out}");
        fs::remove_file(trace_path).ok();
    }

    #[test]
    fn online_json_report_is_parseable() {
        let out = run_args(&args(&[
            "online",
            "--policy",
            "batch-idle",
            "--pattern",
            "bursty",
            "--burst-size",
            "6",
            "--burst-gap",
            "2",
            "--tasks",
            "18",
            "--processors",
            "4",
            "--json",
        ]))
        .unwrap();
        let doc = serde_json::from_str(&out).unwrap();
        assert!(doc.get("online_makespan").unwrap().as_f64().unwrap() > 0.0);
        assert!(doc.get("ratio_vs_lower_bound").unwrap().as_f64().unwrap() >= 1.0 - 1e-9);
        assert_eq!(doc.get("tasks").unwrap().as_u64(), Some(18));
    }

    #[test]
    fn online_runs_with_faults_and_reports_goodput() {
        // A seeded fault run: crashes + task failures + a forced fault on
        // the first epoch solve.  The run must validate (the fault-aware
        // validator runs by default) and report the goodput split.
        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--tasks",
            "30",
            "--processors",
            "8",
            "--seed",
            "5",
            "--mtbf",
            "6",
            "--mttr",
            "1.5",
            "--task-failure-rate",
            "0.2",
            "--fault-seed",
            "7",
            "--solver-fault",
            "1",
            "--json",
        ]))
        .unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        assert_eq!(doc.get("validated").unwrap().as_bool(), Some(true));
        let goodput = doc.get("goodput").unwrap().as_f64().unwrap();
        assert!((0.0..=1.0).contains(&goodput), "goodput {goodput}");
        let telemetry = doc.get("telemetry").unwrap();
        assert_eq!(
            telemetry.get("invariant_violations").unwrap().as_u64(),
            Some(0)
        );
        assert_eq!(telemetry.get("solver_degraded").unwrap().as_u64(), Some(1));
        let completed = doc.get("completed").unwrap().as_u64().unwrap();
        let departed = doc.get("departed").unwrap().as_u64().unwrap();
        let exhausted = doc.get("retries_exhausted").unwrap().as_u64().unwrap();
        // `completed` already subtracts departures and abandonments, so the
        // three partition the trace.
        assert_eq!(completed + departed + exhausted, 30);
    }

    #[test]
    fn schedule_runs_the_classed_solvers_end_to_end() {
        let instance_path = temp_path("classed-instance.json");
        run_args(&args(&[
            "generate",
            "--tasks",
            "14",
            "--processors",
            "12",
            "--seed",
            "8",
            "--output",
            &instance_path,
        ]))
        .unwrap();
        for solver in ["hetero-lp", "hetero-greedy"] {
            let out = run_args(&args(&[
                "schedule",
                &instance_path,
                "--solver",
                solver,
                "--machine-classes",
                "old=8x1.0,new=4x2.0",
            ]))
            .unwrap();
            assert!(out.contains(solver), "{solver}: {out}");
            assert!(out.contains("ratio"), "{solver}: {out}");
        }
        // A spec whose counts do not sum to the machine is rejected by the
        // solver, and a flat solver refuses the flag outright.
        let err = run_args(&args(&[
            "schedule",
            &instance_path,
            "--solver",
            "hetero-lp",
            "--machine-classes",
            "old=4x1.0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("machine-classes"), "{err}");
        let err = run_args(&args(&[
            "schedule",
            &instance_path,
            "--solver",
            "mrt",
            "--machine-classes",
            "old=8x1.0,new=4x2.0",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("hetero-lp"), "{err}");
        fs::remove_file(instance_path).ok();
    }

    #[test]
    fn online_runs_the_classed_engine() {
        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--machine-classes",
            "old=6x1.0,new=2x2.0",
            "--tasks",
            "24",
            "--processors",
            "8",
            "--seed",
            "3",
            "--rate",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("classed-epoch (hetero-lp)"), "{out}");
        assert!(out.contains("validation       : OK"), "{out}");
        assert!(out.contains("class old"), "{out}");

        // JSON mode is a parseable document with per-class utilisation.
        let out = run_args(&args(&[
            "online",
            "--policy",
            "epoch-mrt",
            "--machine-classes",
            "old=6x1.0,new=2x2.0",
            "--tasks",
            "24",
            "--processors",
            "8",
            "--seed",
            "3",
            "--rate",
            "5",
            "--json",
        ]))
        .unwrap();
        let doc: Value = serde_json::from_str(&out).unwrap();
        assert!(doc.get("online_makespan").unwrap().as_f64().unwrap() > 0.0);
        assert!(doc.get("ratio_vs_lower_bound").unwrap().as_f64().unwrap() >= 1.0 - 1e-9);
        assert_eq!(doc.get("classes").unwrap().as_array().unwrap().len(), 2);

        // Classed runs exclude the fault and preemption machinery.
        for extra in [
            vec!["--mtbf", "5"],
            vec!["--preempt-queued"],
            vec!["--departure-patience", "2"],
            vec!["--policy", "greedy"],
        ] {
            let mut argv = vec![
                "online",
                "--policy",
                "epoch-mrt",
                "--machine-classes",
                "old=6x1.0,new=2x2.0",
                "--processors",
                "8",
            ];
            argv.extend(extra.iter().copied());
            let err = run_args(&args(&argv)).unwrap_err();
            assert!(
                err.to_string().contains("--machine-classes"),
                "{argv:?}: {err}"
            );
        }
    }

    #[test]
    fn missing_files_are_reported() {
        let err = run_args(&args(&["bounds", "/nonexistent/instance.json"])).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }));
        assert!(err.to_string().contains("nonexistent"));
    }

    #[test]
    fn parse_errors_carry_usage() {
        let err = run_args(&args(&["explode"])).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn generate_without_output_prints_json() {
        let out = run_args(&args(&["generate", "--tasks", "3", "--processors", "2"])).unwrap();
        assert!(out.contains("\"processors\": 2"));
    }
}
