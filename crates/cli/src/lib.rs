//! # mrt-cli
//!
//! Command-line front end for the malleable-task scheduling workspace.  The
//! binary is called `malleable-sched` and offers four subcommands:
//!
//! ```text
//! malleable-sched generate --family mixed --tasks 40 --processors 32 --seed 7 --output inst.json
//! malleable-sched schedule inst.json --algorithm mrt --gantt --output sched.json
//! malleable-sched validate inst.json sched.json
//! malleable-sched bounds   inst.json
//! ```
//!
//! The library part of the crate contains the full implementation (argument
//! parsing, command execution, output formatting) so that everything is unit
//! testable; `main.rs` is a thin wrapper.

pub mod args;
pub mod commands;
pub mod schedule_io;

pub use args::{Cli, Command, ParseError};
pub use commands::{run, CliError};

/// Run the CLI on an argument vector (excluding the program name) and return
/// the text that would be printed on success.
pub fn run_args(args: &[String]) -> Result<String, CliError> {
    let cli = Cli::parse(args).map_err(CliError::Parse)?;
    run(&cli)
}
