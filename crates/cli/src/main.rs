//! The `malleable-sched` binary: a thin wrapper around [`mrt_cli::run_args`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mrt_cli::run_args(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("error: {error}");
            ExitCode::FAILURE
        }
    }
}
