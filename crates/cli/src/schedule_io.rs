//! JSON serialisation of schedules (the instance side lives in `workload::io`).

use malleable_core::{Instance, ProcessorRange, Schedule, ScheduledTask};
use serde_json::{json, Value};

/// Serialise a schedule to a pretty-printed JSON document.
///
/// The format is deliberately simple and self-describing:
///
/// ```json
/// {
///   "processors": 8,
///   "makespan": 2.5,
///   "tasks": [
///     { "task": 0, "start": 0.0, "duration": 1.0, "first_processor": 0, "processors": 4 }
///   ]
/// }
/// ```
pub fn schedule_to_json(schedule: &Schedule) -> String {
    let tasks: Vec<Value> = schedule
        .entries()
        .iter()
        .map(|e| {
            json!({
                "task": e.task,
                "start": e.start,
                "duration": e.duration,
                "first_processor": e.processors.first,
                "processors": e.processors.count,
            })
        })
        .collect();
    let doc = json!({
        "processors": schedule.processors(),
        "makespan": schedule.makespan(),
        "tasks": tasks,
    });
    serde_json::to_string_pretty(&doc).expect("schedule serialisation cannot fail")
}

/// Parse a schedule from its JSON document.
///
/// Durations are re-derived from the instance profiles when they are within a
/// small tolerance of the recorded value, so that round-tripped schedules
/// still validate exactly against the instance.
pub fn schedule_from_json(json_text: &str, instance: &Instance) -> Result<Schedule, String> {
    let doc: Value = serde_json::from_str(json_text).map_err(|e| e.to_string())?;
    let processors = doc
        .get("processors")
        .and_then(Value::as_u64)
        .ok_or("missing `processors` field")? as usize;
    let mut schedule = Schedule::new(processors);
    let tasks = doc
        .get("tasks")
        .and_then(Value::as_array)
        .ok_or("missing `tasks` array")?;
    for entry in tasks {
        let task = entry
            .get("task")
            .and_then(Value::as_u64)
            .ok_or("task entry without `task` id")? as usize;
        let start = entry
            .get("start")
            .and_then(Value::as_f64)
            .ok_or("task entry without `start`")?;
        let count = entry
            .get("processors")
            .and_then(Value::as_u64)
            .ok_or("task entry without `processors`")? as usize;
        let first = entry
            .get("first_processor")
            .and_then(Value::as_u64)
            .ok_or("task entry without `first_processor`")? as usize;
        let recorded = entry
            .get("duration")
            .and_then(Value::as_f64)
            .ok_or("task entry without `duration`")?;
        if task >= instance.task_count() {
            return Err(format!("task {task} does not exist in the instance"));
        }
        if count == 0 {
            return Err(format!("task {task} is allotted zero processors"));
        }
        let duration = instance.time(task, count);
        if (duration - recorded).abs() > 1e-6 * duration.max(1.0) {
            return Err(format!(
                "task {task}: recorded duration {recorded} disagrees with the profile ({duration})"
            ));
        }
        schedule.push(ScheduledTask {
            task,
            start,
            duration,
            processors: ProcessorRange::new(first, count),
        });
    }
    Ok(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::prelude::*;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::linear(4.0, 4).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn round_trip_preserves_the_schedule() {
        let inst = instance();
        let result = MrtScheduler::default().schedule(&inst).unwrap();
        let json = schedule_to_json(&result.schedule);
        let parsed = schedule_from_json(&json, &inst).unwrap();
        assert_eq!(parsed.len(), result.schedule.len());
        assert!((parsed.makespan() - result.schedule.makespan()).abs() < 1e-9);
        assert!(parsed.validate(&inst).is_ok());
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let inst = instance();
        assert!(schedule_from_json("{", &inst).is_err());
        assert!(schedule_from_json("{}", &inst).is_err());
        let missing_fields = r#"{ "processors": 4, "tasks": [ { "task": 0 } ] }"#;
        assert!(schedule_from_json(missing_fields, &inst).is_err());
    }

    #[test]
    fn inconsistent_durations_are_rejected() {
        let inst = instance();
        let bad = r#"{
            "processors": 4,
            "tasks": [
                { "task": 0, "start": 0.0, "duration": 0.5, "first_processor": 0, "processors": 4 },
                { "task": 1, "start": 0.0, "duration": 1.0, "first_processor": 0, "processors": 1 }
            ]
        }"#;
        let err = schedule_from_json(bad, &inst).unwrap_err();
        assert!(err.contains("disagrees"));
    }

    #[test]
    fn unknown_tasks_are_rejected() {
        let inst = instance();
        let bad = r#"{
            "processors": 4,
            "tasks": [
                { "task": 9, "start": 0.0, "duration": 1.0, "first_processor": 0, "processors": 1 }
            ]
        }"#;
        assert!(schedule_from_json(bad, &inst).is_err());
    }
}
