//! Shared helpers for the runnable examples.
//!
//! The example binaries live in the workspace-level `examples/` directory
//! (see the `[[example]]` entries in this crate's manifest); this library only
//! hosts small formatting utilities they share.

use malleable_core::{bounds, Instance, Schedule};

/// Format a one-line comparison row: algorithm name, makespan, ratio to the
/// certified lower bound and utilisation.
pub fn comparison_row(name: &str, instance: &Instance, schedule: &Schedule) -> String {
    let lb = bounds::lower_bound(instance);
    format!(
        "{name:<22} makespan = {:>8.3}   ratio vs LB = {:>5.3}   utilisation = {:>5.1}%",
        schedule.makespan(),
        schedule.makespan() / lb,
        100.0 * schedule.utilization()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::prelude::*;

    #[test]
    fn comparison_row_mentions_name_and_ratio() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::linear(4.0, 4).unwrap()], 4).unwrap();
        let result = MrtScheduler::default().schedule(&inst).unwrap();
        let row = comparison_row("mrt", &inst, &result.schedule);
        assert!(row.contains("mrt"));
        assert!(row.contains("ratio"));
    }
}
