//! Task → class assignment strategies.
//!
//! The classed problem factors into two decisions: *which class* runs each
//! task (this module) and *how many processors* within the class it gets
//! (the existing identical-machines allotment search, run per class pool).
//! Three strategies are provided:
//!
//! * [`lp_assign`] — the flagship, in the dual-approximation LP-rounding
//!   style of Jansen & Land's unrelated-machine malleable scheduling
//!   (arXiv 1903.11016): binary-search a target makespan `T`; for each
//!   guess, every task gets a *canonical* (minimal-work) allotment per
//!   class meeting `T`, and tasks are packed into class capacity areas
//!   scarcest-first, fractional LP reasoning replaced by a deterministic
//!   greedy rounding.  The smallest feasible guess's assignment wins.
//! * [`greedy_density_assign`] — a load-balancing baseline: tasks in
//!   descending sequential-work order each pick the class minimising the
//!   resulting normalised class load (capacity-aware, profile-blind).
//! * [`class_blind_assign`] — the ablation baseline the benchmark gates
//!   against: spreads tasks proportionally to class *sizes*, ignoring
//!   speeds entirely (what a class-unaware scheduler does when handed a
//!   partitioned cluster).
//!
//! All three are deterministic; on a single-class cluster they all return
//! the all-zeros assignment, which is what makes the homogeneous parity
//! exact.

use crate::instance::HeteroInstance;
use malleable_core::eps::{approx_ge, EPS};

/// A class assignment: `assignment[task]` is the class index the task runs
/// in.
pub type Assignment = Vec<usize>;

/// Dual-approximation assignment in the LP-rounding style: binary-search
/// the target makespan, greedily rounding each guess's canonical-allotment
/// relaxation into class capacity areas.  Returns the assignment of the
/// smallest guess that rounds feasibly.
pub fn lp_assign(instance: &HeteroInstance) -> Assignment {
    let classes = instance.cluster().classes();
    if classes.len() == 1 {
        return vec![0; instance.task_count()];
    }
    let mut lo = instance.lower_bound();
    if lo <= 0.0 {
        lo = EPS;
    }
    // Grow an upper bound until a guess rounds feasibly (everything fits
    // sequentially in the fastest class eventually, so this terminates).
    let mut hi = lo.max(EPS);
    let mut best: Option<Assignment> = None;
    for _ in 0..64 {
        if let Some(assignment) = try_round(instance, hi) {
            best = Some(assignment);
            break;
        }
        hi *= 2.0;
    }
    let mut best = match best {
        Some(assignment) => assignment,
        None => return greedy_density_assign(instance),
    };
    // Bisect down to the smallest feasible guess.
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        match try_round(instance, mid) {
            Some(assignment) => {
                best = assignment;
                hi = mid;
            }
            None => lo = mid,
        }
    }
    best
}

/// One rounding attempt at makespan guess `t`: every task takes its
/// canonical (minimal-work) allotment per class; tasks are placed
/// scarcest-first (fewest feasible classes, then largest minimal work) into
/// the class with the most remaining weighted area.  `None` when some task
/// fits no class or some class area overflows.
fn try_round(instance: &HeteroInstance, t: f64) -> Option<Assignment> {
    let classes = instance.cluster().classes();
    let n = instance.task_count();
    // Per task: the weighted work of the canonical allotment in each class
    // (None when the class cannot meet `t` even on its whole pool).
    let mut options: Vec<Vec<Option<f64>>> = Vec::with_capacity(n);
    for task in 0..n {
        let profile = instance.profile(task);
        let mut per_class = Vec::with_capacity(classes.len());
        for (c, class) in classes.iter().enumerate() {
            let deadline = t * profile.rates()[c];
            let work = profile
                .base()
                .canonical_processors(deadline)
                .filter(|&p| p <= class.count)
                .map(|p| profile.base().work(p));
            per_class.push(work);
        }
        if per_class.iter().all(Option::is_none) {
            return None;
        }
        options.push(per_class);
    }
    // Scarcest-first: fewest feasible classes, then largest minimal work.
    let mut order: Vec<usize> = (0..n).collect();
    let scarcity = |task: usize| -> (usize, f64) {
        let feasible = options[task].iter().flatten().count();
        let min_work = options[task]
            .iter()
            .flatten()
            .fold(f64::INFINITY, |a, &w| a.min(w));
        (feasible, min_work)
    };
    order.sort_by(|&a, &b| {
        let (fa, wa) = scarcity(a);
        let (fb, wb) = scarcity(b);
        fa.cmp(&fb).then(wb.total_cmp(&wa)).then(a.cmp(&b))
    });
    let mut assignment = vec![0usize; n];
    let mut remaining: Vec<f64> = classes
        .iter()
        .map(|c| c.count as f64 * c.speed * t)
        .collect();
    for &task in &order {
        let mut chosen: Option<usize> = None;
        for (c, work) in options[task].iter().enumerate() {
            let Some(work) = work else { continue };
            if !approx_ge(remaining[c], *work) {
                continue;
            }
            let better = match chosen {
                None => true,
                Some(current) => remaining[c] > remaining[current],
            };
            if better {
                chosen = Some(c);
            }
        }
        let c = chosen?;
        remaining[c] -= options[task][c].expect("chosen class is feasible");
        assignment[task] = c;
    }
    Some(assignment)
}

/// Capacity-aware greedy baseline: tasks in descending sequential-work
/// order each pick the class minimising the resulting normalised load
/// `(assigned weighted work) / (count · speed)`, never picking a class
/// whose whole pool cannot beat the current best completion estimate by
/// itself when another can.
pub fn greedy_density_assign(instance: &HeteroInstance) -> Assignment {
    let classes = instance.cluster().classes();
    let n = instance.task_count();
    if classes.len() == 1 {
        return vec![0; n];
    }
    let mut order: Vec<usize> = (0..n).collect();
    let work = |task: usize| instance.profile(task).base().time(1);
    order.sort_by(|&a, &b| work(b).total_cmp(&work(a)).then(a.cmp(&b)));
    let mut load = vec![0.0f64; classes.len()];
    let mut assignment = vec![0usize; n];
    for &task in &order {
        let profile = instance.profile(task);
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (c, class) in classes.iter().enumerate() {
            let capacity = class.count as f64 * class.speed;
            // Normalised load after placing the task, floored by the
            // fastest the task itself can finish in the class.
            let cost = ((load[c] + work(task)) / capacity).max(profile.best_time(c, class.count));
            if cost < best_cost - 1e-12 {
                best = c;
                best_cost = cost;
            }
        }
        load[best] += work(task);
        assignment[task] = best;
    }
    assignment
}

/// Speed-blind baseline: tasks are spread proportionally to class *sizes*
/// in arrival order, exactly as a class-unaware scheduler would partition
/// them.  The benchmark gate measures how much [`lp_assign`] beats this at
/// equal total capacity.
pub fn class_blind_assign(instance: &HeteroInstance) -> Assignment {
    let classes = instance.cluster().classes();
    let n = instance.task_count();
    if classes.len() == 1 {
        return vec![0; n];
    }
    let mut assigned = vec![0usize; classes.len()];
    let mut assignment = vec![0usize; n];
    for entry in assignment.iter_mut() {
        // The class currently furthest below its proportional share.
        let mut best = 0usize;
        let mut best_fill = f64::INFINITY;
        for (c, class) in classes.iter().enumerate() {
            let fill = assigned[c] as f64 / class.count as f64;
            if fill < best_fill - 1e-12 {
                best = c;
                best_fill = fill;
            }
        }
        assigned[best] += 1;
        *entry = best;
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClassedCluster;
    use malleable_core::{Instance, SpeedupProfile};

    fn hetero(spec: &str) -> HeteroInstance {
        let cluster = ClassedCluster::from_spec(spec).unwrap();
        let instance = Instance::from_profiles(
            vec![
                SpeedupProfile::linear(16.0, 8).unwrap(),
                SpeedupProfile::linear(12.0, 8).unwrap(),
                SpeedupProfile::new(vec![6.0, 3.2, 2.4]).unwrap(),
                SpeedupProfile::sequential(1.5).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
                SpeedupProfile::new(vec![4.0, 2.2]).unwrap(),
            ],
            cluster.total_processors(),
        )
        .unwrap();
        HeteroInstance::from_instance(&instance, cluster).unwrap()
    }

    #[test]
    fn single_class_assignments_are_all_zero() {
        let hetero = hetero("only=12x1.0");
        for assign in [
            lp_assign(&hetero),
            greedy_density_assign(&hetero),
            class_blind_assign(&hetero),
        ] {
            assert_eq!(assign, vec![0; hetero.task_count()]);
        }
    }

    #[test]
    fn assignments_are_deterministic_and_in_range() {
        let hetero = hetero("old=8x1.0,new=4x2.5");
        for assign_fn in [lp_assign, greedy_density_assign, class_blind_assign] {
            let a = assign_fn(&hetero);
            let b = assign_fn(&hetero);
            assert_eq!(a, b);
            assert_eq!(a.len(), hetero.task_count());
            assert!(a.iter().all(|&c| c < 2));
        }
    }

    #[test]
    fn class_blind_spreads_proportionally_to_counts() {
        let hetero = hetero("old=8x1.0,new=4x2.5");
        let assignment = class_blind_assign(&hetero);
        let to_new = assignment.iter().filter(|&&c| c == 1).count();
        // 4 of 12 processors are `new`: a third of 6 tasks = 2.
        assert_eq!(to_new, 2);
    }

    #[test]
    fn lp_assignment_loads_the_fast_class_more_than_blind() {
        let hetero = hetero("old=8x1.0,new=4x2.5");
        let lp = lp_assign(&hetero);
        let blind = class_blind_assign(&hetero);
        let weighted = |assignment: &Assignment| -> f64 {
            assignment
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c == 1)
                .map(|(task, _)| hetero.profile(task).base().time(1))
                .sum()
        };
        // The fast class holds a third of the processors but 5/8 of the
        // capacity; the LP rounding routes strictly more work there.
        assert!(weighted(&lp) > weighted(&blind));
    }
}
