//! Classed clusters: named machine classes with per-class counts and speed
//! factors, laid out contiguously on the global processor axis.

use malleable_core::{Error, ProcessorRange, Result};
use workload::ClassSpec;

/// One machine class: `count` identical processors running at `speed` times
/// the reference rate.  A task whose base profile needs `t(p)` time on `p`
/// reference processors needs `t(p) / speed` time on `p` processors of this
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineClass {
    /// Class name (unique within the cluster).
    pub name: String,
    /// Number of processors in the class.
    pub count: usize,
    /// Speed factor relative to the reference machines.
    pub speed: f64,
}

/// A heterogeneous cluster: an ordered list of machine classes.  Classes
/// occupy contiguous processor ranges in declaration order, so a classed
/// schedule maps onto one global processor axis (class 0 owns processors
/// `0..count_0`, class 1 the next `count_1`, and so on).
///
/// The identical-machines model is the strict special case of a single
/// class at speed 1.0 ([`ClassedCluster::uniform`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassedCluster {
    classes: Vec<MachineClass>,
    offsets: Vec<usize>,
}

impl ClassedCluster {
    /// Build a cluster from machine classes, validating that there is at
    /// least one class, every class has at least one processor, speeds are
    /// positive and finite, and names are unique.
    pub fn new(classes: Vec<MachineClass>) -> Result<Self> {
        if classes.is_empty() {
            return Err(Error::InvalidConfig {
                key: "machine-classes",
                message: "a cluster needs at least one machine class".to_string(),
            });
        }
        for (i, class) in classes.iter().enumerate() {
            if class.count == 0 {
                return Err(Error::InvalidConfig {
                    key: "machine-classes",
                    message: format!("class `{}` has zero processors", class.name),
                });
            }
            if !(class.speed.is_finite() && class.speed > 0.0) {
                return Err(Error::InvalidConfig {
                    key: "machine-classes",
                    message: format!("class `{}` has invalid speed {}", class.name, class.speed),
                });
            }
            if classes[..i].iter().any(|c| c.name == class.name) {
                return Err(Error::InvalidConfig {
                    key: "machine-classes",
                    message: format!("class `{}` appears twice", class.name),
                });
            }
        }
        let mut offsets = Vec::with_capacity(classes.len());
        let mut first = 0usize;
        for class in &classes {
            offsets.push(first);
            first += class.count;
        }
        Ok(ClassedCluster { classes, offsets })
    }

    /// Parse the `name=COUNTxSPEED,...` spec syntax (shared with the
    /// workload layer and the CLI's `--machine-classes` flag).
    pub fn from_spec(spec: &str) -> Result<Self> {
        let classes =
            workload::parse_class_specs(spec).map_err(|message| Error::InvalidConfig {
                key: "machine-classes",
                message,
            })?;
        Self::from_class_specs(&classes)
    }

    /// Build a cluster from parsed workload [`ClassSpec`]s.
    pub fn from_class_specs(classes: &[ClassSpec]) -> Result<Self> {
        Self::new(
            classes
                .iter()
                .map(|c| MachineClass {
                    name: c.name.clone(),
                    count: c.count,
                    speed: c.speed,
                })
                .collect(),
        )
    }

    /// The identical-machines special case: one class of `processors`
    /// reference-speed machines.
    pub fn uniform(processors: usize) -> Result<Self> {
        Self::new(vec![MachineClass {
            name: "uniform".to_string(),
            count: processors,
            speed: 1.0,
        }])
    }

    /// The machine classes, in processor-axis order.
    pub fn classes(&self) -> &[MachineClass] {
        &self.classes
    }

    /// Number of machine classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total number of processors across all classes.
    pub fn total_processors(&self) -> usize {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Total weighted capacity `Σ count·speed` — the work the cluster
    /// retires per unit time when fully busy.
    pub fn total_capacity(&self) -> f64 {
        self.classes.iter().map(|c| c.count as f64 * c.speed).sum()
    }

    /// The contiguous global processor range class `class` occupies.
    pub fn class_range(&self, class: usize) -> ProcessorRange {
        ProcessorRange::new(self.offsets[class], self.classes[class].count)
    }

    /// The class owning global processor `processor`.
    pub fn processor_class(&self, processor: usize) -> usize {
        debug_assert!(processor < self.total_processors());
        match self.offsets.binary_search(&processor) {
            Ok(class) => class,
            Err(next) => next - 1,
        }
    }

    /// Index of the fastest class (first on ties).
    pub fn fastest_class(&self) -> usize {
        let mut best = 0;
        for (i, class) in self.classes.iter().enumerate().skip(1) {
            if class.speed > self.classes[best].speed {
                best = i;
            }
        }
        best
    }

    /// The class-blind baseline cluster of *equal total capacity*: one
    /// class with the same total processor count whose uniform speed is the
    /// mean per-processor capacity.  Comparing a classed run against a run
    /// on this cluster isolates what class-awareness buys, with the
    /// hardware budget held fixed.
    pub fn homogeneous_equivalent(&self) -> ClassedCluster {
        let total = self.total_processors();
        ClassedCluster::new(vec![MachineClass {
            name: "uniform".to_string(),
            count: total,
            speed: self.total_capacity() / total as f64,
        }])
        .expect("a valid cluster has a valid homogeneous equivalent")
    }

    /// Render the cluster back in the `name=COUNTxSPEED,...` spec syntax.
    pub fn spec(&self) -> String {
        self.classes
            .iter()
            .map(|c| format!("{}={}x{}", c.name, c.count, c.speed))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_class_cluster_lays_classes_out_contiguously() {
        let cluster = ClassedCluster::from_spec("old=8x1.0,new=4x2.0").unwrap();
        assert_eq!(cluster.class_count(), 2);
        assert_eq!(cluster.total_processors(), 12);
        assert!((cluster.total_capacity() - 16.0).abs() < 1e-12);
        assert_eq!(cluster.class_range(0), ProcessorRange::new(0, 8));
        assert_eq!(cluster.class_range(1), ProcessorRange::new(8, 4));
        for p in 0..8 {
            assert_eq!(cluster.processor_class(p), 0, "{p}");
        }
        for p in 8..12 {
            assert_eq!(cluster.processor_class(p), 1, "{p}");
        }
        assert_eq!(cluster.fastest_class(), 1);
        assert_eq!(cluster.spec(), "old=8x1,new=4x2");
    }

    #[test]
    fn uniform_cluster_is_the_identical_machines_special_case() {
        let cluster = ClassedCluster::uniform(6).unwrap();
        assert_eq!(cluster.class_count(), 1);
        assert_eq!(cluster.total_processors(), 6);
        assert!((cluster.total_capacity() - 6.0).abs() < 1e-12);
        assert_eq!(cluster.classes()[0].speed, 1.0);
    }

    #[test]
    fn homogeneous_equivalent_preserves_total_capacity() {
        let cluster = ClassedCluster::from_spec("old=8x1.0,new=4x2.5").unwrap();
        let flat = cluster.homogeneous_equivalent();
        assert_eq!(flat.class_count(), 1);
        assert_eq!(flat.total_processors(), cluster.total_processors());
        assert!((flat.total_capacity() - cluster.total_capacity()).abs() < 1e-9);
    }

    #[test]
    fn invalid_clusters_are_rejected_with_the_config_key() {
        for spec in ["", "a=0x1.0", "a=2x0.0", "a=2x1.0,a=3x2.0"] {
            match ClassedCluster::from_spec(spec) {
                Err(Error::InvalidConfig { key, .. }) => assert_eq!(key, "machine-classes"),
                other => panic!("{spec}: expected InvalidConfig, got {other:?}"),
            }
        }
        assert!(ClassedCluster::uniform(0).is_err());
    }
}
