//! The classed online engine: epoch-driven scheduling of an arrival trace
//! over per-class reservation pools.
//!
//! Each machine class owns one [`MachineState`] (its contiguous slice of
//! the global processor axis).  Arrivals queue until the next epoch
//! boundary; every epoch with new arrivals re-solves the whole queued set —
//! assignment (which class) and allotment (how many processors within the
//! class) — and commits the plan.  Commitments that have not started by the
//! next re-solve are revoked and re-planned, so **queued tasks may migrate
//! between classes** as the arrival picture changes; commitments that are
//! already executing stay where they are (running tasks never migrate).
//!
//! Telemetry: every cross-class re-assignment emits a
//! [`TelemetryEvent::ClassMigration`] and bumps
//! [`names::CLASS_MIGRATIONS`]; the end of the run emits one
//! [`TelemetryEvent::ClassUtilization`] per class.

use malleable_core::dual::SearchMode;
use malleable_core::eps::{approx_ge, approx_le, EPS_ACCUM};
use malleable_core::{
    MrtSolver, ProcessorRange, Result, Schedule, ScheduledTask, SolveRequest, Solver,
};
use online::MachineState;
use telemetry::{names, SharedRecorder, TelemetryEvent};
use workload::ArrivalTrace;

use crate::cluster::ClassedCluster;
use crate::instance::HeteroInstance;
use crate::profile::ClassedSpeedupProfile;
use crate::solver::AssignStrategy;

/// Tuning knobs of one classed engine run.
#[derive(Clone)]
pub struct ClassedEngineOptions {
    /// Re-solve period (simulated time).
    pub epoch: f64,
    /// Task → class assignment strategy used at every re-solve.
    pub strategy: AssignStrategy,
    /// Dual-search mode of the per-class allotment solves.
    pub search: SearchMode,
    /// Optional telemetry sink.
    pub recorder: Option<SharedRecorder>,
}

impl Default for ClassedEngineOptions {
    fn default() -> Self {
        ClassedEngineOptions {
            epoch: 1.0,
            strategy: AssignStrategy::Lp,
            search: SearchMode::Exact,
            recorder: None,
        }
    }
}

/// The outcome of one classed engine run.
#[derive(Debug, Clone)]
pub struct ClassedRunResult {
    /// The cluster the run executed on.
    pub cluster: ClassedCluster,
    /// Final commitments on the global processor axis (durations are
    /// class-scaled, so the identical-machines `Schedule::validate` does
    /// not apply; see [`ClassedRunResult::check`]).
    pub schedule: Schedule,
    /// Completion time of the last task.
    pub makespan: f64,
    /// Mean flow time (completion − arrival).
    pub mean_flow_time: f64,
    /// Queued-task re-assignments between classes across all re-solves.
    pub migrations: usize,
    /// Planning rounds (epochs that re-solved).
    pub replans: usize,
    /// Per-class integral of busy processors (Σ `count × duration` of the
    /// final commitments inside the class).
    pub class_busy: Vec<f64>,
}

impl ClassedRunResult {
    /// Utilisation of class `class` over the makespan horizon.
    pub fn class_utilization(&self, class: usize) -> f64 {
        let count = self.cluster.classes()[class].count as f64;
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.class_busy[class] / (count * self.makespan)
    }

    /// Structural validation of a classed run against its trace: every
    /// task scheduled exactly once, inside its assigned class's pool, not
    /// before its arrival, with the class-scaled duration, and without
    /// processor-time overlap.  Returns human-readable violations (empty =
    /// valid).
    pub fn check(&self, trace: &ArrivalTrace) -> Vec<String> {
        let mut messages = Vec::new();
        let mut seen = vec![false; trace.len()];
        for entry in self.schedule.entries() {
            if entry.task >= trace.len() || seen[entry.task] {
                messages.push(format!("task {} is duplicated or unknown", entry.task));
                continue;
            }
            seen[entry.task] = true;
            let arrival = &trace.arrivals()[entry.task];
            if !approx_ge(entry.start, arrival.at) {
                messages.push(format!(
                    "task {} starts at {} before its arrival {}",
                    entry.task, entry.start, arrival.at
                ));
            }
            let class = self.cluster.processor_class(entry.processors.first);
            let range = self.cluster.class_range(class);
            if entry.processors.end() > range.end() {
                messages.push(format!(
                    "task {} spans classes: {:?} exceeds {:?}",
                    entry.task, entry.processors, range
                ));
            }
            let expected =
                ClassedSpeedupProfile::from_speeds(arrival.task.profile.clone(), &self.cluster)
                    .time(class, entry.processors.count);
            if (entry.duration - expected).abs() > EPS_ACCUM {
                messages.push(format!(
                    "task {} runs {} but class {} needs {}",
                    entry.task, entry.duration, class, expected
                ));
            }
        }
        for (task, &s) in seen.iter().enumerate() {
            if !s {
                messages.push(format!("task {task} is not scheduled"));
            }
        }
        let entries = self.schedule.entries();
        for (i, a) in entries.iter().enumerate() {
            for b in entries.iter().skip(i + 1) {
                if a.conflicts_with(b) {
                    messages.push(format!(
                        "tasks {} and {} overlap in processor-time",
                        a.task, b.task
                    ));
                }
            }
        }
        messages
    }
}

struct Committed {
    class: usize,
    reservation: packing::ReservationId,
    first: usize,
    count: usize,
    start: f64,
    duration: f64,
}

enum TaskState {
    Queued { last_class: Option<usize> },
    Committed(Committed),
}

/// Run an arrival trace through the classed engine.  The trace's machine
/// size must equal the cluster's total processor count.
pub fn run_classed(
    trace: &ArrivalTrace,
    cluster: &ClassedCluster,
    options: &ClassedEngineOptions,
) -> Result<ClassedRunResult> {
    if trace.processors() != cluster.total_processors() {
        return Err(malleable_core::Error::InvalidConfig {
            key: "machine-classes",
            message: format!(
                "cluster has {} processors but the trace has {}",
                cluster.total_processors(),
                trace.processors()
            ),
        });
    }
    assert!(
        options.epoch.is_finite() && options.epoch > 0.0,
        "epoch must be positive, got {}",
        options.epoch
    );
    let recorder: SharedRecorder = options
        .recorder
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(telemetry::NoopRecorder));
    let n = trace.len();
    let mut machines: Vec<MachineState> = cluster
        .classes()
        .iter()
        .map(|c| MachineState::new(c.count))
        .collect();
    let mut states: Vec<Option<TaskState>> = (0..n).map(|_| None).collect();
    let mut admitted = 0usize;
    let mut replans = 0usize;
    let mut migrations = 0usize;
    let mut now = 0.0f64;

    while admitted < n || states.iter().any(|s| s.is_none()) {
        for machine in &mut machines {
            machine.advance_to(now);
        }
        // Admit everything that has arrived by this epoch boundary.
        let mut fresh = 0usize;
        while admitted < n && approx_le(trace.arrivals()[admitted].at, now) {
            states[admitted] = Some(TaskState::Queued { last_class: None });
            admitted += 1;
            fresh += 1;
        }
        if fresh > 0 {
            // Revoke commitments that have not started: they re-enter the
            // queue and may land in a different class.
            for (task, state) in states.iter_mut().enumerate() {
                if let Some(TaskState::Committed(c)) = state {
                    if !approx_le(c.start, now) {
                        machines[c.class].revoke(c.reservation).map_err(|e| {
                            malleable_core::Error::InvariantViolated {
                                context: "classed-revoke-queued",
                                message: format!("task {task}: {e}"),
                            }
                        })?;
                        *state = Some(TaskState::Queued {
                            last_class: Some(c.class),
                        });
                    }
                }
            }
            // Re-solve the queued set: assignment, then per-class allotment.
            let queued: Vec<usize> = states
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s, Some(TaskState::Queued { .. })))
                .map(|(task, _)| task)
                .collect();
            let profiles: Vec<ClassedSpeedupProfile> = queued
                .iter()
                .map(|&task| {
                    ClassedSpeedupProfile::from_speeds(
                        trace.arrivals()[task].task.profile.clone(),
                        cluster,
                    )
                })
                .collect();
            let hetero = HeteroInstance::new(cluster.clone(), profiles)?;
            let assignment = options.strategy.assign(&hetero);
            replans += 1;
            for (local, &task) in queued.iter().enumerate() {
                let Some(TaskState::Queued { last_class }) = &states[task] else {
                    unreachable!("queued list was just built from the states")
                };
                if let Some(prev) = last_class {
                    if *prev != assignment[local] {
                        migrations += 1;
                        recorder.add(names::CLASS_MIGRATIONS, 1);
                        if recorder.enabled() {
                            recorder.event(TelemetryEvent::ClassMigration {
                                time: now,
                                task: task as u64,
                                from_class: cluster.classes()[*prev].name.clone(),
                                to_class: cluster.classes()[assignment[local]].name.clone(),
                            });
                        }
                    }
                }
            }
            for (class, machine) in machines.iter_mut().enumerate() {
                let locals: Vec<usize> = (0..queued.len())
                    .filter(|&local| assignment[local] == class)
                    .collect();
                if locals.is_empty() {
                    continue;
                }
                let ids: Vec<usize> = locals.iter().map(|&local| queued[local]).collect();
                let class_instance = hetero.class_instance(class, &locals)?;
                let request = SolveRequest::new(&class_instance).with_mode(options.search);
                let outcome = MrtSolver.solve(&request)?;
                // Commit in the offline plan's start order so the relative
                // shape survives the greedy re-packing.
                let mut entries: Vec<&ScheduledTask> = outcome.schedule.entries().iter().collect();
                entries.sort_by(|a, b| a.start.total_cmp(&b.start).then(a.task.cmp(&b.task)));
                for entry in entries {
                    let placement = machine.place_earliest(entry.processors.count, entry.duration);
                    recorder.add(names::PLACEMENTS, 1);
                    states[ids[entry.task]] = Some(TaskState::Committed(Committed {
                        class,
                        reservation: placement.reservation,
                        first: placement.first,
                        count: placement.count,
                        start: placement.start,
                        duration: entry.duration,
                    }));
                }
            }
        }
        now += options.epoch;
    }

    // Assemble the final schedule on the global axis.
    let mut schedule = Schedule::new(cluster.total_processors());
    let mut class_busy = vec![0.0f64; cluster.class_count()];
    let mut makespan = 0.0f64;
    let mut flow_sum = 0.0f64;
    for (task, state) in states.iter().enumerate() {
        let Some(TaskState::Committed(c)) = state else {
            unreachable!("the loop only terminates once every task is committed")
        };
        let global_first = cluster.class_range(c.class).first + c.first;
        schedule.push(ScheduledTask {
            task,
            start: c.start,
            duration: c.duration,
            processors: ProcessorRange::new(global_first, c.count),
        });
        class_busy[c.class] += c.count as f64 * c.duration;
        makespan = makespan.max(c.start + c.duration);
        flow_sum += c.start + c.duration - trace.arrivals()[task].at;
    }
    if recorder.enabled() {
        for (class, busy) in class_busy.iter().enumerate() {
            recorder.event(TelemetryEvent::ClassUtilization {
                class: cluster.classes()[class].name.clone(),
                busy: *busy,
                capacity: cluster.classes()[class].count as f64 * makespan,
            });
        }
    }
    recorder.add(names::REPLANS, replans as u64);
    Ok(ClassedRunResult {
        cluster: cluster.clone(),
        schedule,
        makespan,
        mean_flow_time: if n > 0 { flow_sum / n as f64 } else { 0.0 },
        migrations,
        replans,
        class_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::CollectingRecorder;
    use workload::{classed_trace, parse_class_specs};

    fn cluster(spec: &str) -> ClassedCluster {
        ClassedCluster::from_spec(spec).unwrap()
    }

    fn trace(spec: &str, tasks: usize, seed: u64) -> ArrivalTrace {
        classed_trace(&parse_class_specs(spec).unwrap(), tasks, seed).unwrap()
    }

    #[test]
    fn classed_run_is_valid_and_deterministic() {
        let spec = "old=8x1.0,new=4x2.0";
        let cluster = cluster(spec);
        let trace = trace(spec, 24, 3);
        let a = run_classed(&trace, &cluster, &ClassedEngineOptions::default()).unwrap();
        let b = run_classed(&trace, &cluster, &ClassedEngineOptions::default()).unwrap();
        assert!(a.check(&trace).is_empty(), "{:?}", a.check(&trace));
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.schedule.len(), trace.len());
        assert!(a.replans > 0);
        assert!(a.makespan > 0.0);
    }

    #[test]
    fn uniform_cluster_run_matches_identical_machine_durations() {
        let cluster = ClassedCluster::uniform(8).unwrap();
        let trace = trace("only=8x1.0", 16, 5);
        let result = run_classed(&trace, &cluster, &ClassedEngineOptions::default()).unwrap();
        assert!(result.check(&trace).is_empty());
        for entry in result.schedule.entries() {
            let base = trace.arrivals()[entry.task]
                .task
                .profile
                .time(entry.processors.count);
            assert_eq!(entry.duration, base);
        }
    }

    #[test]
    fn recorder_sees_migrations_and_per_class_utilisation() {
        let spec = "old=8x1.0,new=4x2.5";
        let cluster = cluster(spec);
        let trace = trace(spec, 32, 11);
        let recorder = CollectingRecorder::shared();
        let options = ClassedEngineOptions {
            recorder: Some(recorder.clone() as SharedRecorder),
            ..ClassedEngineOptions::default()
        };
        let result = run_classed(&trace, &cluster, &options).unwrap();
        assert!(result.check(&trace).is_empty());
        let events = recorder.events();
        let utilisations = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::ClassUtilization { .. }))
            .count();
        assert_eq!(utilisations, 2);
        let migrations = events
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::ClassMigration { .. }))
            .count();
        assert_eq!(migrations, result.migrations);
        assert_eq!(recorder.counter(names::CLASS_MIGRATIONS), migrations as u64);
        for class in 0..2 {
            let u = result.class_utilization(class);
            assert!((0.0..=1.0 + 1e-9).contains(&u), "class {class}: {u}");
        }
    }

    #[test]
    fn lp_strategy_beats_the_class_blind_baseline_on_an_asymmetric_cluster() {
        let spec = "old=8x1.0,new=4x2.5";
        let cluster = cluster(spec);
        let mut lp_wins = 0.0f64;
        let mut blind_wins = 0.0f64;
        for seed in 0..4 {
            let trace = trace(spec, 28, seed);
            let lp = run_classed(&trace, &cluster, &ClassedEngineOptions::default()).unwrap();
            let blind = run_classed(
                &trace,
                &cluster,
                &ClassedEngineOptions {
                    strategy: AssignStrategy::ClassBlind,
                    ..ClassedEngineOptions::default()
                },
            )
            .unwrap();
            assert!(lp.check(&trace).is_empty());
            assert!(blind.check(&trace).is_empty());
            lp_wins += lp.makespan;
            blind_wins += blind.makespan;
        }
        assert!(
            lp_wins < blind_wins - 1e-9,
            "lp mean {lp_wins} vs blind mean {blind_wins}"
        );
    }

    #[test]
    fn mismatched_trace_and_cluster_are_rejected() {
        let cluster = cluster("old=8x1.0,new=4x2.0");
        let trace = trace("only=8x1.0", 8, 1);
        assert!(run_classed(&trace, &cluster, &ClassedEngineOptions::default()).is_err());
    }
}
