//! Heterogeneous problem instances: a classed cluster plus one classed
//! speed-up profile per task, with projections into per-class
//! identical-machines sub-instances and the classed lower bound.

use malleable_core::{Instance, MalleableTask, Result, TaskId};

use crate::cluster::ClassedCluster;
use crate::profile::ClassedSpeedupProfile;

/// An instance of the classed malleable scheduling problem: `n` monotone
/// malleable tasks, each with class-dependent rates, to be scheduled on a
/// [`ClassedCluster`].  Every task is *assigned* to exactly one class and
/// then allotted processors within that class's contiguous pool.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroInstance {
    cluster: ClassedCluster,
    profiles: Vec<ClassedSpeedupProfile>,
}

impl HeteroInstance {
    /// Build a heterogeneous instance from explicit classed profiles.
    pub fn new(cluster: ClassedCluster, profiles: Vec<ClassedSpeedupProfile>) -> Result<Self> {
        if profiles.is_empty() {
            return Err(malleable_core::Error::EmptyInstance);
        }
        Ok(HeteroInstance { cluster, profiles })
    }

    /// Lift an identical-machines instance onto a classed cluster: every
    /// task speeds up by exactly the nominal class factors
    /// ([`ClassedSpeedupProfile::from_speeds`]).
    pub fn from_instance(instance: &Instance, cluster: ClassedCluster) -> Result<Self> {
        let profiles = instance
            .tasks()
            .iter()
            .map(|t| ClassedSpeedupProfile::from_speeds(t.profile.clone(), &cluster))
            .collect();
        Self::new(cluster, profiles)
    }

    /// The cluster.
    pub fn cluster(&self) -> &ClassedCluster {
        &self.cluster
    }

    /// Number of tasks.
    pub fn task_count(&self) -> usize {
        self.profiles.len()
    }

    /// The classed profile of task `task`.
    pub fn profile(&self, task: TaskId) -> &ClassedSpeedupProfile {
        &self.profiles[task]
    }

    /// All classed profiles.
    pub fn profiles(&self) -> &[ClassedSpeedupProfile] {
        &self.profiles
    }

    /// Project the given tasks into class `class`: an ordinary
    /// identical-machines [`Instance`] on the class's pool whose profiles
    /// are the per-class projections, in the order of `tasks` (the caller
    /// keeps the index mapping).  Any registered identical-machines solver
    /// runs unchanged on the result.
    pub fn class_instance(&self, class: usize, tasks: &[TaskId]) -> Result<Instance> {
        let count = self.cluster.classes()[class].count;
        let profiles = tasks
            .iter()
            .map(|&task| {
                self.profiles[task]
                    .projected(class, count)
                    .map(MalleableTask::new)
            })
            .collect::<Result<Vec<_>>>()?;
        Instance::new(profiles, count)
    }

    /// A valid lower bound on the classed optimum makespan, from two
    /// arguments that hold for *every* assignment:
    ///
    /// * **critical task** — each task runs in exactly one class, so it
    ///   needs at least its best time over all classes, each taken on the
    ///   whole class pool;
    /// * **weighted area** — running task `j` on `p` processors of class
    ///   `c` consumes `p · speed_c · time` = `w_j(p) ≥ w_j(1)` weighted
    ///   capacity (work is non-decreasing in `p`), and the cluster retires
    ///   at most [`ClassedCluster::total_capacity`] weighted units per unit
    ///   time.
    ///
    /// On a uniform speed-1.0 cluster both terms reduce to the classical
    /// identical-machines bounds.
    pub fn lower_bound(&self) -> f64 {
        let classes = self.cluster.classes();
        let critical = self
            .profiles
            .iter()
            .map(|profile| {
                (0..classes.len())
                    .map(|c| profile.best_time(c, classes[c].count))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0f64, f64::max);
        let weighted_work: f64 = self.profiles.iter().map(|p| p.base().time(1)).sum();
        let area = weighted_work / self.cluster.total_capacity();
        critical.max(area)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::SpeedupProfile;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::linear(8.0, 8).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.7, 1.3]).unwrap(),
                SpeedupProfile::sequential(2.0).unwrap(),
            ],
            12,
        )
        .unwrap()
    }

    #[test]
    fn class_instance_projects_the_selected_tasks() {
        let cluster = ClassedCluster::from_spec("old=8x1.0,new=4x2.0").unwrap();
        let hetero = HeteroInstance::from_instance(&instance(), cluster).unwrap();
        let fast = hetero.class_instance(1, &[0, 2]).unwrap();
        assert_eq!(fast.processors(), 4);
        assert_eq!(fast.task_count(), 2);
        // Task 0 halves its times on the speed-2 class, truncated to 4.
        assert!((fast.time(0, 1) - 4.0).abs() < 1e-12);
        assert!((fast.time(0, 4) - 1.0).abs() < 1e-12);
        // The sequential task is still sequential, just faster.
        assert!((fast.time(1, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_lower_bound_matches_the_identical_machines_bounds() {
        let inst = instance();
        let cluster = ClassedCluster::uniform(inst.processors()).unwrap();
        let hetero = HeteroInstance::from_instance(&inst, cluster).unwrap();
        let classic = malleable_core::bounds::lower_bound(&inst);
        let classed = hetero.lower_bound();
        // Both are valid lower bounds built from the same two arguments;
        // the classed form may not dominate (the classical area bound uses
        // the minimal work at every allotment), but it must stay valid.
        assert!(classed > 0.0);
        assert!(classed <= classic + 1e-9);
    }

    #[test]
    fn classed_lower_bound_reflects_the_faster_cluster() {
        let inst = instance();
        let slow =
            HeteroInstance::from_instance(&inst, ClassedCluster::from_spec("old=12x1.0").unwrap())
                .unwrap();
        let fast = HeteroInstance::from_instance(
            &inst,
            ClassedCluster::from_spec("old=8x1.0,new=4x2.0").unwrap(),
        )
        .unwrap();
        // Extra capacity can only lower the bound.
        assert!(fast.lower_bound() <= slow.lower_bound() + 1e-9);
    }
}
