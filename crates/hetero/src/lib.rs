//! # hetero
//!
//! Heterogeneous machine classes for malleable scheduling: the
//! identical-processors model of Mounié–Rapine–Trystram extended to
//! clusters whose processors come in named *classes* with per-class speed
//! factors (an old partition next to a new one, CPU nodes next to
//! fat nodes).
//!
//! The model factors the classed problem into **assignment** (which class
//! runs each task) and **allotment** (how many processors within the
//! class), in the LP-rounding tradition of malleable scheduling on
//! unrelated machines (Jansen & Land, arXiv 1903.11016): a dual
//! approximation binary-searches the target makespan and greedily rounds
//! each guess's canonical-allotment relaxation into per-class capacity
//! areas.  Once tasks are assigned, each class pool is an ordinary
//! identical-machines instance — the existing breakpoint-exact MRT search
//! runs per class, unchanged.
//!
//! * [`ClassedCluster`] / [`MachineClass`] — named classes with counts and
//!   speed factors, laid out contiguously on one global processor axis;
//!   parsed from the `old=8x1.0,new=4x2.0` spec syntax shared with the CLI.
//! * [`ClassedSpeedupProfile`] — the
//!   [`SpeedupProfile`](malleable_core::SpeedupProfile) generalised to
//!   class-dependent rates; identical machines are the strict special case
//!   (unit rates project back to the base profile bit-for-bit).
//! * [`HeteroInstance`] — classed tasks + cluster, with per-class
//!   projections and the classed lower bound.
//! * [`assign`] — the LP-rounding assignment, a greedy density baseline,
//!   and the speed-blind ablation the benchmarks gate against.
//! * [`HeteroSolver`] — the above behind the unified `Solver` trait
//!   (registered as `hetero-lp` / `hetero-greedy` in the workspace
//!   registry); on a uniform one-class cluster it reproduces the `mrt`
//!   solver exactly.
//! * [`engine`] — the classed online engine: per-class reservation pools,
//!   epoch re-solves that may migrate *queued* tasks between classes
//!   (running tasks stay put), migration and per-class-utilisation
//!   telemetry.
//!
//! ```rust
//! use hetero::{ClassedCluster, HeteroSolver};
//! use malleable_core::prelude::*;
//!
//! let instance = Instance::from_profiles(
//!     vec![
//!         SpeedupProfile::linear(6.0, 4).unwrap(),
//!         SpeedupProfile::sequential(1.0).unwrap(),
//!     ],
//!     12,
//! )
//! .unwrap();
//! let config = SolverConfig::new().with_text("machine-classes", "old=8x1.0,new=4x2.0");
//! let outcome = HeteroSolver::lp()
//!     .solve(&SolveRequest::new(&instance).with_config(&config))
//!     .unwrap();
//! assert!(outcome.makespan() >= outcome.lower_bound);
//! ```

#![warn(missing_docs)]

pub mod assign;
pub mod cluster;
pub mod engine;
pub mod instance;
pub mod profile;
pub mod solver;

pub use assign::{class_blind_assign, greedy_density_assign, lp_assign, Assignment};
pub use cluster::{ClassedCluster, MachineClass};
pub use engine::{run_classed, ClassedEngineOptions, ClassedRunResult};
pub use instance::HeteroInstance;
pub use profile::ClassedSpeedupProfile;
pub use solver::{solve_classed, AssignStrategy, HeteroSolver};
