//! Class-dependent speed-up profiles: the identical-machines
//! [`SpeedupProfile`] generalised to per-class execution rates.

use malleable_core::{Error, Result, SpeedupProfile};

use crate::cluster::ClassedCluster;

/// A speed-up profile over a classed cluster: a base (reference-speed)
/// profile plus one multiplicative *rate* per machine class.  The execution
/// time of the task on `p` processors of class `c` is
/// `base.time(p) / rates[c]`.
///
/// With every rate at 1.0 this is exactly the identical-machines model —
/// [`ClassedSpeedupProfile::projected`] then returns the base profile
/// unchanged (bit-for-bit), which is what makes the homogeneous parity
/// tests exact rather than approximate.
///
/// Rates usually equal the class speed factors
/// ([`ClassedSpeedupProfile::from_speeds`]), but they are per-task, so a
/// workload can also express affinity (a task that vectorises well gaining
/// more than the nominal factor on a newer class).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassedSpeedupProfile {
    base: SpeedupProfile,
    rates: Vec<f64>,
}

impl ClassedSpeedupProfile {
    /// Build a classed profile from a base profile and one rate per class.
    /// Rates must be positive and finite and the list non-empty.
    pub fn new(base: SpeedupProfile, rates: Vec<f64>) -> Result<Self> {
        if rates.is_empty() {
            return Err(Error::InvalidConfig {
                key: "machine-classes",
                message: "a classed profile needs at least one class rate".to_string(),
            });
        }
        for (class, &rate) in rates.iter().enumerate() {
            if !(rate.is_finite() && rate > 0.0) {
                return Err(Error::InvalidConfig {
                    key: "machine-classes",
                    message: format!("class {class} has invalid rate {rate}"),
                });
            }
        }
        Ok(ClassedSpeedupProfile { base, rates })
    }

    /// The common case: the task speeds up by exactly each class's nominal
    /// speed factor.
    pub fn from_speeds(base: SpeedupProfile, cluster: &ClassedCluster) -> Self {
        ClassedSpeedupProfile {
            base,
            rates: cluster.classes().iter().map(|c| c.speed).collect(),
        }
    }

    /// The reference-speed base profile.
    pub fn base(&self) -> &SpeedupProfile {
        &self.base
    }

    /// The per-class rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Execution time on `p` processors of class `class`.
    pub fn time(&self, class: usize, p: usize) -> f64 {
        self.base.time(p) / self.rates[class]
    }

    /// Work (`p · time`) on `p` processors of class `class`.
    pub fn work(&self, class: usize, p: usize) -> f64 {
        p as f64 * self.time(class, p)
    }

    /// The fastest the task can possibly finish in class `class` when the
    /// class has `count` processors: its time on the whole class pool
    /// (monotone profiles are fastest at the largest allotment).
    pub fn best_time(&self, class: usize, count: usize) -> f64 {
        let p = count.min(self.base.max_processors()).max(1);
        self.time(class, p)
    }

    /// Project the task into class `class` of `count` processors: an
    /// ordinary identical-machines [`SpeedupProfile`] whose entry `p` is
    /// `base.time(p) / rates[class]`, truncated to the class pool size.
    /// The per-class allotment solvers run unchanged on these projections.
    ///
    /// At rate exactly 1.0 the scaling multiplies every entry by 1.0, which
    /// is exact in IEEE arithmetic — the projection returns the base
    /// profile bit-for-bit.
    pub fn projected(&self, class: usize, count: usize) -> Result<SpeedupProfile> {
        Ok(self.base.scaled(1.0 / self.rates[class])?.truncated(count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SpeedupProfile {
        SpeedupProfile::new(vec![4.0, 2.5, 2.0]).unwrap()
    }

    #[test]
    fn times_scale_by_the_class_rate() {
        let cluster = ClassedCluster::from_spec("old=4x1.0,new=2x2.0").unwrap();
        let profile = ClassedSpeedupProfile::from_speeds(base(), &cluster);
        assert_eq!(profile.time(0, 1), 4.0);
        assert_eq!(profile.time(1, 1), 2.0);
        assert_eq!(profile.time(1, 3), 1.0);
        assert_eq!(profile.work(1, 2), 2.5);
        assert_eq!(profile.best_time(0, 2), 2.5);
        // The pool is wider than the profile: best time saturates.
        assert_eq!(profile.best_time(0, 9), 2.0);
    }

    #[test]
    fn unit_rate_projection_is_bit_identical_to_the_base() {
        let cluster = ClassedCluster::uniform(3).unwrap();
        let profile = ClassedSpeedupProfile::from_speeds(base(), &cluster);
        assert_eq!(profile.projected(0, 3).unwrap(), base());
        // Truncation to a narrower pool keeps the prefix.
        assert_eq!(
            profile.projected(0, 2).unwrap(),
            SpeedupProfile::new(vec![4.0, 2.5]).unwrap()
        );
    }

    #[test]
    fn projection_divides_every_entry_by_the_rate() {
        let cluster = ClassedCluster::from_spec("old=4x1.0,new=2x2.0").unwrap();
        let profile = ClassedSpeedupProfile::from_speeds(base(), &cluster);
        let projected = profile.projected(1, 2).unwrap();
        assert_eq!(projected.max_processors(), 2);
        assert!((projected.time(1) - 2.0).abs() < 1e-12);
        assert!((projected.time(2) - 1.25).abs() < 1e-12);
    }

    #[test]
    fn invalid_rates_are_rejected() {
        assert!(ClassedSpeedupProfile::new(base(), vec![]).is_err());
        assert!(ClassedSpeedupProfile::new(base(), vec![1.0, 0.0]).is_err());
        assert!(ClassedSpeedupProfile::new(base(), vec![f64::NAN]).is_err());
    }
}
