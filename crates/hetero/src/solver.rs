//! Classed assignment + allotment solvers behind the unified [`Solver`]
//! trait: assign each task to one machine class, run the identical-machines
//! allotment search on each class pool, and merge the per-class schedules
//! onto the global processor axis.

use malleable_core::solver::SolverCapabilities;
use malleable_core::{
    Error, MrtSolver, ProcessorRange, Result, Schedule, ScheduledTask, SolveOutcome, SolveRequest,
    Solver, TaskId,
};
use telemetry::SpanTimer;

use crate::assign::{class_blind_assign, greedy_density_assign, lp_assign, Assignment};
use crate::cluster::ClassedCluster;
use crate::instance::HeteroInstance;

/// Which task → class assignment strategy a [`HeteroSolver`] runs before
/// the per-class allotment search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignStrategy {
    /// Dual-approximation LP-rounding assignment ([`lp_assign`]).
    Lp,
    /// Capacity-aware greedy density baseline ([`greedy_density_assign`]).
    GreedyDensity,
    /// Speed-blind proportional spread ([`class_blind_assign`]) — the
    /// ablation baseline, registered for the benches.
    ClassBlind,
}

impl AssignStrategy {
    /// The registry / report name of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            AssignStrategy::Lp => "hetero-lp",
            AssignStrategy::GreedyDensity => "hetero-greedy",
            AssignStrategy::ClassBlind => "hetero-blind",
        }
    }

    /// Run the strategy.
    pub fn assign(self, instance: &HeteroInstance) -> Assignment {
        match self {
            AssignStrategy::Lp => lp_assign(instance),
            AssignStrategy::GreedyDensity => greedy_density_assign(instance),
            AssignStrategy::ClassBlind => class_blind_assign(instance),
        }
    }
}

/// The classed solver: assignment (per [`AssignStrategy`]) followed by the
/// breakpoint-exact MRT allotment search on every class pool.
///
/// The cluster is a *request* parameter: the `machine-classes` config key
/// (the CLI's `--machine-classes` spec syntax) selects the classed cluster,
/// and its total processor count must equal the instance's machine size.
/// Without the key the solver runs on the uniform single-class cluster —
/// the identical-machines special case, where it reproduces the `mrt`
/// solver's schedule exactly.  The `assign` key (`lp`, `greedy`, `blind`)
/// re-targets the strategy per call, mirroring the two-phase solver's
/// `rigid` key.
#[derive(Debug, Clone, Copy)]
pub struct HeteroSolver {
    /// The assignment strategy used when the request carries no `assign`
    /// override.
    pub strategy: AssignStrategy,
}

impl HeteroSolver {
    /// The flagship LP-rounding solver (`hetero-lp`).
    pub fn lp() -> Self {
        HeteroSolver {
            strategy: AssignStrategy::Lp,
        }
    }

    /// The greedy density baseline (`hetero-greedy`).
    pub fn greedy() -> Self {
        HeteroSolver {
            strategy: AssignStrategy::GreedyDensity,
        }
    }

    /// The speed-blind ablation baseline (`hetero-blind`).
    pub fn blind() -> Self {
        HeteroSolver {
            strategy: AssignStrategy::ClassBlind,
        }
    }

    fn effective_strategy(&self, request: &SolveRequest<'_>) -> Result<AssignStrategy> {
        match request.config_text("assign") {
            None => Ok(self.strategy),
            Some("lp") => Ok(AssignStrategy::Lp),
            Some("greedy") => Ok(AssignStrategy::GreedyDensity),
            Some("blind") => Ok(AssignStrategy::ClassBlind),
            Some(other) => Err(Error::InvalidConfig {
                key: "assign",
                message: format!("`{other}` is not one of lp, greedy, blind"),
            }),
        }
    }

    fn effective_cluster(&self, request: &SolveRequest<'_>) -> Result<ClassedCluster> {
        let m = request.instance.processors();
        match request.config_text("machine-classes") {
            None => ClassedCluster::uniform(m),
            Some(spec) => {
                let cluster = ClassedCluster::from_spec(spec)?;
                if cluster.total_processors() != m {
                    return Err(Error::InvalidConfig {
                        key: "machine-classes",
                        message: format!(
                            "cluster has {} processors but the instance has {m}",
                            cluster.total_processors()
                        ),
                    });
                }
                Ok(cluster)
            }
        }
    }
}

/// Assign + solve + merge on an already-built [`HeteroInstance`]: the core
/// routine behind [`HeteroSolver::solve`], exposed for callers that hold a
/// classed instance directly (the classed online engine, the benches).
///
/// Every shared request knob (search mode, branches, λ, warm start, probe
/// and time budgets, parallel branches) is forwarded to each per-class MRT
/// solve, so the single-class case is knob-for-knob identical to the `mrt`
/// solver.
pub fn solve_classed(
    hetero: &HeteroInstance,
    assignment: &Assignment,
    request: &SolveRequest<'_>,
) -> Result<SolveOutcome> {
    let timer = SpanTimer::start();
    let cluster = hetero.cluster();
    let mut schedule = Schedule::new(cluster.total_processors());
    let mut probes = 0usize;
    let mut exhausted = false;
    let mut feasible_omega: Option<f64> = None;
    for class in 0..cluster.class_count() {
        let tasks: Vec<TaskId> = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == class)
            .map(|(task, _)| task)
            .collect();
        if tasks.is_empty() {
            continue;
        }
        let class_instance = hetero.class_instance(class, &tasks)?;
        let mut sub = SolveRequest::new(&class_instance)
            .with_mode(request.mode)
            .with_branches(request.branches)
            .with_parallel_branches(request.parallel_branches);
        sub.lambda = request.lambda;
        sub.warm_start_hint = request.warm_start_hint;
        sub.probe_budget = request.probe_budget;
        sub.time_budget = request.time_budget;
        let outcome = MrtSolver.solve(&sub)?;
        let first = cluster.class_range(class).first;
        for entry in outcome.schedule.entries() {
            schedule.push(ScheduledTask {
                task: tasks[entry.task],
                start: entry.start,
                duration: entry.duration,
                processors: ProcessorRange::new(
                    entry.processors.first + first,
                    entry.processors.count,
                ),
            });
        }
        probes += outcome.probes;
        exhausted |= outcome.time_budget_exhausted;
        feasible_omega = match (feasible_omega, outcome.feasible_omega) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (None, omega) => omega,
            (omega, None) => omega,
        };
    }
    let wall_time = timer.elapsed();
    Ok(SolveOutcome {
        solver: "hetero",
        schedule,
        lower_bound: hetero.lower_bound(),
        certified: false,
        feasible_omega,
        probes,
        wall_time,
        time_budget_exhausted: exhausted
            || request.time_budget.is_some_and(|budget| wall_time > budget),
    })
}

impl Solver for HeteroSolver {
    fn name(&self) -> &'static str {
        self.strategy.name()
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        let strategy = self.effective_strategy(request)?;
        let cluster = self.effective_cluster(request)?;
        let hetero = HeteroInstance::from_instance(request.instance, cluster)?;
        let assignment = strategy.assign(&hetero);
        let mut outcome = solve_classed(&hetero, &assignment, request)?;
        outcome.solver = strategy.name();
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::prelude::{SearchMode, SolverConfig};
    use malleable_core::{Instance, SpeedupProfile};
    use std::time::Duration;

    fn instance(m: usize) -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::linear(9.0, m).unwrap(),
                SpeedupProfile::new(vec![5.0, 2.8, 2.1, 1.9]).unwrap(),
                SpeedupProfile::sequential(1.25).unwrap(),
                SpeedupProfile::linear(6.0, 4).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.7, 1.3]).unwrap(),
            ],
            m,
        )
        .unwrap()
    }

    #[test]
    fn uniform_cluster_reproduces_the_mrt_solver_exactly() {
        let inst = instance(8);
        for mode in [SearchMode::Exact, SearchMode::Bisect] {
            let request = SolveRequest::new(&inst).with_mode(mode);
            let mrt = MrtSolver.solve(&request).unwrap();
            let classed = HeteroSolver::lp().solve(&request).unwrap();
            assert_eq!(classed.schedule, mrt.schedule);
            assert_eq!(classed.makespan(), mrt.makespan());
            assert_eq!(classed.probes, mrt.probes);
        }
    }

    #[test]
    fn classed_solve_splits_the_machine_and_stays_conflict_free() {
        let inst = instance(12);
        let config = SolverConfig::new().with_text("machine-classes", "old=8x1.0,new=4x2.0");
        let request = SolveRequest::new(&inst).with_config(&config);
        let outcome = HeteroSolver::lp().solve(&request).unwrap();
        assert_eq!(outcome.solver, "hetero-lp");
        assert!(outcome.lower_bound > 0.0);
        assert!(outcome.makespan() >= outcome.lower_bound - 1e-9);
        // Every task appears exactly once, inside the machine, with no
        // processor-time overlap (durations are class-scaled, so the
        // identical-machines `validate` does not apply).
        let entries = outcome.schedule.entries();
        let mut seen = vec![false; inst.task_count()];
        for e in entries {
            assert!(!seen[e.task]);
            seen[e.task] = true;
            assert!(e.processors.fits(12));
        }
        assert!(seen.iter().all(|&s| s));
        for (i, a) in entries.iter().enumerate() {
            for b in entries.iter().skip(i + 1) {
                assert!(!a.conflicts_with(b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn faster_classes_shorten_the_scaled_durations() {
        let inst = instance(12);
        let config = SolverConfig::new().with_text("machine-classes", "old=8x1.0,new=4x2.0");
        let request = SolveRequest::new(&inst).with_config(&config);
        let outcome = HeteroSolver::lp().solve(&request).unwrap();
        for e in outcome.schedule.entries() {
            let base = inst.time(e.task, e.processors.count);
            if e.processors.first >= 8 {
                assert!((e.duration - base / 2.0).abs() < 1e-9, "{e:?}");
            } else {
                assert!((e.duration - base).abs() < 1e-9, "{e:?}");
            }
        }
    }

    #[test]
    fn assign_key_retargets_the_strategy_per_call() {
        let inst = instance(12);
        let spec = "old=8x1.0,new=4x2.5";
        let lp = HeteroSolver::lp();
        for (value, name) in [
            ("lp", "hetero-lp"),
            ("greedy", "hetero-greedy"),
            ("blind", "hetero-blind"),
        ] {
            let config = SolverConfig::new()
                .with_text("machine-classes", spec)
                .with_text("assign", value);
            let outcome = lp
                .solve(&SolveRequest::new(&inst).with_config(&config))
                .unwrap();
            assert_eq!(outcome.solver, name, "{value}");
        }
        let bad = SolverConfig::new().with_text("assign", "oracle");
        match lp.solve(&SolveRequest::new(&inst).with_config(&bad)) {
            Err(Error::InvalidConfig { key, .. }) => assert_eq!(key, "assign"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_cluster_sizes_are_rejected() {
        let inst = instance(8);
        let config = SolverConfig::new().with_text("machine-classes", "old=4x1.0,new=2x2.0");
        match HeteroSolver::lp().solve(&SolveRequest::new(&inst).with_config(&config)) {
            Err(Error::InvalidConfig { key, .. }) => assert_eq!(key, "machine-classes"),
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }

    #[test]
    fn zero_time_budget_is_reported_as_exhausted() {
        let inst = instance(8);
        let request = SolveRequest::new(&inst).with_time_budget(Duration::ZERO);
        let outcome = HeteroSolver::greedy().solve(&request).unwrap();
        assert!(outcome.time_budget_exhausted);
        let relaxed = HeteroSolver::greedy()
            .solve(&SolveRequest::new(&inst))
            .unwrap();
        assert!(!relaxed.time_budget_exhausted);
    }

    #[test]
    fn classed_solve_beats_the_blind_assignment_on_an_asymmetric_cluster() {
        let inst = instance(12);
        let spec = "old=8x1.0,new=4x2.5";
        let run = |assign: &str| {
            let config = SolverConfig::new()
                .with_text("machine-classes", spec)
                .with_text("assign", assign);
            HeteroSolver::lp()
                .solve(&SolveRequest::new(&inst).with_config(&config))
                .unwrap()
                .makespan()
        };
        assert!(run("lp") <= run("blind") + 1e-9);
    }
}
