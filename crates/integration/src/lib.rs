//! This crate exists only to host the workspace-level integration tests in
//! `tests/` (see the `[[test]]` entries in its manifest).  It has no library
//! content of its own.
