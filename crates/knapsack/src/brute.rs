//! Exponential brute-force solver, used as an oracle in tests and for tiny
//! instances (e.g. the "trivial solution" scan of §4.5 degenerates to very few
//! items).

use crate::{Item, Solution};

/// Enumerate every subset of the items and return a maximum-profit subset that
/// fits within `capacity`.
///
/// Complexity `O(2^n · n)`.  Panics in debug builds if `n > 25` to catch
/// accidental use on large inputs; in release builds large inputs are simply
/// slow.
pub fn solve_brute_force(items: &[Item], capacity: u64) -> Solution {
    let n = items.len();
    debug_assert!(n <= 25, "brute-force knapsack called with {n} items");
    if n == 0 {
        return Solution::empty();
    }
    let mut best_profit = 0u64;
    let mut best_weight = 0u64;
    let mut best_mask = 0u64;
    for mask in 0u64..(1u64 << n) {
        let mut w = 0u64;
        let mut p = 0u64;
        for (i, it) in items.iter().enumerate() {
            if mask >> i & 1 == 1 {
                w += it.weight;
                p += it.profit;
            }
        }
        if w <= capacity && (p > best_profit || (p == best_profit && w < best_weight)) {
            best_profit = p;
            best_weight = w;
            best_mask = mask;
        }
    }
    let selected = (0..n).filter(|i| best_mask >> i & 1 == 1).collect();
    Solution::from_indices(items, selected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        assert_eq!(solve_brute_force(&[], 5), Solution::empty());
    }

    #[test]
    fn single_item_fits() {
        let items = [Item {
            weight: 2,
            profit: 9,
        }];
        let sol = solve_brute_force(&items, 2);
        assert_eq!(sol.profit, 9);
        assert_eq!(sol.selected, vec![0]);
    }

    #[test]
    fn single_item_does_not_fit() {
        let items = [Item {
            weight: 3,
            profit: 9,
        }];
        let sol = solve_brute_force(&items, 2);
        assert_eq!(sol.profit, 0);
        assert!(sol.selected.is_empty());
    }

    #[test]
    fn prefers_lower_weight_on_profit_tie() {
        let items = [
            Item {
                weight: 5,
                profit: 10,
            },
            Item {
                weight: 3,
                profit: 10,
            },
        ];
        let sol = solve_brute_force(&items, 6);
        assert_eq!(sol.profit, 10);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn three_item_optimum() {
        let items = [
            Item {
                weight: 1,
                profit: 2,
            },
            Item {
                weight: 2,
                profit: 3,
            },
            Item {
                weight: 3,
                profit: 4,
            },
        ];
        let sol = solve_brute_force(&items, 4);
        assert_eq!(sol.profit, 6);
        assert_eq!(sol.selected, vec![0, 2]);
    }
}
