//! Dual (covering) knapsack: minimise total weight subject to a profit target.
//!
//! §4.4 of the paper introduces the problem `K'(λ)`: *find `Γ ⊆ T₁` with
//! `Σ q_j ≥ p₁`, minimising `Σ d_j`*.  Lemma 2 shows that whenever the primal
//! approximation misses the feasibility window, an approximation of this dual
//! problem recovers a feasible `λ`-schedule.  We provide an exact dynamic
//! program over profit (pseudo-polynomial in the profit target, which in the
//! scheduling application is bounded by the number of processors `m`), plus a
//! brute-force oracle for testing.

use crate::{DpWorkspace, Item};

/// Result of a dual (minimum-weight covering) knapsack resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualSolution {
    /// Indices of the selected items, in increasing order.
    pub selected: Vec<usize>,
    /// Total profit of the selected items (≥ the target when feasible).
    pub profit: u64,
    /// Total weight of the selected items (the minimised objective).
    pub weight: u64,
}

impl DualSolution {
    fn from_indices(items: &[Item], mut selected: Vec<usize>) -> Self {
        selected.sort_unstable();
        selected.dedup();
        let profit = selected.iter().map(|&i| items[i].profit).sum();
        let weight = selected.iter().map(|&i| items[i].weight).sum();
        DualSolution {
            selected,
            profit,
            weight,
        }
    }
}

/// Exact minimum-weight covering knapsack.
///
/// Returns `None` when the profit target is unreachable even by selecting
/// every item; otherwise returns a selection of minimum total weight whose
/// profit is at least `target`.
///
/// Complexity `O(n · P)` where `P` is the total profit, capped at the target
/// (profits beyond the target are clamped, which preserves optimality for a
/// covering objective).
pub fn solve_dual_min_weight(items: &[Item], target: u64) -> Option<DualSolution> {
    solve_dual_min_weight_in(items, target, &mut DpWorkspace::new())
}

/// Same as [`solve_dual_min_weight`], reusing the DP tables of `workspace` so
/// that repeated resolutions stop allocating once the tables have reached
/// their steady-state size.
pub fn solve_dual_min_weight_in(
    items: &[Item],
    target: u64,
    workspace: &mut DpWorkspace,
) -> Option<DualSolution> {
    if target == 0 {
        return Some(DualSolution::from_indices(items, Vec::new()));
    }
    let total_profit: u64 = items.iter().map(|it| it.profit).sum();
    if total_profit < target {
        return None;
    }
    let bound = target as usize;
    const INFEASIBLE: u64 = u64::MAX;

    // min_w[p] = minimum weight achieving clamped profit exactly p,
    // where the clamped profit of a selection is min(Σ profit, target).
    let min_w = &mut workspace.min_weight;
    min_w.clear();
    min_w.resize(bound + 1, INFEASIBLE);
    min_w[0] = 0;
    let choice = &mut workspace.decisions;
    choice.clear();
    choice.resize(items.len() * (bound + 1), false);

    for (i, it) in items.iter().enumerate() {
        let row = &mut choice[i * (bound + 1)..(i + 1) * (bound + 1)];
        for p in (1..=bound).rev() {
            let from = p.saturating_sub(it.profit as usize);
            if min_w[from] == INFEASIBLE {
                continue;
            }
            let cand = min_w[from].saturating_add(it.weight);
            if cand < min_w[p] {
                min_w[p] = cand;
                row[p] = true;
            }
        }
    }

    if min_w[bound] == INFEASIBLE {
        return None;
    }

    // Backtrack from the target profit.
    let mut p = bound;
    let mut selected = Vec::new();
    for i in (0..items.len()).rev() {
        if p == 0 {
            break;
        }
        if choice[i * (bound + 1) + p] {
            selected.push(i);
            p = p.saturating_sub(items[i].profit as usize);
        }
    }
    Some(DualSolution::from_indices(items, selected))
}

/// Brute-force oracle for the dual problem (testing only).
pub fn solve_dual_brute_force(items: &[Item], target: u64) -> Option<DualSolution> {
    let n = items.len();
    debug_assert!(n <= 25, "brute-force dual knapsack called with {n} items");
    let mut best: Option<(u64, u64)> = None; // (weight, mask)
    for mask in 0u64..(1u64 << n) {
        let mut w = 0u64;
        let mut p = 0u64;
        for (i, it) in items.iter().enumerate() {
            if mask >> i & 1 == 1 {
                w += it.weight;
                p += it.profit;
            }
        }
        if p >= target && best.is_none_or(|(bw, _)| w < bw) {
            best = Some((w, mask));
        }
    }
    best.map(|(_, mask)| {
        let selected = (0..n).filter(|i| mask >> i & 1 == 1).collect();
        DualSolution::from_indices(items, selected)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn items(raw: &[(u64, u64)]) -> Vec<Item> {
        raw.iter()
            .map(|&(w, p)| Item {
                weight: w,
                profit: p,
            })
            .collect()
    }

    #[test]
    fn zero_target_selects_nothing() {
        let it = items(&[(5, 5)]);
        let sol = solve_dual_min_weight(&it, 0).unwrap();
        assert!(sol.selected.is_empty());
        assert_eq!(sol.weight, 0);
    }

    #[test]
    fn unreachable_target() {
        let it = items(&[(1, 2), (1, 3)]);
        assert!(solve_dual_min_weight(&it, 6).is_none());
        assert!(solve_dual_brute_force(&it, 6).is_none());
    }

    #[test]
    fn picks_cheapest_cover() {
        // Need profit >= 5: {0} has weight 10, {1,2} has weight 4.
        let it = items(&[(10, 5), (2, 3), (2, 2)]);
        let sol = solve_dual_min_weight(&it, 5).unwrap();
        assert_eq!(sol.weight, 4);
        assert_eq!(sol.selected, vec![1, 2]);
    }

    #[test]
    fn exact_cover_preferred_over_overshoot() {
        let it = items(&[(3, 4), (5, 10)]);
        let sol = solve_dual_min_weight(&it, 4).unwrap();
        assert_eq!(sol.weight, 3);
    }

    #[test]
    fn scheduling_shaped_target() {
        // Profits are canonical processor counts, weights are λ-processor counts.
        let it = items(&[(4, 2), (6, 3), (3, 2), (8, 5)]);
        let sol = solve_dual_min_weight(&it, 6).unwrap();
        let brute = solve_dual_brute_force(&it, 6).unwrap();
        assert_eq!(sol.weight, brute.weight);
        assert!(sol.profit >= 6);
    }

    proptest! {
        /// DP weight equals the brute-force optimum whenever feasible, and the
        /// profit constraint is always satisfied.
        #[test]
        fn matches_brute(
            raw in prop::collection::vec((0u64..12, 0u64..10), 0..10),
            target in 0u64..30,
        ) {
            let it = items(&raw);
            let dp = solve_dual_min_weight(&it, target);
            let brute = solve_dual_brute_force(&it, target);
            match (dp, brute) {
                (None, None) => {}
                (Some(d), Some(b)) => {
                    prop_assert_eq!(d.weight, b.weight);
                    prop_assert!(d.profit >= target);
                }
                (d, b) => prop_assert!(false, "feasibility mismatch: {:?} vs {:?}", d, b),
            }
        }
    }
}
