//! Exact pseudo-polynomial dynamic program over capacity.

use crate::{DpWorkspace, Item, Solution};

/// Solve a 0/1 knapsack instance exactly with the classical capacity DP.
///
/// Time `O(n·C)`, space `O(n·C)` bits for the decision table plus `O(C)` words
/// for the rolling profit row, where `n` is the number of items and `C` the
/// capacity.  This is the "pseudo-polynomial algorithm that solves it exactly
/// in time O(n·m)" referred to in §4.3 of the paper: in the scheduling
/// application the capacity is the number of processors `m`, so the DP is
/// perfectly affordable for any realistic machine size.
///
/// Items with weight larger than the capacity are never selected; items with
/// zero weight are always selected (they are free profit).
pub fn solve_exact(items: &[Item], capacity: u64) -> Solution {
    solve_exact_in(items, capacity, &mut DpWorkspace::new())
}

/// Same as [`solve_exact`], reusing the DP tables of `workspace` so that
/// repeated resolutions (one per oracle probe in the scheduling layer) stop
/// allocating once the tables have reached their steady-state size.
pub fn solve_exact_in(items: &[Item], capacity: u64, workspace: &mut DpWorkspace) -> Solution {
    let n = items.len();
    if n == 0 {
        return Solution::empty();
    }
    // Guard against absurd capacities: the caller (Strategy::Auto) is expected
    // to route huge capacities to the FPTAS, but keep a hard safety net by
    // clamping to the total weight (a capacity beyond the total weight is
    // equivalent to the total weight).
    let total_weight: u64 = items.iter().map(|it| it.weight).sum();
    let cap = capacity.min(total_weight) as usize;

    // best[c] = best profit achievable with capacity c using items 0..=i.
    let best = &mut workspace.best;
    best.clear();
    best.resize(cap + 1, 0u64);
    // take[i][c] = whether item i is taken in an optimal solution for capacity c.
    let take = &mut workspace.decisions;
    take.clear();
    take.resize(n * (cap + 1), false);

    for (i, it) in items.iter().enumerate() {
        let w = it.weight as usize;
        let row = &mut take[i * (cap + 1)..(i + 1) * (cap + 1)];
        if w > cap {
            continue;
        }
        // Iterate capacity downwards so that every item is used at most once.
        for c in (w..=cap).rev() {
            let candidate = best[c - w] + it.profit;
            if candidate > best[c] {
                best[c] = candidate;
                row[c] = true;
            }
        }
    }

    // Recover the selected set by walking the decision table backwards.
    let mut selected = Vec::new();
    let mut c = cap;
    for i in (0..n).rev() {
        if take[i * (cap + 1) + c] {
            selected.push(i);
            c -= items[i].weight as usize;
        }
    }
    selected.reverse();
    let mut sol = Solution::from_indices(items, selected);
    debug_assert_eq!(sol.profit, best[cap]);
    // Normalise: the DP never exceeds the true capacity.
    sol.weight = sol.weight.min(capacity);
    sol
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve_brute_force;
    use proptest::prelude::*;

    fn items(raw: &[(u64, u64)]) -> Vec<Item> {
        raw.iter()
            .map(|&(w, p)| Item {
                weight: w,
                profit: p,
            })
            .collect()
    }

    #[test]
    fn empty_instance() {
        let sol = solve_exact(&[], 10);
        assert_eq!(sol, Solution::empty());
    }

    #[test]
    fn workspace_reuse_matches_fresh_solve() {
        let mut ws = DpWorkspace::new();
        let instances: [(&[(u64, u64)], u64); 3] = [
            (&[(10, 60), (20, 100), (30, 120)], 50),
            (&[(3, 4), (4, 5), (2, 3)], 6),
            (&[(1, 1)], 0),
        ];
        for (raw, cap) in instances {
            let it = items(raw);
            assert_eq!(solve_exact_in(&it, cap, &mut ws), solve_exact(&it, cap));
        }
        // After a warm-up at the largest size, re-solving does not grow tables.
        let it = items(&[(10, 60), (20, 100), (30, 120)]);
        solve_exact_in(&it, 50, &mut ws);
        let sig = ws.capacity_signature();
        solve_exact_in(&it, 50, &mut ws);
        assert_eq!(ws.capacity_signature(), sig);
    }

    #[test]
    fn zero_capacity_selects_only_zero_weight() {
        let it = items(&[(0, 5), (1, 100)]);
        let sol = solve_exact(&it, 0);
        assert_eq!(sol.profit, 5);
        assert_eq!(sol.selected, vec![0]);
    }

    #[test]
    fn textbook_instance() {
        let it = items(&[(10, 60), (20, 100), (30, 120)]);
        let sol = solve_exact(&it, 50);
        assert_eq!(sol.profit, 220);
        assert_eq!(sol.selected, vec![1, 2]);
    }

    #[test]
    fn all_items_fit() {
        let it = items(&[(1, 1), (2, 2), (3, 3)]);
        let sol = solve_exact(&it, 100);
        assert_eq!(sol.profit, 6);
        assert_eq!(sol.selected, vec![0, 1, 2]);
    }

    #[test]
    fn item_heavier_than_capacity_is_skipped() {
        let it = items(&[(100, 1000), (2, 3)]);
        let sol = solve_exact(&it, 10);
        assert_eq!(sol.profit, 3);
        assert_eq!(sol.selected, vec![1]);
    }

    #[test]
    fn ties_are_resolved_consistently() {
        // Two identical items, capacity for one: profit must be that of one.
        let it = items(&[(5, 7), (5, 7)]);
        let sol = solve_exact(&it, 5);
        assert_eq!(sol.profit, 7);
        assert_eq!(sol.selected.len(), 1);
    }

    #[test]
    fn scheduling_shaped_instance() {
        // Weights/profits are small processor counts as in the paper's K(λ).
        let it = items(&[(3, 2), (4, 3), (2, 2), (6, 4), (1, 1)]);
        let brute = solve_brute_force(&it, 8);
        let dp = solve_exact(&it, 8);
        assert_eq!(dp.profit, brute.profit);
    }

    proptest! {
        /// The DP matches the brute-force optimum on small random instances.
        #[test]
        fn matches_brute_force(
            raw in prop::collection::vec((0u64..12, 0u64..20), 0..12),
            capacity in 0u64..40,
        ) {
            let it = items(&raw);
            let dp = solve_exact(&it, capacity);
            let brute = solve_brute_force(&it, capacity);
            prop_assert_eq!(dp.profit, brute.profit);
            prop_assert!(dp.is_consistent(&it, capacity));
        }

        /// The returned selection always respects the capacity.
        #[test]
        fn respects_capacity(
            raw in prop::collection::vec((0u64..50, 0u64..50), 0..30),
            capacity in 0u64..100,
        ) {
            let it = items(&raw);
            let dp = solve_exact(&it, capacity);
            let weight: u64 = dp.selected.iter().map(|&i| it[i].weight).sum();
            prop_assert!(weight <= capacity);
        }
    }
}
