//! Fully polynomial-time approximation scheme by profit scaling.

use crate::{Item, Solution};

/// Solve a 0/1 knapsack instance approximately with the classical FPTAS.
///
/// For any `ε > 0` the returned solution has profit at least `(1 − ε)` times
/// the optimum and never exceeds the capacity.  The algorithm scales profits
/// by `K = ε · P_max / n` and runs the minimum-weight-per-profit dynamic
/// program on the scaled instance, giving `O(n³/ε)` time — this is the
/// "fully approximable scheme" invoked in §4.4 of the paper (with the
/// reference to Papadimitriou's textbook) to keep the allotment selection
/// polynomial even when the number of processors is astronomically large.
///
/// `ε` values outside `(0, 1)` are clamped into that range; `ε → 0` degrades
/// gracefully to the exact profit DP.
pub fn solve_fptas(items: &[Item], capacity: u64, epsilon: f64) -> Solution {
    let n = items.len();
    if n == 0 {
        return Solution::empty();
    }
    let eps = if epsilon.is_finite() {
        epsilon.clamp(1e-9, 0.999_999)
    } else {
        0.5
    };

    // Only items that individually fit can ever be selected.
    let fitting: Vec<usize> = (0..n).filter(|&i| items[i].weight <= capacity).collect();
    if fitting.is_empty() {
        return Solution::empty();
    }
    let p_max = fitting.iter().map(|&i| items[i].profit).max().unwrap_or(0);
    if p_max == 0 {
        // All profits are zero: the empty solution is optimal.
        return Solution::empty();
    }

    // Scaling factor. Keep it at least 1 so the scaled profits do not explode.
    let k = (eps * p_max as f64 / fitting.len() as f64).max(1.0);
    let scaled: Vec<u64> = fitting
        .iter()
        .map(|&i| (items[i].profit as f64 / k).floor() as u64)
        .collect();

    min_weight_profit_dp(items, capacity, &fitting, &scaled)
}

/// Dynamic program over (scaled) profit: `min_w[p]` is the minimum weight
/// needed to collect scaled profit exactly `p`.  Returns the best real-profit
/// solution among all reachable scaled profits that fit in the capacity.
fn min_weight_profit_dp(
    items: &[Item],
    capacity: u64,
    fitting: &[usize],
    scaled: &[u64],
) -> Solution {
    let total_scaled: u64 = scaled.iter().sum();
    let bound = total_scaled as usize;
    const UNREACHABLE: u64 = u64::MAX;

    let mut min_w = vec![UNREACHABLE; bound + 1];
    min_w[0] = 0;
    // choice[i][p] = item fitting[i] taken to reach scaled profit p at step i.
    let mut choice = vec![false; fitting.len() * (bound + 1)];

    for (idx, (&orig, &sp)) in fitting.iter().zip(scaled.iter()).enumerate() {
        let w = items[orig].weight;
        let row = &mut choice[idx * (bound + 1)..(idx + 1) * (bound + 1)];
        for p in (sp as usize..=bound).rev() {
            let prev = min_w[p - sp as usize];
            if prev == UNREACHABLE {
                continue;
            }
            let cand = prev.saturating_add(w);
            if cand < min_w[p] {
                min_w[p] = cand;
                row[p] = true;
            }
        }
    }

    // Among reachable scaled profits that fit, pick the one whose *recovered
    // real* profit is maximal (recovering by backtracking).
    let mut best: Option<(u64, Vec<usize>)> = None;
    for (p, &weight) in min_w.iter().enumerate().take(bound + 1) {
        if weight > capacity {
            continue;
        }
        let sel = backtrack(&choice, fitting, scaled, bound, p);
        let real: u64 = sel.iter().map(|&i| items[i].profit).sum();
        if best.as_ref().is_none_or(|(bp, _)| real > *bp) {
            best = Some((real, sel));
        }
    }
    match best {
        Some((_, sel)) => Solution::from_indices(items, sel),
        None => Solution::empty(),
    }
}

fn backtrack(
    choice: &[bool],
    fitting: &[usize],
    scaled: &[u64],
    bound: usize,
    target: usize,
) -> Vec<usize> {
    let mut p = target;
    let mut selected = Vec::new();
    for idx in (0..fitting.len()).rev() {
        if choice[idx * (bound + 1) + p] {
            selected.push(fitting[idx]);
            p -= scaled[idx] as usize;
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_brute_force, solve_exact};
    use proptest::prelude::*;

    fn items(raw: &[(u64, u64)]) -> Vec<Item> {
        raw.iter()
            .map(|&(w, p)| Item {
                weight: w,
                profit: p,
            })
            .collect()
    }

    #[test]
    fn empty_instance() {
        assert_eq!(solve_fptas(&[], 10, 0.1), Solution::empty());
    }

    #[test]
    fn zero_profit_items() {
        let it = items(&[(1, 0), (2, 0)]);
        let sol = solve_fptas(&it, 10, 0.1);
        assert_eq!(sol.profit, 0);
    }

    #[test]
    fn nothing_fits() {
        let it = items(&[(10, 5), (12, 9)]);
        let sol = solve_fptas(&it, 5, 0.25);
        assert_eq!(sol, Solution::empty());
    }

    #[test]
    fn textbook_instance_small_eps_is_exact() {
        let it = items(&[(10, 60), (20, 100), (30, 120)]);
        let sol = solve_fptas(&it, 50, 0.001);
        assert_eq!(sol.profit, 220);
    }

    #[test]
    fn degenerate_epsilon_values_are_clamped() {
        let it = items(&[(2, 5), (3, 7)]);
        for eps in [f64::NAN, f64::INFINITY, -1.0, 0.0, 7.5] {
            let sol = solve_fptas(&it, 5, eps);
            assert!(sol.is_consistent(&it, 5));
            // Even with clamped eps the guarantee must hold for eps ≈ 1:
            // the best single item achieves at least (1-eps)*OPT = 0.
            assert!(sol.weight <= 5);
        }
    }

    proptest! {
        /// FPTAS profit is within (1-ε) of the exact optimum and feasible.
        #[test]
        fn within_guarantee(
            raw in prop::collection::vec((1u64..15, 1u64..30), 1..10),
            capacity in 1u64..50,
            eps in 0.05f64..0.5,
        ) {
            let it = items(&raw);
            let exact = solve_exact(&it, capacity);
            let approx = solve_fptas(&it, capacity, eps);
            prop_assert!(approx.is_consistent(&it, capacity));
            prop_assert!(
                approx.profit as f64 >= (1.0 - eps) * exact.profit as f64 - 1e-9,
                "approx {} vs exact {} at eps {}",
                approx.profit, exact.profit, eps
            );
        }

        /// With tiny ε the FPTAS is exact on small instances.
        #[test]
        fn tiny_eps_matches_brute(
            raw in prop::collection::vec((1u64..10, 1u64..10), 1..8),
            capacity in 1u64..30,
        ) {
            let it = items(&raw);
            let brute = solve_brute_force(&it, capacity);
            let approx = solve_fptas(&it, capacity, 1e-6);
            prop_assert_eq!(approx.profit, brute.profit);
        }
    }
}
