//! Item and solution types shared by every knapsack solver.

/// One item of a 0/1 knapsack instance.
///
/// In the allotment-selection problem of the paper, an item represents a task
/// of the set `T₁` (canonical execution time larger than `λ`): its weight is
/// `d_j`, the minimal number of processors executing the task in time at most
/// `λ·ω`, and its profit is `q_j`, its canonical number of processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Item {
    /// Capacity consumed when the item is selected.
    pub weight: u64,
    /// Value gained when the item is selected.
    pub profit: u64,
}

/// Result of a (primal) knapsack resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    /// Indices (into the input slice) of the selected items, in increasing order.
    pub selected: Vec<usize>,
    /// Total profit of the selected items.
    pub profit: u64,
    /// Total weight of the selected items.
    pub weight: u64,
}

impl Solution {
    /// The empty solution (nothing selected).
    pub fn empty() -> Self {
        Solution {
            selected: Vec::new(),
            profit: 0,
            weight: 0,
        }
    }

    /// Build a solution from item indices, recomputing totals from `items`.
    pub fn from_indices(items: &[Item], mut selected: Vec<usize>) -> Self {
        selected.sort_unstable();
        selected.dedup();
        let profit = selected.iter().map(|&i| items[i].profit).sum();
        let weight = selected.iter().map(|&i| items[i].weight).sum();
        Solution {
            selected,
            profit,
            weight,
        }
    }

    /// Check internal consistency against the originating item list.
    pub fn is_consistent(&self, items: &[Item], capacity: u64) -> bool {
        let profit: u64 = self.selected.iter().map(|&i| items[i].profit).sum();
        let weight: u64 = self.selected.iter().map(|&i| items[i].weight).sum();
        profit == self.profit && weight == self.weight && weight <= capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_computes_totals() {
        let items = vec![
            Item {
                weight: 2,
                profit: 3,
            },
            Item {
                weight: 5,
                profit: 7,
            },
            Item {
                weight: 1,
                profit: 1,
            },
        ];
        let sol = Solution::from_indices(&items, vec![2, 0]);
        assert_eq!(sol.selected, vec![0, 2]);
        assert_eq!(sol.profit, 4);
        assert_eq!(sol.weight, 3);
        assert!(sol.is_consistent(&items, 3));
        assert!(!sol.is_consistent(&items, 2));
    }

    #[test]
    fn from_indices_dedups() {
        let items = vec![Item {
            weight: 2,
            profit: 3,
        }];
        let sol = Solution::from_indices(&items, vec![0, 0]);
        assert_eq!(sol.selected, vec![0]);
        assert_eq!(sol.profit, 3);
    }

    #[test]
    fn empty_solution_is_consistent() {
        let items = vec![Item {
            weight: 9,
            profit: 9,
        }];
        assert!(Solution::empty().is_consistent(&items, 0));
    }
}
