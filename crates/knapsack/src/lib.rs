//! # knapsack
//!
//! 0/1 knapsack solvers used by the malleable-task scheduling algorithms of
//! Mounié, Rapine and Trystram (SPAA 1999).
//!
//! The allotment-selection phase of the two-shelf algorithm (§4 of the paper)
//! is formulated as a knapsack problem `K(λ)`: every "large" task `j` is an
//! item whose *weight* is the number of processors `d_j` it needs to finish
//! within the second shelf (length `λ·ω`) and whose *profit* is its canonical
//! number of processors `q_j`.  Selecting a maximum-profit subset that fits
//! in the free capacity of the second shelf frees enough processors in the
//! first shelf for the remaining tasks.
//!
//! The paper uses three flavours of resolution, all provided here:
//!
//! * [`solve_exact`] — the classical pseudo-polynomial dynamic program over
//!   capacity, `O(n·C)` time, exact.
//! * [`solve_fptas`] — the fully polynomial approximation scheme obtained by
//!   profit scaling, `(1−ε)`-approximate, `O(n³/ε)` time.
//! * [`solve_dual_min_weight`] — the *dual* knapsack `K'(λ)` of the paper:
//!   minimise total weight subject to reaching a profit target (a covering
//!   problem), solved by an exact DP over profit, plus a scaled variant.
//!
//! A brute-force solver ([`solve_brute_force`]) is provided for testing and
//! for very small instances.
//!
//! All solvers work on integer weights/profits (`u64`).  The scheduling layer
//! maps processor counts (small integers) onto these, so the exact DP is the
//! common path; the FPTAS exists both for completeness with the paper and for
//! instances where the capacity (number of processors `m`) is huge.

mod brute;
mod dual;
mod exact;
mod fptas;
mod item;

pub use brute::solve_brute_force;
pub use dual::{
    solve_dual_brute_force, solve_dual_min_weight, solve_dual_min_weight_in, DualSolution,
};
pub use exact::{solve_exact, solve_exact_in};
pub use fptas::solve_fptas;
pub use item::{Item, Solution};

/// Reusable DP tables for the exact and dual solvers.
///
/// The scheduling layer solves one knapsack (and sometimes one covering
/// knapsack) per oracle probe, and a dichotomic search performs dozens of
/// probes per solve.  Allocating the `O(n·C)` decision table afresh each time
/// dominates the solver cost on small machines; a `DpWorkspace` lets the
/// caller keep the tables alive across probes.  Buffers only ever grow, so
/// after a warm-up probe at the largest instance size the solvers stop
/// touching the allocator entirely (observable via [`capacity_signature`]).
///
/// [`capacity_signature`]: DpWorkspace::capacity_signature
#[derive(Debug, Clone, Default)]
pub struct DpWorkspace {
    /// Rolling best-profit row of the primal DP (`O(C)`).
    pub(crate) best: Vec<u64>,
    /// Minimum-weight row of the dual DP (`O(P)`).
    pub(crate) min_weight: Vec<u64>,
    /// Shared take/skip decision table (`O(n·C)` or `O(n·P)`); the primal and
    /// dual solvers never run concurrently on one workspace, so they share it.
    pub(crate) decisions: Vec<bool>,
}

impl DpWorkspace {
    /// An empty workspace; tables are sized lazily by the first resolution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of the capacities of all internal buffers.  Two equal signatures
    /// around a resolution prove the resolution performed no allocation.
    pub fn capacity_signature(&self) -> usize {
        self.best.capacity() + self.min_weight.capacity() + self.decisions.capacity()
    }
}

/// Strategy used to solve a knapsack instance.
///
/// The scheduling layer picks a strategy based on the instance size, mirroring
/// the discussion in §4.3–4.4 of the paper: the exact DP is pseudo-polynomial
/// (`O(n·m)`) and is preferred whenever the capacity is moderate; the FPTAS is
/// used when the capacity is so large that the DP becomes the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Always run the exact dynamic program.
    Exact,
    /// Always run the FPTAS with the given `ε > 0`.
    Fptas(f64),
    /// Run the exact DP when `n · capacity` is at most the given budget,
    /// otherwise fall back to the FPTAS with the given `ε`.
    Auto { dp_budget: u64, epsilon: f64 },
}

impl Default for Strategy {
    fn default() -> Self {
        Strategy::Auto {
            dp_budget: 50_000_000,
            epsilon: 0.05,
        }
    }
}

/// Solve a 0/1 knapsack instance with the given [`Strategy`].
///
/// Returns the selected item indices and the achieved profit.  The solution is
/// optimal when the exact path is taken and `(1−ε)`-optimal otherwise.
pub fn solve(items: &[Item], capacity: u64, strategy: Strategy) -> Solution {
    solve_in(items, capacity, strategy, &mut DpWorkspace::new())
}

/// Same as [`solve`], reusing the DP tables of `workspace` on the exact path.
/// (The FPTAS path still allocates; the scheduling layer never takes it, since
/// its capacities are processor counts.)
pub fn solve_in(
    items: &[Item],
    capacity: u64,
    strategy: Strategy,
    workspace: &mut DpWorkspace,
) -> Solution {
    match strategy {
        Strategy::Exact => solve_exact_in(items, capacity, workspace),
        Strategy::Fptas(eps) => solve_fptas(items, capacity, eps),
        Strategy::Auto { dp_budget, epsilon } => {
            let cost = (items.len() as u64).saturating_mul(capacity.saturating_add(1));
            if cost <= dp_budget {
                solve_exact_in(items, capacity, workspace)
            } else {
                solve_fptas(items, capacity, epsilon)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(raw: &[(u64, u64)]) -> Vec<Item> {
        raw.iter()
            .map(|&(w, p)| Item {
                weight: w,
                profit: p,
            })
            .collect()
    }

    #[test]
    fn strategy_auto_small_uses_exact() {
        let it = items(&[(3, 4), (4, 5), (2, 3)]);
        let sol = solve(&it, 6, Strategy::default());
        assert_eq!(sol.profit, 8);
    }

    #[test]
    fn strategy_fptas_close_to_exact() {
        let it = items(&[(10, 60), (20, 100), (30, 120)]);
        let exact = solve(&it, 50, Strategy::Exact);
        let approx = solve(&it, 50, Strategy::Fptas(0.1));
        assert!(approx.profit as f64 >= 0.9 * exact.profit as f64);
    }

    #[test]
    fn strategy_auto_huge_capacity_falls_back() {
        let it = items(&[(1_000_000_000, 5), (2_000_000_000, 9)]);
        let sol = solve(
            &it,
            2_500_000_000,
            Strategy::Auto {
                dp_budget: 1_000,
                epsilon: 0.01,
            },
        );
        assert_eq!(sol.profit, 9);
    }
}
