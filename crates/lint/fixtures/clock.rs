//! Fixture: `single-clock` — see `tests/fixtures.rs`.

pub fn elapsed_ns() -> u64 {
    let start = std::time::Instant::now();
    let _ = "Instant::now() in a string stays quiet";
    // Instant::now() in a comment stays quiet
    start.elapsed().as_nanos() as u64
}
