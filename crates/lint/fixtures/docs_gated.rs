//! Fixture: gated crate root — `missing-docs-gate` stays quiet.

#![warn(missing_docs)]
