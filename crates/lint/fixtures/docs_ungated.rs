//! Fixture: ungated crate root — `missing-docs-gate` fires at 1:1.
// The gate mentioned here — #![warn(missing_docs)] — is commented out.

pub struct Undocumented;
