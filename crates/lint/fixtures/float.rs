//! Fixture: `float-exact-compare` — see `tests/fixtures.rs`.

pub fn same_makespan(makespan: f64, target: f64) -> bool {
    makespan == target
}

pub fn not_one(ratio: f64) -> bool {
    ratio != 1.0
}

pub fn same_len(xs: &[f64], ys: &[f64]) -> bool {
    xs.len() == ys.len()
}

pub fn allowed(omega: f64) -> bool {
    omega == 0.0 // lint:allow(float-exact-compare)
}
