//! Fixture: `no-send-under-lock` — see `tests/fixtures.rs`.

pub fn hazardous(tx: &std::sync::mpsc::Sender<u64>, state: &std::sync::Mutex<u64>) {
    tx.send(*state.lock().expect("poisoned")).ok();
}

pub fn safe(tx: &std::sync::mpsc::Sender<u64>, state: &std::sync::Mutex<u64>) {
    let value = *state.lock().expect("poisoned");
    tx.send(value).ok();
}
