//! Fixture: `no-panic-in-engine` — see `tests/fixtures.rs`.

pub fn lookup(values: &[u32], index: usize) -> u32 {
    let first = values.first().unwrap();
    let second = values.get(index).expect("index in range");
    if *first > 10 {
        panic!("too big");
    }
    todo!()
}

pub fn planned() -> u32 {
    unimplemented!()
}

// a comment mentioning x.unwrap() must not fire
pub fn doc_mention() -> &'static str {
    "calling .unwrap() here would be wrong"
}

pub fn allowed(values: &[u32]) -> u32 {
    *values.first().unwrap() // lint:allow(no-panic-in-engine)
}

#[cfg(test)]
mod tests {
    pub fn in_tests(values: &[u32]) -> u32 {
        *values.first().unwrap()
    }
}
