//! Fixture: `scoped-threads-only` — see `tests/fixtures.rs`.

pub fn detached() {
    let handle = std::thread::spawn(|| {});
    handle.join().ok();
}

pub fn bracketed(xs: &mut [u64]) {
    std::thread::scope(|scope| {
        scope.spawn(|| xs.iter_mut().for_each(|x| *x += 1));
    });
}
