//! The recorded-baseline workflow: pre-existing debt is tracked, new
//! violations fail.
//!
//! `lint-baseline.json` records every violation present when the rule set
//! first ran (`first_recorded_total` preserves that initial count across
//! updates, so burn-down is measurable forever).  On later runs each
//! finding is matched against the baseline **multiset** keyed by
//! `(rule, path, snippet)` — line numbers drift as files are edited, but a
//! pre-existing `.unwrap()` keeps its text, so matching by trimmed snippet
//! keeps the baseline stable without pinning lines.  Findings beyond the
//! baseline are *new* and fail `--ci`; baseline entries that no longer
//! match are *fixed* and `--update-baseline` drops them.

use std::collections::HashMap;

use crate::Violation;
use serde_json::{json, Value};

/// One recorded baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Line recorded at capture time (informational; matching is by
    /// snippet).
    pub line: usize,
    /// Column recorded at capture time (informational).
    pub column: usize,
    /// Trimmed offending source line — the matching key.
    pub snippet: String,
}

/// The recorded baseline.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Total findings when the baseline was *first* recorded; preserved by
    /// updates so the burn-down is visible (`entries.len()` must only ever
    /// shrink relative to it).
    pub first_recorded_total: usize,
    /// The recorded entries.
    pub entries: Vec<BaselineEntry>,
}

/// The outcome of matching a run's findings against a baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineDiff {
    /// Findings covered by the baseline.
    pub baselined: Vec<Violation>,
    /// Findings not covered — the CI-failing set.
    pub new: Vec<Violation>,
    /// Baseline entries that no longer fire (fixed debt).
    pub fixed: Vec<BaselineEntry>,
}

fn key(rule: &str, path: &str, snippet: &str) -> (String, String, String) {
    (rule.to_string(), path.to_string(), snippet.to_string())
}

impl Baseline {
    /// Capture a fresh baseline from `violations`, preserving the
    /// first-recorded total of `previous` when one exists.
    pub fn capture(violations: &[Violation], previous: Option<&Baseline>) -> Baseline {
        let entries: Vec<BaselineEntry> = violations
            .iter()
            .map(|v| BaselineEntry {
                rule: v.rule.to_string(),
                path: v.path.clone(),
                line: v.line,
                column: v.column,
                snippet: v.snippet.clone(),
            })
            .collect();
        let first_recorded_total = previous
            .map(|b| b.first_recorded_total)
            .filter(|&n| n > 0)
            .unwrap_or(entries.len());
        Baseline {
            first_recorded_total,
            entries,
        }
    }

    /// Match `violations` against the baseline multiset.
    pub fn diff(&self, violations: &[Violation]) -> BaselineDiff {
        let mut budget: HashMap<(String, String, String), usize> = HashMap::new();
        for entry in &self.entries {
            *budget
                .entry(key(&entry.rule, &entry.path, &entry.snippet))
                .or_insert(0) += 1;
        }
        let mut diff = BaselineDiff::default();
        for violation in violations {
            let k = key(violation.rule, &violation.path, &violation.snippet);
            match budget.get_mut(&k) {
                Some(count) if *count > 0 => {
                    *count -= 1;
                    diff.baselined.push(violation.clone());
                }
                _ => diff.new.push(violation.clone()),
            }
        }
        // Whatever budget remains was recorded but no longer fires.
        for entry in &self.entries {
            let k = key(&entry.rule, &entry.path, &entry.snippet);
            if let Some(count) = budget.get_mut(&k) {
                if *count > 0 {
                    *count -= 1;
                    diff.fixed.push(entry.clone());
                }
            }
        }
        diff
    }

    /// Serialise to the committed JSON layout.
    pub fn to_json(&self) -> Value {
        let entries: Vec<Value> = self
            .entries
            .iter()
            .map(|e| {
                json!({
                    "rule": e.rule.as_str(),
                    "path": e.path.as_str(),
                    "line": e.line as u64,
                    "column": e.column as u64,
                    "snippet": e.snippet.as_str(),
                })
            })
            .collect();
        json!({
            "version": 1u64,
            "first_recorded_total": self.first_recorded_total as u64,
            "total": self.entries.len() as u64,
            "entries": Value::Array(entries),
        })
    }

    /// Parse the committed JSON layout.  Returns `None` on any shape
    /// mismatch (a corrupt baseline must fail loudly at the call site, not
    /// silently pass everything).
    pub fn from_json(value: &Value) -> Option<Baseline> {
        let first_recorded_total = value.get("first_recorded_total")?.as_u64()? as usize;
        let mut entries = Vec::new();
        for entry in value.get("entries")?.as_array()? {
            entries.push(BaselineEntry {
                rule: entry.get("rule")?.as_str()?.to_string(),
                path: entry.get("path")?.as_str()?.to_string(),
                line: entry.get("line")?.as_u64()? as usize,
                column: entry.get("column")?.as_u64()? as usize,
                snippet: entry.get("snippet")?.as_str()?.to_string(),
            });
        }
        Some(Baseline {
            first_recorded_total,
            entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &'static str, path: &str, snippet: &str) -> Violation {
        Violation {
            rule,
            path: path.to_string(),
            line: 1,
            column: 1,
            message: String::new(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn multiset_matching_handles_duplicates_and_drift() {
        let recorded = vec![
            violation("r", "a.rs", "x.unwrap();"),
            violation("r", "a.rs", "x.unwrap();"),
            violation("r", "b.rs", "y.unwrap();"),
        ];
        let baseline = Baseline::capture(&recorded, None);
        assert_eq!(baseline.first_recorded_total, 3);

        // One duplicate fixed, one survives (at a drifted line), one new
        // finding appears elsewhere.
        let mut survivor = violation("r", "a.rs", "x.unwrap();");
        survivor.line = 99;
        let now = vec![survivor, violation("r", "c.rs", "z.unwrap();")];
        let diff = baseline.diff(&now);
        assert_eq!(diff.baselined.len(), 1);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.new[0].path, "c.rs");
        assert_eq!(diff.fixed.len(), 2);
    }

    #[test]
    fn capture_preserves_first_recorded_total() {
        let recorded = vec![violation("r", "a.rs", "x.unwrap();")];
        let first = Baseline::capture(&recorded, None);
        let shrunk = Baseline::capture(&[], Some(&first));
        assert_eq!(shrunk.first_recorded_total, 1);
        assert!(shrunk.entries.is_empty());
    }

    #[test]
    fn json_round_trip() {
        let baseline = Baseline::capture(&[violation("r", "a.rs", "x.unwrap();")], None);
        let text = serde_json::to_string(&baseline.to_json()).unwrap();
        let parsed = Baseline::from_json(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(parsed.first_recorded_total, 1);
        assert_eq!(parsed.entries, baseline.entries);
    }
}
