//! A comment/string/raw-string-aware Rust lexer.
//!
//! Rules must never fire inside comments or literals — a doc sentence
//! mentioning `unwrap()` is not a panic site.  The lexer walks a file once
//! with a small state machine (nested `/* */` blocks, `//` comments, plain
//! and byte strings with escapes, raw strings `r#"…"#` with any number of
//! hashes, char literals vs lifetimes) and hands rules a per-line **masked
//! view**: [`LexedLine::code`] keeps only code characters (everything else
//! blanked to spaces, so character columns line up with the raw line), and
//! [`LexedLine::comment`] keeps only comment text, which is where
//! `lint:allow(<rule>)` suppressions live.
//!
//! Test regions are classified structurally: a top-level `#[cfg(test)]` or
//! `#[test]` attribute marks the item it precedes (brace-matched over the
//! masked code, so braces in strings cannot confuse it), and rules that
//! exempt test code skip those lines.

/// One lexed source line.
#[derive(Debug, Clone)]
pub struct LexedLine {
    /// The raw line (no trailing newline).
    pub raw: String,
    /// The line with every non-code character blanked to a space.
    /// Character indices match `raw`.
    pub code: String,
    /// The line with every non-comment character blanked to a space.
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
    /// Rules suppressed on this line via `// lint:allow(rule-a, rule-b)`.
    pub allows: Vec<String>,
}

/// A lexed source file, the unit rules operate on.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The crate directory name when the path is `crates/<name>/…`.
    pub crate_name: Option<String>,
    /// The lexed lines, in order.
    pub lines: Vec<LexedLine>,
}

/// Character classes assigned by the state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Code,
    Comment,
    Literal,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    BlockComment { depth: usize },
    Str { raw_hashes: Option<usize> },
    Char,
}

/// Lex `text` into per-line masked views.
pub fn lex(path: &str, text: &str) -> LexedFile {
    let chars: Vec<char> = text.chars().collect();
    let mut classes: Vec<Class> = vec![Class::Code; chars.len()];
    let mut state = State::Code;
    let mut i = 0usize;

    let at = |i: usize| chars.get(i).copied();
    while i < chars.len() {
        let c = chars[i];
        match state {
            State::Code => {
                if c == '/' && at(i + 1) == Some('/') {
                    state = State::LineComment;
                    classes[i] = Class::Comment;
                } else if c == '/' && at(i + 1) == Some('*') {
                    state = State::BlockComment { depth: 1 };
                    classes[i] = Class::Comment;
                    classes[i + 1] = Class::Comment;
                    i += 2;
                    continue;
                } else if let Some(consumed) = raw_string_prefix(&chars, i) {
                    // r"…", r#"…"#, br#"…"#: `consumed` covers the prefix
                    // through the opening quote; hashes = consumed minus
                    // prefix letters and the quote.
                    let hashes = chars[i..i + consumed].iter().filter(|&&p| p == '#').count();
                    for class in classes.iter_mut().skip(i).take(consumed) {
                        *class = Class::Literal;
                    }
                    state = State::Str {
                        raw_hashes: Some(hashes),
                    };
                    i += consumed;
                    continue;
                } else if c == '"' {
                    state = State::Str { raw_hashes: None };
                    classes[i] = Class::Literal;
                } else if c == 'b' && at(i + 1) == Some('"') && !prev_is_ident(&chars, i) {
                    classes[i] = Class::Literal;
                    classes[i + 1] = Class::Literal;
                    state = State::Str { raw_hashes: None };
                    i += 2;
                    continue;
                } else if c == '\'' {
                    // Char literal or lifetime?  `'x'`, `'\n'`, `b'x'` are
                    // literals; `'static` (ident not followed by a closing
                    // quote) is a lifetime and stays code.
                    let next = at(i + 1);
                    let is_literal = match next {
                        Some('\\') => true,
                        Some(n) if n != '\'' => at(i + 2) == Some('\''),
                        _ => false,
                    };
                    if is_literal {
                        classes[i] = Class::Literal;
                        state = State::Char;
                    }
                }
            }
            State::LineComment => {
                if c == '\n' {
                    state = State::Code;
                } else {
                    classes[i] = Class::Comment;
                }
            }
            State::BlockComment { depth } => {
                if c == '/' && at(i + 1) == Some('*') {
                    classes[i] = Class::Comment;
                    classes[i + 1] = Class::Comment;
                    state = State::BlockComment { depth: depth + 1 };
                    i += 2;
                    continue;
                } else if c == '*' && at(i + 1) == Some('/') {
                    classes[i] = Class::Comment;
                    classes[i + 1] = Class::Comment;
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment { depth: depth - 1 }
                    };
                    i += 2;
                    continue;
                } else if c != '\n' {
                    classes[i] = Class::Comment;
                }
            }
            State::Str { raw_hashes: None } => {
                classes[i] = Class::Literal;
                if c == '\\' {
                    if let Some(slot) = classes.get_mut(i + 1) {
                        *slot = Class::Literal;
                    }
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Code;
                }
            }
            State::Str {
                raw_hashes: Some(hashes),
            } => {
                classes[i] = Class::Literal;
                if c == '"'
                    && chars[i + 1..]
                        .iter()
                        .take(hashes)
                        .filter(|&&h| h == '#')
                        .count()
                        == hashes
                {
                    for class in classes.iter_mut().skip(i + 1).take(hashes) {
                        *class = Class::Literal;
                    }
                    state = State::Code;
                    i += 1 + hashes;
                    continue;
                }
            }
            State::Char => {
                classes[i] = Class::Literal;
                if c == '\\' {
                    if let Some(slot) = classes.get_mut(i + 1) {
                        *slot = Class::Literal;
                    }
                    i += 2;
                    continue;
                }
                if c == '\'' {
                    state = State::Code;
                }
            }
        }
        i += 1;
    }

    // Newlines always separate lines, whatever state they were scanned in.
    let mut lines = Vec::new();
    let mut raw = String::new();
    let mut code = String::new();
    let mut comment = String::new();
    for (index, &c) in chars.iter().enumerate() {
        if c == '\n' {
            lines.push(make_line(&raw, &code, &comment));
            raw.clear();
            code.clear();
            comment.clear();
            continue;
        }
        raw.push(c);
        code.push(if classes[index] == Class::Code {
            c
        } else {
            ' '
        });
        comment.push(if classes[index] == Class::Comment {
            c
        } else {
            ' '
        });
    }
    if !raw.is_empty() {
        lines.push(make_line(&raw, &code, &comment));
    }

    mark_test_regions(&mut lines);

    LexedFile {
        path: path.to_string(),
        crate_name: crate_of(path),
        lines,
    }
}

/// The crate directory name for paths of the form `crates/<name>/…`.
fn crate_of(path: &str) -> Option<String> {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().map(str::to_string)
    } else {
        None
    }
}

fn make_line(raw: &str, code: &str, comment: &str) -> LexedLine {
    LexedLine {
        raw: raw.to_string(),
        code: code.to_string(),
        comment: comment.to_string(),
        in_test: false,
        allows: parse_allows(comment),
    }
}

/// Rules named by `lint:allow(a, b)` groups inside a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push(rule.to_string());
            }
        }
        rest = &rest[close + 1..];
    }
    allows
}

/// Does a raw-string prefix (`r"`, `r#…#"`, `br"`, `br#…#"`) start at `i`?
/// Returns the number of characters through the opening quote.
fn raw_string_prefix(chars: &[char], i: usize) -> Option<usize> {
    if prev_is_ident(chars, i) {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(j + 1 - i)
    } else {
        None
    }
}

/// Whether the character before `i` continues an identifier — in that case
/// an `r` / `b` at `i` is the tail of a name, not a literal prefix.
fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_')
}

/// Mark the lines of every `#[cfg(test)]`- or `#[test]`-attributed item.
///
/// From each attribute, the item extends to the first top-level `;` or to
/// the close of the first `{ … }` block, brace-matched over the *masked*
/// code so literals cannot unbalance it.
fn mark_test_regions(lines: &mut [LexedLine]) {
    let starts: Vec<usize> = lines
        .iter()
        .enumerate()
        .filter(|(_, line)| {
            let squeezed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
            squeezed.contains("#[cfg(test)]")
                || squeezed.contains("#[cfg(all(test")
                || squeezed.contains("#[test]")
        })
        .map(|(index, _)| index)
        .collect();
    for start in starts {
        let mut depth = 0usize;
        let mut opened = false;
        'scan: for index in start..lines.len() {
            let code: Vec<char> = lines[index].code.chars().collect();
            for c in code {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            mark(lines, start, index);
                            break 'scan;
                        }
                    }
                    ';' if !opened => {
                        mark(lines, start, index);
                        break 'scan;
                    }
                    _ => {}
                }
            }
            if index == lines.len() - 1 {
                mark(lines, start, index);
            }
        }
    }
}

fn mark(lines: &mut [LexedLine], from: usize, to: usize) {
    for line in &mut lines[from..=to] {
        line.in_test = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(text: &str) -> Vec<String> {
        lex("crates/demo/src/lib.rs", text)
            .lines
            .iter()
            .map(|l| l.code.clone())
            .collect()
    }

    #[test]
    fn line_comments_are_masked() {
        let code = code_of("let x = 1; // x.unwrap()\nlet y = 2;");
        assert_eq!(code[0].trim_end(), "let x = 1;");
        assert!(!code[0].contains("unwrap"));
        assert_eq!(code[1], "let y = 2;");
    }

    #[test]
    fn nested_block_comments_are_masked() {
        let code = code_of("a /* one /* two */ still */ b");
        assert_eq!(code[0].chars().next(), Some('a'));
        assert_eq!(code[0].chars().last(), Some('b'));
        assert!(
            !code[0].contains("still"),
            "inner close must not end the comment"
        );
    }

    #[test]
    fn strings_and_escapes_are_masked() {
        let code = code_of(r#"let s = "a \" b"; t()"#);
        assert!(code[0].starts_with("let s ="));
        assert!(
            code[0].ends_with("; t()"),
            "escaped quote must not end the string: {:?}",
            code[0]
        );
        assert!(!code[0].contains('a') || !code[0].contains('b'));
    }

    #[test]
    fn raw_strings_span_lines_and_keep_hashes() {
        let text = "let s = r#\"line \"one\"\nunwrap()\"# ; done()";
        let code = code_of(text);
        assert_eq!(
            code[0].trim_end(),
            "let s =",
            "interior quote must not close r#\"…\"#"
        );
        assert!(!code[1].contains("unwrap"));
        assert!(code[1].ends_with("; done()"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        // The `r` of `var` continues an identifier, while a free `r"…"`
        // after a non-ident char opens a raw string.
        let code = code_of("let var = 1; let s = r\"text\"; var");
        assert!(code[0].starts_with("let var = 1; let s ="));
        assert!(!code[0].contains("text"));
        assert!(code[0].ends_with("; var"));
    }

    #[test]
    fn char_literals_mask_but_lifetimes_stay_code() {
        let code = code_of("let c = 'x'; fn f<'a>(v: &'a str) {}");
        assert!(!code[0].contains('x'));
        assert!(
            code[0].contains("<'a>"),
            "lifetimes must stay code: {:?}",
            code[0]
        );
        assert!(code[0].contains("&'a str"));
    }

    #[test]
    fn comment_channel_carries_allows() {
        let file = lex(
            "crates/demo/src/lib.rs",
            "x.unwrap(); // lint:allow(no-panic-in-engine, single-clock)\n",
        );
        assert_eq!(
            file.lines[0].allows,
            vec!["no-panic-in-engine".to_string(), "single-clock".to_string()]
        );
    }

    #[test]
    fn cfg_test_region_is_brace_matched() {
        let text = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let file = lex("crates/demo/src/lib.rs", text);
        let flags: Vec<bool> = file.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }
}
