//! Workspace-native static analysis for the malleable-scheduling workspace.
//!
//! `cargo clippy` sees Rust; it cannot see *this system's* invariants — the
//! code-level disciplines that the engine's guarantees (the paper's
//! dual-approximation bound, work conservation under re-allotment, the
//! deterministic sharded solves) actually rest on.  This crate is a small,
//! self-contained rule engine that can:
//!
//! * lex Rust source precisely enough to never fire inside `//` comments,
//!   `/* */` blocks (nested), string literals, raw strings (`r#"…"#`), byte
//!   strings, or char literals ([`lexer`]);
//! * run a registry of domain [`rules`] over every workspace source file and
//!   manifest;
//! * honor per-line `// lint:allow(<rule>)` suppressions;
//! * diff findings against a recorded [`baseline`] so pre-existing debt is
//!   tracked and burned down while **new** violations fail CI immediately;
//! * report as text or JSON, with telemetry-style counters ([`report`]).
//!
//! Run it as `cargo run -p lint -- check [--ci] [--json] [--baseline
//! lint-baseline.json] [--update-baseline]` from the workspace root.

#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;

use lexer::LexedFile;

/// Counter names recorded by a lint run, in the same `SCREAMING_SNAKE`
/// style as [`telemetry::names`] so the figures slot into the same
/// dashboards.
pub mod names {
    /// Rust source files scanned.
    pub const LINT_FILES: &str = "LINT_FILES";
    /// Manifests (`Cargo.toml`) scanned.
    pub const LINT_MANIFESTS: &str = "LINT_MANIFESTS";
    /// Source lines lexed.
    pub const LINT_LINES: &str = "LINT_LINES";
    /// Violations found (before suppression and baseline matching).
    pub const LINT_VIOLATIONS: &str = "LINT_VIOLATIONS";
    /// Violations silenced by an inline `lint:allow` suppression.
    pub const LINT_SUPPRESSED: &str = "LINT_SUPPRESSED";
    /// Violations matched by the recorded baseline.
    pub const LINT_BASELINED: &str = "LINT_BASELINED";
    /// Violations not covered by the baseline (the CI-failing set).
    pub const LINT_NEW: &str = "LINT_NEW";
    /// Baseline entries that no longer fire (burned-down debt).
    pub const LINT_FIXED: &str = "LINT_FIXED";
}

/// One finding of one rule at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the rule that fired (e.g. `no-panic-in-engine`).
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes) of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// 1-based character column of the offending token.
    pub column: usize,
    /// Human-readable description of the finding.
    pub message: String,
    /// The offending source line, trimmed — the baseline's matching key
    /// together with `rule` and `path`, so entries survive line drift.
    pub snippet: String,
}

/// A manifest (`Cargo.toml`) presented to manifest-level rules.
#[derive(Debug, Clone)]
pub struct ManifestFile {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// Raw manifest text.
    pub text: String,
}

/// A crate root (`src/lib.rs` / `src/main.rs` of a workspace member) that
/// the `missing-docs-gate` rule must find gated.
#[derive(Debug, Clone)]
pub struct CrateRoot {
    /// The crate's directory name under `crates/`.
    pub name: String,
    /// Workspace-relative path of the root source file.
    pub path: String,
}

/// Everything a lint run sees: lexed sources, manifests, and the crate
/// roots subject to the docs gate.  Rules receive the whole workspace so
/// cross-file rules (docs gate, vendor hygiene) need no side channels;
/// tests build tiny synthetic workspaces via [`Workspace::from_sources`].
#[derive(Debug, Default)]
pub struct Workspace {
    /// Lexed Rust sources.
    pub sources: Vec<LexedFile>,
    /// Workspace manifests.
    pub manifests: Vec<ManifestFile>,
    /// Crate roots subject to `missing-docs-gate`.
    pub crate_roots: Vec<CrateRoot>,
}

impl Workspace {
    /// Build a workspace from in-memory `(path, text)` sources — the unit-
    /// and property-test entry point.
    pub fn from_sources(sources: &[(&str, &str)]) -> Self {
        Workspace {
            sources: sources
                .iter()
                .map(|(path, text)| lexer::lex(path, text))
                .collect(),
            manifests: Vec::new(),
            crate_roots: Vec::new(),
        }
    }

    /// Run every rule in `rules` over the workspace, dropping findings the
    /// source suppressed with `// lint:allow(<rule>)` on the offending
    /// line.  Returns `(kept, suppressed_count)`.
    pub fn check(&self, rules: &[Box<dyn rules::Rule>]) -> (Vec<Violation>, usize) {
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for rule in rules {
            for violation in rule.check(self) {
                if self.is_suppressed(&violation) {
                    suppressed += 1;
                } else {
                    kept.push(violation);
                }
            }
        }
        kept.sort_by(|a, b| {
            (&a.path, a.line, a.column, a.rule).cmp(&(&b.path, b.line, b.column, b.rule))
        });
        (kept, suppressed)
    }

    fn is_suppressed(&self, violation: &Violation) -> bool {
        self.sources
            .iter()
            .find(|file| file.path == violation.path)
            .and_then(|file| file.lines.get(violation.line.saturating_sub(1)))
            .is_some_and(|line| line.allows.iter().any(|rule| rule == violation.rule))
    }
}
