//! The `lint` binary: `cargo run -p lint -- check [--ci] [--json]
//! [--baseline <path>] [--update-baseline] [--verbose]`.

#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use lint::baseline::Baseline;
use lint::report::Report;
use lint::{rules, walk};

struct Options {
    ci: bool,
    json: bool,
    verbose: bool,
    update_baseline: bool,
    baseline_path: PathBuf,
}

const USAGE: &str = "usage: lint <check|rules> [--ci] [--json] [--verbose] \
                     [--baseline <path>] [--update-baseline]";

fn parse_options(mut args: std::env::Args) -> Result<(String, Options), String> {
    let command = args.next().ok_or(USAGE.to_string())?;
    let mut options = Options {
        ci: false,
        json: false,
        verbose: false,
        update_baseline: false,
        baseline_path: PathBuf::from("lint-baseline.json"),
    };
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--ci" => options.ci = true,
            "--json" => options.json = true,
            "--verbose" => options.verbose = true,
            "--update-baseline" => options.update_baseline = true,
            "--baseline" => {
                options.baseline_path =
                    PathBuf::from(args.next().ok_or("--baseline needs a path")?);
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok((command, options))
}

fn run_check(options: &Options) -> Result<ExitCode, String> {
    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = walk::find_root(&cwd)
        .ok_or("could not find the workspace root (Cargo.toml + crates/) above the cwd")?;
    let ws = walk::load(&root).map_err(|e| format!("walking {}: {e}", root.display()))?;

    let (violations, suppressed) = ws.check(&rules::registry());

    let baseline_path = if options.baseline_path.is_absolute() {
        options.baseline_path.clone()
    } else {
        root.join(&options.baseline_path)
    };
    let previous = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => {
            let value = serde_json::from_str(&text)
                .map_err(|e| format!("parsing {}: {e:?}", baseline_path.display()))?;
            Some(
                Baseline::from_json(&value)
                    .ok_or_else(|| format!("{} is not a lint baseline", baseline_path.display()))?,
            )
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    if options.ci && previous.is_none() && !options.update_baseline {
        return Err(format!(
            "--ci requires a recorded baseline at {} (run `cargo run -p lint -- check \
             --update-baseline` and commit it)",
            baseline_path.display()
        ));
    }

    let diff = previous
        .as_ref()
        .unwrap_or(&Baseline::default())
        .diff(&violations);
    let report = Report {
        files: ws.sources.len(),
        manifests: ws.manifests.len(),
        lines: ws.sources.iter().map(|f| f.lines.len()).sum(),
        suppressed,
        diff,
    };

    if options.update_baseline {
        let captured = Baseline::capture(&violations, previous.as_ref());
        let text = serde_json::to_string_pretty(&captured.to_json())
            .map_err(|e| format!("serialising baseline: {e:?}"))?;
        std::fs::write(&baseline_path, text + "\n")
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "lint: baseline updated at {} ({} entries, first recorded {})",
            baseline_path.display(),
            captured.entries.len(),
            captured.first_recorded_total
        );
    }

    if options.json {
        let text = serde_json::to_string_pretty(&report.render_json())
            .map_err(|e| format!("serialising report: {e:?}"))?;
        println!("{text}");
    } else {
        print!("{}", report.render_text(options.verbose));
    }

    if !options.update_baseline && !report.diff.new.is_empty() {
        Ok(ExitCode::FAILURE)
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

fn run_rules() -> ExitCode {
    for rule in rules::registry() {
        println!("{:<22} {}", rule.name(), rule.description());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _binary = args.next();
    let parsed = match parse_options(args) {
        Ok(parsed) => parsed,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match parsed.0.as_str() {
        "check" => match run_check(&parsed.1) {
            Ok(code) => code,
            Err(message) => {
                eprintln!("lint: {message}");
                ExitCode::FAILURE
            }
        },
        "rules" => run_rules(),
        other => {
            eprintln!("unknown command `{other}`\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
