//! Text and JSON rendering of a lint run, with telemetry-style counters.

use std::fmt::Write as _;

use crate::baseline::BaselineDiff;
use crate::names;
use serde_json::{json, Value};
use telemetry::{CollectingRecorder, Recorder};

/// Everything one `lint check` run produced, ready to render.
#[derive(Debug)]
pub struct Report {
    /// Source files scanned.
    pub files: usize,
    /// Manifests scanned.
    pub manifests: usize,
    /// Total source lines lexed.
    pub lines: usize,
    /// Findings silenced by inline `lint:allow` suppressions.
    pub suppressed: usize,
    /// The baseline diff (all kept findings, partitioned).
    pub diff: BaselineDiff,
}

impl Report {
    /// Total kept findings (baselined + new).
    pub fn total(&self) -> usize {
        self.diff.baselined.len() + self.diff.new.len()
    }

    /// Record this run's counters on a telemetry recorder, mirroring the
    /// engine's counter discipline so lint figures land in the same
    /// dashboards.
    pub fn record(&self, recorder: &CollectingRecorder) {
        recorder.add(names::LINT_FILES, self.files as u64);
        recorder.add(names::LINT_MANIFESTS, self.manifests as u64);
        recorder.add(names::LINT_LINES, self.lines as u64);
        recorder.add(names::LINT_VIOLATIONS, self.total() as u64);
        recorder.add(names::LINT_SUPPRESSED, self.suppressed as u64);
        recorder.add(names::LINT_BASELINED, self.diff.baselined.len() as u64);
        recorder.add(names::LINT_NEW, self.diff.new.len() as u64);
        recorder.add(names::LINT_FIXED, self.diff.fixed.len() as u64);
    }

    /// Human-readable report text.
    pub fn render_text(&self, verbose: bool) -> String {
        let mut out = String::new();
        for violation in &self.diff.new {
            let _ = writeln!(
                out,
                "error[{}]: {}\n  --> {}:{}:{}\n   | {}",
                violation.rule,
                violation.message,
                violation.path,
                violation.line,
                violation.column,
                violation.snippet
            );
        }
        if verbose {
            for violation in &self.diff.baselined {
                let _ = writeln!(
                    out,
                    "baselined[{}]: {}:{}:{} {}",
                    violation.rule,
                    violation.path,
                    violation.line,
                    violation.column,
                    violation.snippet
                );
            }
        }
        for entry in &self.diff.fixed {
            let _ = writeln!(
                out,
                "fixed[{}]: {} no longer fires ({}) — run with --update-baseline to drop it",
                entry.rule, entry.path, entry.snippet
            );
        }
        let _ = writeln!(
            out,
            "lint: {} files, {} manifests, {} lines; {} findings \
             ({} baselined, {} new, {} suppressed, {} fixed)",
            self.files,
            self.manifests,
            self.lines,
            self.total(),
            self.diff.baselined.len(),
            self.diff.new.len(),
            self.suppressed,
            self.diff.fixed.len()
        );
        out
    }

    /// Machine-readable JSON for the CI artifact.
    pub fn render_json(&self) -> Value {
        let recorder = CollectingRecorder::new();
        self.record(&recorder);
        let counters: Vec<Value> = recorder
            .counters()
            .into_iter()
            .map(|(name, value)| {
                json!({
                    "name": name.as_str(),
                    "value": value,
                })
            })
            .collect();
        let violation_json = |v: &crate::Violation| {
            json!({
                "rule": v.rule,
                "path": v.path.as_str(),
                "line": v.line as u64,
                "column": v.column as u64,
                "message": v.message.as_str(),
                "snippet": v.snippet.as_str(),
            })
        };
        let new: Vec<Value> = self.diff.new.iter().map(violation_json).collect();
        let baselined: Vec<Value> = self.diff.baselined.iter().map(violation_json).collect();
        let fixed: Vec<Value> = self
            .diff
            .fixed
            .iter()
            .map(|e| {
                json!({
                    "rule": e.rule.as_str(),
                    "path": e.path.as_str(),
                    "snippet": e.snippet.as_str(),
                })
            })
            .collect();
        json!({
            "new": Value::Array(new),
            "baselined": Value::Array(baselined),
            "fixed": Value::Array(fixed),
            "counters": Value::Array(counters),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Violation;

    fn report() -> Report {
        Report {
            files: 2,
            manifests: 1,
            lines: 100,
            suppressed: 1,
            diff: BaselineDiff {
                baselined: vec![],
                new: vec![Violation {
                    rule: "no-panic-in-engine",
                    path: "crates/online/src/engine.rs".to_string(),
                    line: 7,
                    column: 9,
                    message: "call to .unwrap()".to_string(),
                    snippet: "x.unwrap();".to_string(),
                }],
                fixed: vec![],
            },
        }
    }

    #[test]
    fn text_report_names_the_finding() {
        let text = report().render_text(false);
        assert!(text.contains("error[no-panic-in-engine]"));
        assert!(text.contains("crates/online/src/engine.rs:7:9"));
        assert!(text.contains("1 new"));
    }

    #[test]
    fn counters_follow_the_telemetry_discipline() {
        let recorder = CollectingRecorder::new();
        report().record(&recorder);
        assert_eq!(recorder.counter(names::LINT_FILES), 2);
        assert_eq!(recorder.counter(names::LINT_NEW), 1);
        assert_eq!(recorder.counter(names::LINT_SUPPRESSED), 1);
    }

    #[test]
    fn json_report_has_the_failing_set() {
        let value = report().render_json();
        let new = value.get("new").and_then(|v| v.as_array()).unwrap();
        assert_eq!(new.len(), 1);
        assert_eq!(
            new[0].get("rule").and_then(|v| v.as_str()),
            Some("no-panic-in-engine")
        );
    }
}
