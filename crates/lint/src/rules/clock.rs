//! `single-clock`: all wall time flows through `telemetry::SpanTimer`.
//!
//! Decision-latency percentiles, solve spans, bench figures and the dual
//! search's time budget are only comparable because they come from one
//! monotonic clock behind one type.  A stray `Instant::now()` reintroduces
//! ad-hoc timing that silently drifts from the telemetry pipeline, so the
//! only permitted call site is `SpanTimer::start` itself
//! (`crates/telemetry/src/clock.rs`).  A `clippy.toml`
//! `disallowed-methods` entry mirrors this rule as defense in depth.

use super::{path_positions, violation, Rule};
use crate::{Violation, Workspace};

/// See the module docs.
pub struct SingleClock;

/// The one file allowed to touch the raw clock.
const EXEMPT: &[&str] = &["crates/telemetry/src/clock.rs"];

impl Rule for SingleClock {
    fn name(&self) -> &'static str {
        "single-clock"
    }

    fn description(&self) -> &'static str {
        "no Instant::now() outside telemetry::SpanTimer — one monotonic clock"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.sources {
            if EXEMPT.contains(&file.path.as_str()) {
                continue;
            }
            for (line0, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for col0 in path_positions(&line.code, &["Instant", "now"]) {
                    out.push(violation(
                        self.name(),
                        &file.path,
                        &line.raw,
                        line0,
                        col0,
                        "Instant::now() outside telemetry::SpanTimer; start a SpanTimer \
                         so the span shares the workspace clock"
                            .to_string(),
                    ));
                }
            }
        }
        out
    }
}
