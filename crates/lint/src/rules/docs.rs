//! `missing-docs-gate`: every crate root opts into `#![warn(missing_docs)]`.
//!
//! The workspace's documented-API discipline is only durable if each crate
//! root carries the gate — CI denies warnings, so the attribute is what
//! turns "please document" into "does not merge undocumented".  This rule
//! checks the root source file of every `crates/*` member for
//! `#![warn(missing_docs)]` (or `deny`); the vendored stand-ins under
//! `vendor/` mirror external crates and are exempt.

use super::{violation, Rule};
use crate::{Violation, Workspace};

/// See the module docs.
pub struct MissingDocsGate;

impl Rule for MissingDocsGate {
    fn name(&self) -> &'static str {
        "missing-docs-gate"
    }

    fn description(&self) -> &'static str {
        "every crate root carries #![warn(missing_docs)]"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for root in &ws.crate_roots {
            let Some(file) = ws.sources.iter().find(|f| f.path == root.path) else {
                continue;
            };
            let gated = file.lines.iter().any(|line| {
                let squeezed: String = line.code.chars().filter(|c| !c.is_whitespace()).collect();
                squeezed.contains("#![warn(missing_docs)]")
                    || squeezed.contains("#![deny(missing_docs)]")
            });
            if !gated {
                let raw = file.lines.first().map(|l| l.raw.as_str()).unwrap_or("");
                out.push(violation(
                    self.name(),
                    &file.path,
                    raw,
                    0,
                    0,
                    format!(
                        "crate `{}` root lacks #![warn(missing_docs)]; add the gate (and \
                         docs) so the CI doc gate covers it",
                        root.name
                    ),
                ));
            }
        }
        out
    }
}
