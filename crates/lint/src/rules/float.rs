//! `float-exact-compare`: no `==`/`!=` on floating-point scheduling
//! quantities.
//!
//! Makespans, allotment times, speeds and work fractions are all `f64`s
//! produced by chains of rounding operations; bit-exact comparison on them
//! is how work-conservation checks and epoch tie-breaks silently diverge
//! between solvers.  The EPS helpers (`malleable_core::eps`) make the
//! tolerance explicit and reviewable.
//!
//! Lexical heuristic: an `==`/`!=` fires when either operand *looks like* a
//! floating scheduling quantity — it contains a float literal (`1.0`,
//! `1e-9`, `f64::…`), or an identifier whose `_`-separated segments include
//! a known quantity name (`makespan`, `omega`, `speed`, `work`, …).
//! Intentionally bit-exact comparisons (dedup of breakpoint arrays,
//! deterministic tie-breaks) either live in the recorded baseline or carry
//! an explicit `// lint:allow(float-exact-compare)` with a justification.

use super::{violation, Rule};
use crate::{Violation, Workspace};

/// See the module docs.
pub struct FloatExactCompare;

/// Identifier segments that name floating scheduling quantities in this
/// workspace.
const QUANTITY_NAMES: &[&str] = &[
    "makespan",
    "omega",
    "lambda",
    "speed",
    "speeds",
    "deadline",
    "departs",
    "ratio",
    "utilization",
    "capacity",
    "fraction",
    "integral",
    "horizon",
    "flow",
    "work",
    "times",
    "busy",
    "goodput",
    "wall",
];

/// Characters that may appear inside a comparison operand expression.
fn is_operand_char(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '.' | '[' | ']' | '(' | ')' | ':' | '-' | '+')
}

/// The operand substring to the left of the operator at `op` (0-based).
fn left_operand(chars: &[char], op: usize) -> String {
    let mut end = op;
    while end > 0 && chars[end - 1].is_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && is_operand_char(chars[start - 1]) {
        start -= 1;
    }
    chars[start..end].iter().collect()
}

/// The operand substring to the right of the operator ending at `after`.
fn right_operand(chars: &[char], after: usize) -> String {
    let mut start = after;
    while start < chars.len() && chars[start].is_whitespace() {
        start += 1;
    }
    let mut end = start;
    while end < chars.len() && is_operand_char(chars[end]) {
        end += 1;
    }
    chars[start..end].iter().collect()
}

/// Does the operand contain a float literal (`1.5`, `1e-9`, `f64::…`)?
fn has_float_literal(operand: &str) -> bool {
    let chars: Vec<char> = operand.chars().collect();
    for i in 0..chars.len() {
        if chars[i] == '.'
            && i > 0
            && chars[i - 1].is_ascii_digit()
            && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
        {
            return true;
        }
        if (chars[i] == 'e' || chars[i] == 'E') && i > 0 && chars[i - 1].is_ascii_digit() {
            let mut j = i + 1;
            if matches!(chars.get(j), Some('+') | Some('-')) {
                j += 1;
            }
            if chars.get(j).is_some_and(|c| c.is_ascii_digit()) {
                return true;
            }
        }
    }
    operand.contains("f64::") || operand.contains("f32::")
}

/// Does the operand mention a known floating scheduling quantity?
fn has_quantity_name(operand: &str) -> bool {
    operand
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .flat_map(|token| token.split('_'))
        .any(|segment| QUANTITY_NAMES.contains(&segment))
}

fn looks_float(operand: &str) -> bool {
    // `.len()` / `.count()` chains yield integers regardless of what the
    // receiver is called (`times().len()` compares lengths, not times).
    if operand.ends_with(".len()") || operand.ends_with(".count()") {
        return false;
    }
    has_float_literal(operand) || has_quantity_name(operand)
}

/// 0-based positions of bare `==` / `!=` operators in `code` (compound
/// operators like `<=`, `>=`, `+=` and pattern arms like `=>` excluded).
fn comparison_positions(code: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < chars.len() {
        let pair = (chars[i], chars[i + 1]);
        if (pair == ('=', '=') || pair == ('!', '='))
            && chars.get(i + 2) != Some(&'=')
            && (i == 0
                || !matches!(
                    chars[i - 1],
                    '<' | '>' | '=' | '!' | '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                ))
        {
            out.push(i);
            i += 2;
            continue;
        }
        i += 1;
    }
    out
}

impl Rule for FloatExactCompare {
    fn name(&self) -> &'static str {
        "float-exact-compare"
    }

    fn description(&self) -> &'static str {
        "no ==/!= on floating scheduling quantities — use the malleable_core::eps helpers"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.sources {
            for (line0, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let chars: Vec<char> = line.code.chars().collect();
                for op in comparison_positions(&line.code) {
                    let left = left_operand(&chars, op);
                    let right = right_operand(&chars, op + 2);
                    if looks_float(&left) || looks_float(&right) {
                        out.push(violation(
                            self.name(),
                            &file.path,
                            &line.raw,
                            line0,
                            op,
                            format!(
                                "exact {}{} on a floating scheduling quantity \
                                 (`{left}` vs `{right}`); compare through \
                                 malleable_core::eps (approx_eq / approx_ne)",
                                chars[op],
                                chars[op + 1]
                            ),
                        ));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literals_and_names_look_float() {
        assert!(has_float_literal("1.5"));
        assert!(has_float_literal("x*1e-9"));
        assert!(has_float_literal("f64::INFINITY"));
        assert!(!has_float_literal("v[0].1"));
        assert!(!has_float_literal("10"));
        assert!(has_quantity_name("self.makespan"));
        assert!(has_quantity_name("total_work"));
        assert!(!has_quantity_name("worker"));
        assert!(!has_quantity_name("index"));
    }

    #[test]
    fn length_chains_are_integers() {
        assert!(!looks_float("times().len()"));
        assert!(!looks_float("self.times.len()"));
        assert!(!looks_float("speeds.iter().count()"));
        assert!(looks_float("self.times[id]"));
    }

    #[test]
    fn compound_operators_do_not_count() {
        assert!(comparison_positions("a <= b").is_empty());
        assert!(comparison_positions("a >= b").is_empty());
        assert!(comparison_positions("a += 1.0").is_empty());
        assert_eq!(comparison_positions("a == b"), vec![2]);
        assert_eq!(comparison_positions("a != b"), vec![2]);
    }
}
