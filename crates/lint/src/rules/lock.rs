//! `no-send-under-lock`: never send on a channel while holding a lock.
//!
//! The shard coordinator's deadlock-freedom argument assumes a strict
//! lock → release → send order: a bounded channel's `send` can block, and
//! blocking while a `Mutex` guard is live inverts the coordinator's
//! acquisition order the moment the receiver needs that same lock to make
//! progress.  The lexical approximation of "holding a guard" is a `.send(…)`
//! on a line that also takes a `.lock(…)` — the temporary guard lives to the
//! end of the statement, which is exactly the hazardous shape
//! (`state.lock().unwrap().queue.send(x)`).

use super::{method_call_positions, violation, Rule};
use crate::{Violation, Workspace};

/// See the module docs.
pub struct NoSendUnderLock;

impl Rule for NoSendUnderLock {
    fn name(&self) -> &'static str {
        "no-send-under-lock"
    }

    fn description(&self) -> &'static str {
        "no channel send on a line holding a .lock() guard — deadlock risk"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.sources {
            for (line0, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                if method_call_positions(&line.code, "lock").is_empty() {
                    continue;
                }
                for col0 in method_call_positions(&line.code, "send") {
                    out.push(violation(
                        self.name(),
                        &file.path,
                        &line.raw,
                        line0,
                        col0,
                        "channel send on a line that takes a .lock() guard; bind and drop \
                         the guard before sending"
                            .to_string(),
                    ));
                }
            }
        }
        out
    }
}
