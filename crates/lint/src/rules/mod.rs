//! The rule registry and the shared token-scanning helpers.
//!
//! A [`Rule`] sees the whole [`Workspace`] (lexed sources + manifests +
//! crate roots) and returns [`Violation`]s.  All scanning happens on the
//! lexer's masked code channel, so comments and literals can never fire a
//! rule; columns are 1-based character positions in the raw line.

mod clock;
mod docs;
mod float;
mod lock;
mod panic;
mod threads;
mod vendor;

pub use clock::SingleClock;
pub use docs::MissingDocsGate;
pub use float::FloatExactCompare;
pub use lock::NoSendUnderLock;
pub use panic::NoPanicInEngine;
pub use threads::ScopedThreadsOnly;
pub use vendor::VendorHygiene;

use crate::{Violation, Workspace};

/// A named static-analysis rule.
pub trait Rule {
    /// The rule's registry name, as used in `lint:allow(<name>)` and
    /// baseline entries.
    fn name(&self) -> &'static str;
    /// One-line description for `lint rules` and reports.
    fn description(&self) -> &'static str;
    /// Scan the workspace and return every finding.
    fn check(&self, ws: &Workspace) -> Vec<Violation>;
}

/// The shipped rule set, in reporting order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicInEngine),
        Box::new(SingleClock),
        Box::new(FloatExactCompare),
        Box::new(ScopedThreadsOnly),
        Box::new(NoSendUnderLock),
        Box::new(MissingDocsGate),
        Box::new(VendorHygiene),
    ]
}

/// The crates whose `src/` trees carry the engine's correctness guarantees
/// and therefore must stay panic-free outside tests.
pub const ENGINE_CRATES: &[&str] = &["online", "packing", "solver", "hetero", "malleable-core"];

/// Whether `path` is non-test library source of one of `crates`
/// (`crates/<name>/src/…`).
pub(crate) fn in_crate_src(path: &str, crates: &[&str]) -> bool {
    crates
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

/// Is the character part of an identifier?
pub(crate) fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// 0-based character positions where `name` occurs as a whole identifier in
/// `code`.
pub(crate) fn ident_positions(code: &str, name: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    let pattern: Vec<char> = name.chars().collect();
    let mut positions = Vec::new();
    if pattern.is_empty() || chars.len() < pattern.len() {
        return positions;
    }
    for start in 0..=chars.len() - pattern.len() {
        if chars[start..start + pattern.len()] != pattern[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident(chars[start - 1]);
        let after = start + pattern.len();
        let after_ok = after >= chars.len() || !is_ident(chars[after]);
        if before_ok && after_ok {
            positions.push(start);
        }
    }
    positions
}

/// The first non-whitespace character at or after `from`, with its position.
pub(crate) fn next_non_ws(chars: &[char], from: usize) -> Option<(usize, char)> {
    (from..chars.len())
        .find(|&i| !chars[i].is_whitespace())
        .map(|i| (i, chars[i]))
}

/// The last non-whitespace character strictly before `before`, with its
/// position.
pub(crate) fn prev_non_ws(chars: &[char], before: usize) -> Option<(usize, char)> {
    (0..before).rev().find_map(|i| {
        if chars[i].is_whitespace() {
            None
        } else {
            Some((i, chars[i]))
        }
    })
}

/// 0-based positions where `.name(` occurs as a method call in `code`.
pub(crate) fn method_call_positions(code: &str, name: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    ident_positions(code, name)
        .into_iter()
        .filter(|&p| {
            matches!(prev_non_ws(&chars, p), Some((_, '.')))
                && matches!(
                    next_non_ws(&chars, p + name.chars().count()),
                    Some((_, '('))
                )
        })
        .collect()
}

/// 0-based positions where `name!` occurs as a macro invocation in `code`.
pub(crate) fn macro_positions(code: &str, name: &str) -> Vec<usize> {
    let chars: Vec<char> = code.chars().collect();
    ident_positions(code, name)
        .into_iter()
        .filter(|&p| {
            matches!(
                next_non_ws(&chars, p + name.chars().count()),
                Some((_, '!'))
            )
        })
        .collect()
}

/// 0-based positions where the `::`-joined `segments` path occurs in `code`
/// (e.g. `["Instant", "now"]` matches `Instant::now` and
/// `std::time::Instant::now`).
pub(crate) fn path_positions(code: &str, segments: &[&str]) -> Vec<usize> {
    let needle = segments.join("::");
    let chars: Vec<char> = code.chars().collect();
    let pattern: Vec<char> = needle.chars().collect();
    let mut positions = Vec::new();
    if chars.len() < pattern.len() {
        return positions;
    }
    for start in 0..=chars.len() - pattern.len() {
        if chars[start..start + pattern.len()] != pattern[..] {
            continue;
        }
        let before_ok = start == 0 || !is_ident(chars[start - 1]);
        let after = start + pattern.len();
        let after_ok = after >= chars.len() || !is_ident(chars[after]);
        if before_ok && after_ok {
            positions.push(start);
        }
    }
    positions
}

/// Build a [`Violation`] for `file` at a 0-based `(line, column)` pair.
pub(crate) fn violation(
    rule: &'static str,
    path: &str,
    raw_line: &str,
    line0: usize,
    col0: usize,
    message: String,
) -> Violation {
    Violation {
        rule,
        path: path.to_string(),
        line: line0 + 1,
        column: col0 + 1,
        message,
        snippet: raw_line.trim().to_string(),
    }
}
