//! `no-panic-in-engine`: the crates carrying the scheduler's guarantees
//! must not panic on library paths.
//!
//! The engine's contracts — the dual-approximation bound, work conservation
//! under re-allotment, deterministic sharded solves — are only worth
//! stating if a malformed input or a rejected timeline operation surfaces
//! as a typed error (`malleable_core::Error`, `ReservationError`) instead
//! of tearing the process down mid-run.  This rule flags `.unwrap()`,
//! `.expect(…)`, `panic!`, `todo!` and `unimplemented!` in the non-test
//! `src/` trees of the engine crates.  `assert!`/`unreachable!` are left to
//! reviewers: they document impossibilities rather than shortcut error
//! handling.

use super::{in_crate_src, macro_positions, method_call_positions, violation, Rule, ENGINE_CRATES};
use crate::{Violation, Workspace};

/// See the module docs.
pub struct NoPanicInEngine;

const METHODS: &[&str] = &["unwrap", "expect"];
const MACROS: &[&str] = &["panic", "todo", "unimplemented"];

impl Rule for NoPanicInEngine {
    fn name(&self) -> &'static str {
        "no-panic-in-engine"
    }

    fn description(&self) -> &'static str {
        "engine crates must return typed errors, not unwrap/expect/panic, outside tests"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.sources {
            if !in_crate_src(&file.path, ENGINE_CRATES) {
                continue;
            }
            for (line0, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for method in METHODS {
                    for col0 in method_call_positions(&line.code, method) {
                        out.push(violation(
                            self.name(),
                            &file.path,
                            &line.raw,
                            line0,
                            col0,
                            format!(
                                ".{method}() on an engine path; return a typed error \
                                 (malleable_core::Error / ReservationError) instead"
                            ),
                        ));
                    }
                }
                for mac in MACROS {
                    for col0 in macro_positions(&line.code, mac) {
                        out.push(violation(
                            self.name(),
                            &file.path,
                            &line.raw,
                            line0,
                            col0,
                            format!("{mac}! on an engine path; return a typed error instead"),
                        ));
                    }
                }
            }
        }
        out
    }
}
