//! `scoped-threads-only`: no detached `std::thread::spawn`.
//!
//! The sharded engine's determinism argument leans on `std::thread::scope`:
//! worker lifetimes are bracketed by the coordinator, panics propagate at
//! the scope exit, and borrowed shard state cannot outlive the solve.  A
//! bare `thread::spawn` escapes that discipline — detached workers, `'static`
//! bounds pushing state into `Arc<Mutex<…>>`, and silent thread leaks on
//! early returns — so it is banned workspace-wide outside tests.

use super::{is_ident, violation, Rule};
use crate::{Violation, Workspace};

/// See the module docs.
pub struct ScopedThreadsOnly;

impl Rule for ScopedThreadsOnly {
    fn name(&self) -> &'static str {
        "scoped-threads-only"
    }

    fn description(&self) -> &'static str {
        "no bare std::thread::spawn — use std::thread::scope like the shard engine"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for file in &ws.sources {
            for (line0, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let chars: Vec<char> = line.code.chars().collect();
                let pattern: Vec<char> = "thread::spawn".chars().collect();
                if chars.len() < pattern.len() {
                    continue;
                }
                for start in 0..=chars.len() - pattern.len() {
                    if chars[start..start + pattern.len()] != pattern[..] {
                        continue;
                    }
                    if start > 0 && is_ident(chars[start - 1]) {
                        continue;
                    }
                    let after = start + pattern.len();
                    if after < chars.len() && is_ident(chars[after]) {
                        continue;
                    }
                    out.push(violation(
                        self.name(),
                        &file.path,
                        &line.raw,
                        line0,
                        start,
                        "bare thread::spawn; use std::thread::scope so worker lifetimes \
                         stay bracketed (see online::shard)"
                            .to_string(),
                    ));
                }
            }
        }
        out
    }
}
