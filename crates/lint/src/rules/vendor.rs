//! `vendor-hygiene`: every dependency resolves to a workspace or `vendor/`
//! path.
//!
//! The build container has no crate-registry access: a version requirement
//! (`foo = "1.0"`), a `git = …` source or a registry entry compiles on a
//! developer machine with a warm cache and then breaks the hermetic build.
//! Every `[dependencies]` / `[dev-dependencies]` / `[build-dependencies]`
//! entry (and `[workspace.dependencies]` in the root manifest) must carry
//! `workspace = true` or an explicit `path = …`.

use super::Rule;
use crate::{Violation, Workspace};

/// See the module docs.
pub struct VendorHygiene;

/// Is this `[section]` one whose entries are inline dependency specs?
fn is_dep_section(section: &str) -> bool {
    matches!(
        section,
        "dependencies" | "dev-dependencies" | "build-dependencies" | "workspace.dependencies"
    ) || (section.starts_with("target.")
        && (section.ends_with(".dependencies")
            || section.ends_with(".dev-dependencies")
            || section.ends_with(".build-dependencies")))
}

/// Is this a `[dependencies.foo]`-style per-dependency table?  Returns the
/// dependency name.
fn dep_table_name(section: &str) -> Option<&str> {
    let (head, name) = section.rsplit_once('.')?;
    if is_dep_section(head) && head != "workspace.dependencies" {
        Some(name)
    } else {
        None
    }
}

/// Does an inline spec resolve locally?
fn spec_is_local(spec: &str) -> bool {
    spec.contains("workspace = true")
        || spec.contains("workspace=true")
        || spec.contains("path =")
        || spec.contains("path=")
}

impl Rule for VendorHygiene {
    fn name(&self) -> &'static str {
        "vendor-hygiene"
    }

    fn description(&self) -> &'static str {
        "every Cargo.toml dependency resolves to a vendor/ or workspace path"
    }

    fn check(&self, ws: &Workspace) -> Vec<Violation> {
        let mut out = Vec::new();
        for manifest in &ws.manifests {
            let mut section = String::new();
            // Open `[dependencies.foo]` table: (name, header line, header
            // raw, satisfied?).
            let mut table: Option<(String, usize, String, bool)> = None;
            for (line0, raw) in manifest.text.lines().enumerate() {
                let line = raw.split('#').next().unwrap_or("").trim();
                if line.starts_with('[') {
                    if let Some((name, at, header, ok)) = table.take() {
                        if !ok {
                            out.push(self.table_violation(&manifest.path, &name, at, &header));
                        }
                    }
                    section = line.trim_matches(['[', ']']).to_string();
                    if let Some(name) = dep_table_name(&section) {
                        table = Some((name.to_string(), line0, raw.to_string(), false));
                    }
                    continue;
                }
                if let Some(entry) = table.as_mut() {
                    if spec_is_local(line) {
                        entry.3 = true;
                    }
                    continue;
                }
                if !is_dep_section(&section) || line.is_empty() {
                    continue;
                }
                let Some((key, spec)) = line.split_once('=') else {
                    continue;
                };
                let key = key.trim();
                // `foo.workspace = true` dotted-key form.
                if key.ends_with(".workspace") && spec.trim() == "true" {
                    continue;
                }
                if !spec_is_local(spec) {
                    out.push(Violation {
                        rule: self.name(),
                        path: manifest.path.clone(),
                        line: line0 + 1,
                        column: 1,
                        message: format!(
                            "dependency `{key}` does not resolve to a workspace or vendor/ \
                             path ({}); the container has no registry access",
                            spec.trim()
                        ),
                        snippet: raw.trim().to_string(),
                    });
                }
            }
            if let Some((name, at, header, ok)) = table.take() {
                if !ok {
                    out.push(self.table_violation(&manifest.path, &name, at, &header));
                }
            }
        }
        out
    }
}

impl VendorHygiene {
    fn table_violation(&self, path: &str, name: &str, line0: usize, raw: &str) -> Violation {
        Violation {
            rule: self.name(),
            path: path.to_string(),
            line: line0 + 1,
            column: 1,
            message: format!(
                "dependency table `{name}` has neither `workspace = true` nor a `path = …`; \
                 the container has no registry access"
            ),
            snippet: raw.trim().to_string(),
        }
    }
}
