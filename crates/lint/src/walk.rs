//! Filesystem discovery: build a [`Workspace`] from a checkout on disk.
//!
//! The walk is deliberately explicit about scope:
//!
//! * **Sources**: every `.rs` file under `crates/` (including each crate's
//!   `tests/`, `benches/` and `src/bin/`), excluding `crates/lint/fixtures/`
//!   (those files *intentionally* violate rules) and any `target/` output.
//!   `vendor/` sources are exempt — they mirror external crates.
//! * **Manifests**: the root `Cargo.toml` plus every `crates/*/Cargo.toml`
//!   and `vendor/*/Cargo.toml` (vendored manifests must still resolve
//!   locally, or the hermetic build breaks one level down).
//! * **Crate roots**: `crates/*/src/lib.rs` (or `src/main.rs` for binary
//!   crates) — the files `missing-docs-gate` checks.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::{lexer, CrateRoot, ManifestFile, Workspace};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// reports.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative forward-slash rendering of `path` under `root`.
fn relative(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Load the full workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
pub fn load(root: &Path) -> io::Result<Workspace> {
    let mut ws = Workspace::default();

    // Sources: crates/**/*.rs (fixtures and target pruned by SKIP_DIRS).
    let crates_dir = root.join("crates");
    let mut rs_files = Vec::new();
    if crates_dir.is_dir() {
        collect_rs(&crates_dir, &mut rs_files)?;
    }
    for path in rs_files {
        let text = fs::read_to_string(&path)?;
        ws.sources.push(lexer::lex(&relative(root, &path), &text));
    }

    // Manifests: root + crates/* + vendor/*.
    let mut manifest_paths = vec![root.join("Cargo.toml")];
    for dir in ["crates", "vendor"] {
        let base = root.join(dir);
        if !base.is_dir() {
            continue;
        }
        let mut members: Vec<PathBuf> = fs::read_dir(&base)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let manifest = member.join("Cargo.toml");
            if manifest.is_file() {
                manifest_paths.push(manifest);
            }
        }
    }
    for path in manifest_paths {
        if !path.is_file() {
            continue;
        }
        ws.manifests.push(ManifestFile {
            path: relative(root, &path),
            text: fs::read_to_string(&path)?,
        });
    }

    // Crate roots under crates/: lib.rs, else main.rs.
    if crates_dir.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        for member in members {
            let name = member
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("")
                .to_string();
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let path = member.join(candidate);
                if path.is_file() {
                    ws.crate_roots.push(CrateRoot {
                        name,
                        path: relative(root, &path),
                    });
                    break;
                }
            }
        }
    }

    Ok(ws)
}

/// Locate the workspace root by walking up from `start` until a directory
/// holding both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}
