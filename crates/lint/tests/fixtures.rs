//! Fixture-file tests: every shipped rule, with exact line/column
//! assertions.
//!
//! The fixture sources live under `crates/lint/fixtures/` — a directory the
//! workspace walker skips, so the lint binary never scans them — and are
//! lexed here under synthetic workspace paths, so each rule sees exactly
//! the shape it polices.

use lint::rules::{
    FloatExactCompare, MissingDocsGate, NoPanicInEngine, NoSendUnderLock, Rule, ScopedThreadsOnly,
    SingleClock, VendorHygiene,
};
use lint::{CrateRoot, ManifestFile, Violation, Workspace};

const PANIC_SRC: &str = include_str!("../fixtures/panic.rs");
const CLOCK_SRC: &str = include_str!("../fixtures/clock.rs");
const FLOAT_SRC: &str = include_str!("../fixtures/float.rs");
const THREADS_SRC: &str = include_str!("../fixtures/threads.rs");
const LOCK_SRC: &str = include_str!("../fixtures/lock.rs");
const DOCS_GATED_SRC: &str = include_str!("../fixtures/docs_gated.rs");
const DOCS_UNGATED_SRC: &str = include_str!("../fixtures/docs_ungated.rs");
const VENDOR_SRC: &str = include_str!("../fixtures/vendor.toml");

/// Run one rule over one in-memory source and return the sorted findings
/// plus the suppressed count.
fn check_one(rule: Box<dyn Rule>, path: &str, text: &str) -> (Vec<Violation>, usize) {
    Workspace::from_sources(&[(path, text)]).check(&[rule])
}

/// The `(line, column)` pairs of the findings, in report order.
fn positions(violations: &[Violation]) -> Vec<(usize, usize)> {
    violations.iter().map(|v| (v.line, v.column)).collect()
}

#[test]
fn no_panic_in_engine_fixture() {
    let path = "crates/online/src/fixture_panic.rs";
    let (violations, suppressed) = check_one(Box::new(NoPanicInEngine), path, PANIC_SRC);
    assert_eq!(
        positions(&violations),
        vec![(4, 32), (5, 36), (7, 9), (9, 5), (13, 5)],
        "unwrap, expect, panic!, todo!, unimplemented! at exact positions"
    );
    assert!(violations.iter().all(|v| v.rule == "no-panic-in-engine"));
    assert_eq!(
        violations[0].snippet,
        "let first = values.first().unwrap();"
    );
    assert!(violations[2].message.contains("panic!"));
    // The `lint:allow(no-panic-in-engine)` line fires but is suppressed;
    // the commented/string mentions and the `#[cfg(test)]` module never
    // fire at all.
    assert_eq!(suppressed, 1);
}

#[test]
fn no_panic_in_engine_ignores_non_engine_crates() {
    let path = "crates/telemetry/src/fixture_panic.rs";
    let (violations, suppressed) = check_one(Box::new(NoPanicInEngine), path, PANIC_SRC);
    assert!(violations.is_empty());
    assert_eq!(suppressed, 0);
}

#[test]
fn single_clock_fixture() {
    let path = "crates/bench/src/bin/fixture_clock.rs";
    let (violations, suppressed) = check_one(Box::new(SingleClock), path, CLOCK_SRC);
    assert_eq!(positions(&violations), vec![(4, 28)]);
    assert_eq!(violations[0].rule, "single-clock");
    assert_eq!(
        violations[0].snippet,
        "let start = std::time::Instant::now();"
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn single_clock_exempts_the_span_timer() {
    let path = "crates/telemetry/src/clock.rs";
    let (violations, _) = check_one(Box::new(SingleClock), path, CLOCK_SRC);
    assert!(
        violations.is_empty(),
        "SpanTimer's own file may touch the clock"
    );
}

#[test]
fn float_exact_compare_fixture() {
    let path = "crates/simulator/src/fixture_float.rs";
    let (violations, suppressed) = check_one(Box::new(FloatExactCompare), path, FLOAT_SRC);
    assert_eq!(
        positions(&violations),
        vec![(4, 14), (8, 11)],
        "`makespan == target` and `ratio != 1.0`; `.len()` compares stay quiet"
    );
    assert!(violations.iter().all(|v| v.rule == "float-exact-compare"));
    assert!(violations[0].message.contains("`makespan` vs `target`"));
    assert_eq!(suppressed, 1, "the lint:allow(float-exact-compare) line");
}

#[test]
fn scoped_threads_only_fixture() {
    let path = "crates/simulator/src/fixture_threads.rs";
    let (violations, suppressed) = check_one(Box::new(ScopedThreadsOnly), path, THREADS_SRC);
    assert_eq!(
        positions(&violations),
        vec![(4, 23)],
        "thread::spawn fires; thread::scope / scope.spawn stay quiet"
    );
    assert_eq!(violations[0].rule, "scoped-threads-only");
    assert_eq!(suppressed, 0);
}

#[test]
fn no_send_under_lock_fixture() {
    let path = "crates/simulator/src/fixture_lock.rs";
    let (violations, suppressed) = check_one(Box::new(NoSendUnderLock), path, LOCK_SRC);
    assert_eq!(
        positions(&violations),
        vec![(4, 8)],
        "send on the lock-holding line fires; bind-then-send stays quiet"
    );
    assert_eq!(violations[0].rule, "no-send-under-lock");
    assert_eq!(
        violations[0].snippet,
        "tx.send(*state.lock().expect(\"poisoned\")).ok();"
    );
    assert_eq!(suppressed, 0);
}

#[test]
fn missing_docs_gate_fixture() {
    let mut ws = Workspace::from_sources(&[
        ("crates/gated/src/lib.rs", DOCS_GATED_SRC),
        ("crates/ungated/src/lib.rs", DOCS_UNGATED_SRC),
    ]);
    ws.crate_roots = vec![
        CrateRoot {
            name: "gated".to_string(),
            path: "crates/gated/src/lib.rs".to_string(),
        },
        CrateRoot {
            name: "ungated".to_string(),
            path: "crates/ungated/src/lib.rs".to_string(),
        },
    ];
    let (violations, suppressed) = ws.check(&[Box::new(MissingDocsGate) as Box<dyn Rule>]);
    assert_eq!(positions(&violations), vec![(1, 1)]);
    assert_eq!(violations[0].rule, "missing-docs-gate");
    assert_eq!(violations[0].path, "crates/ungated/src/lib.rs");
    // The gate mentioned inside a comment does not satisfy the rule — only
    // the masked code channel counts.
    assert!(violations[0].message.contains("crate `ungated`"));
    assert_eq!(suppressed, 0);
}

#[test]
fn vendor_hygiene_fixture() {
    let ws = Workspace {
        manifests: vec![ManifestFile {
            path: "crates/fixture/Cargo.toml".to_string(),
            text: VENDOR_SRC.to_string(),
        }],
        ..Workspace::default()
    };
    let (violations, suppressed) = ws.check(&[Box::new(VendorHygiene) as Box<dyn Rule>]);
    assert_eq!(
        positions(&violations),
        vec![(10, 1), (11, 1), (13, 1)],
        "registry version, git source, and path-less dependency table"
    );
    assert!(violations.iter().all(|v| v.rule == "vendor-hygiene"));
    assert!(violations[0].message.contains("`rand`"));
    assert!(violations[1].message.contains("`serde`"));
    assert!(violations[2].message.contains("`proptest`"));
    assert_eq!(violations[2].snippet, "[dependencies.proptest]");
    assert_eq!(suppressed, 0);
}
