//! Property tests for the lexer/rule contract.
//!
//! Three invariants, each exercised over generated sources:
//!
//! 1. A hazard token placed in *any* comment, string-literal, or test
//!    context never fires any rule, and the lexer's masked channels stay
//!    column-aligned with the raw line.
//! 2. The same token in plain code fires exactly its rule, once, at the
//!    exact line/column, wherever it sits in the file.
//! 3. `// lint:allow(<rule>)` suppresses precisely its own rule and
//!    nothing else.

use lint::rules::registry;
use lint::Workspace;
use proptest::prelude::*;

/// `(token, rule that fires on it, 0-based column offset of the finding
/// within the token)`.  Tokens avoid `"` so every string context can embed
/// them verbatim.
const TOKENS: &[(&str, &str, usize)] = &[
    ("x.unwrap()", "no-panic-in-engine", 2),
    ("panic!(boom)", "no-panic-in-engine", 0),
    ("std::time::Instant::now()", "single-clock", 11),
    ("thread::spawn(f)", "scoped-threads-only", 0),
    ("makespan == 1.0", "float-exact-compare", 9),
    ("q.lock().send(v)", "no-send-under-lock", 9),
];

/// Lexed as an engine crate so the strictest rule set applies.
const PATH: &str = "crates/online/src/generated.rs";

/// Embed `token` in a context where no rule may ever fire.
fn quiet_context(ctx: usize, token: &str) -> String {
    match ctx {
        0 => format!("// {token}\n"),
        1 => format!("/// {token}\nfn documented() {{}}\n"),
        2 => format!("//! {token}\n"),
        3 => format!("/* {token} */\n"),
        4 => format!("/* outer /* {token} */ still comment */\n"),
        5 => format!("let s = \"{token}\";\n"),
        6 => format!("let s = r#\"{token}\"#;\n"),
        7 => format!("let s = r##\"{token}\"##;\n"),
        8 => format!("let s = b\"{token}\";\n"),
        9 => format!("#[cfg(test)]\nmod tests {{\n    fn f() {{\n        {token};\n    }}\n}}\n"),
        _ => format!("#[test]\nfn t() {{\n    {token};\n}}\n"),
    }
}

proptest! {
    #[test]
    fn quiet_contexts_never_fire(
        token_idx in 0usize..6,
        ctx in 0usize..11,
        pad_before in 0usize..4,
        pad_after in 0usize..4,
    ) {
        let (token, _, _) = TOKENS[token_idx];
        let mut text = String::new();
        for _ in 0..pad_before {
            text.push_str("let y = 1;\n");
        }
        text.push_str(&quiet_context(ctx, token));
        for _ in 0..pad_after {
            text.push_str("let z = 2;\n");
        }
        let ws = Workspace::from_sources(&[(PATH, &text)]);
        for line in &ws.sources[0].lines {
            prop_assert_eq!(line.raw.chars().count(), line.code.chars().count());
            prop_assert_eq!(line.raw.chars().count(), line.comment.chars().count());
        }
        let (kept, suppressed) = ws.check(&registry());
        prop_assert_eq!(suppressed, 0);
        prop_assert!(kept.is_empty(), "unexpected findings: {:?}", kept);
    }

    #[test]
    fn plain_code_fires_exactly_once_at_the_exact_position(
        token_idx in 0usize..6,
        indent in 0usize..9,
        pad_before in 0usize..4,
    ) {
        let (token, rule, offset) = TOKENS[token_idx];
        let mut text = String::new();
        for _ in 0..pad_before {
            text.push_str("let y = 1;\n");
        }
        text.push_str(&format!("{}{token};\n", " ".repeat(indent)));
        let ws = Workspace::from_sources(&[(PATH, &text)]);
        let (kept, suppressed) = ws.check(&registry());
        prop_assert_eq!(suppressed, 0);
        prop_assert_eq!(kept.len(), 1, "expected one finding, got {:?}", kept);
        prop_assert_eq!(kept[0].rule, rule);
        prop_assert_eq!(kept[0].line, pad_before + 1);
        prop_assert_eq!(kept[0].column, indent + offset + 1);
    }

    #[test]
    fn lint_allow_suppresses_only_its_own_rule(
        token_idx in 0usize..6,
        matching in 0usize..2,
    ) {
        let (token, rule, _) = TOKENS[token_idx];
        let allow = if matching == 1 { rule } else { "some-other-rule" };
        let text = format!("{token}; // lint:allow({allow})\n");
        let ws = Workspace::from_sources(&[(PATH, &text)]);
        let (kept, suppressed) = ws.check(&registry());
        if matching == 1 {
            prop_assert_eq!(kept.len(), 0, "allow({}) must suppress: {:?}", allow, kept);
            prop_assert_eq!(suppressed, 1);
        } else {
            prop_assert_eq!(kept.len(), 1, "allow({}) must not suppress {}", allow, rule);
            prop_assert_eq!(suppressed, 0);
        }
    }
}
