//! Allotments: the per-task processor counts chosen by the first phase of a
//! two-phase malleable scheduler.

use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::task::TaskId;

/// A processor count for every task of an instance.
///
/// The two-phase approach of Turek, Wolf and Yu (and of the paper) first picks
/// an allotment and then schedules the resulting *rigid* (non-malleable)
/// tasks.  The allotment determines each task's execution time and work, so
/// the usual aggregate quantities (total work, longest task) live here.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Allotment {
    processors: Vec<usize>,
}

impl Allotment {
    /// Wrap a raw processor-count vector, validating it against the instance:
    /// one entry per task, each in `1..=m`.
    pub fn new(instance: &Instance, processors: Vec<usize>) -> Result<Self> {
        if processors.len() != instance.task_count() {
            return Err(Error::InvalidAllotment {
                task: processors.len().min(instance.task_count()),
                processors: 0,
            });
        }
        for (task, &p) in processors.iter().enumerate() {
            if p == 0 || p > instance.processors() {
                return Err(Error::InvalidAllotment {
                    task,
                    processors: p,
                });
            }
        }
        Ok(Allotment { processors })
    }

    /// The canonical allotment for a deadline (minimal processors per task).
    pub fn canonical(instance: &Instance, deadline: f64) -> Result<Self> {
        let processors = instance.canonical_allotment(deadline)?;
        Allotment::new(instance, processors)
    }

    /// The all-sequential allotment (one processor per task).
    pub fn sequential(instance: &Instance) -> Self {
        Allotment {
            processors: vec![1; instance.task_count()],
        }
    }

    /// Number of processors allotted to a task.
    pub fn processors(&self, task: TaskId) -> usize {
        self.processors[task]
    }

    /// Raw access to the allotment vector.
    pub fn as_slice(&self) -> &[usize] {
        &self.processors
    }

    /// Mutable access to the raw vector, for in-place recomputation by the
    /// canonical-allotment cache (callers must re-establish the `1..=m`
    /// invariant before the allotment is used again).
    pub(crate) fn processors_vec_mut(&mut self) -> &mut Vec<usize> {
        &mut self.processors
    }

    /// Capacity of the backing vector (allocation-tracking telemetry).
    pub(crate) fn buffer_capacity(&self) -> usize {
        self.processors.capacity()
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.processors.len()
    }

    /// Whether the allotment is empty (never true for validated allotments).
    pub fn is_empty(&self) -> bool {
        self.processors.is_empty()
    }

    /// Execution time of a task under this allotment.
    pub fn time(&self, instance: &Instance, task: TaskId) -> f64 {
        instance.time(task, self.processors[task])
    }

    /// Work of a task under this allotment.
    pub fn work(&self, instance: &Instance, task: TaskId) -> f64 {
        instance.work(task, self.processors[task])
    }

    /// Total work `Σ_j p_j · t_j(p_j)` under this allotment.
    pub fn total_work(&self, instance: &Instance) -> f64 {
        (0..self.len()).map(|t| self.work(instance, t)).sum()
    }

    /// Longest task execution time under this allotment.
    pub fn max_time(&self, instance: &Instance) -> f64 {
        (0..self.len())
            .map(|t| self.time(instance, t))
            .fold(0.0, f64::max)
    }

    /// Sum of the allotted processor counts (the "width" demand).
    pub fn total_processors(&self) -> usize {
        self.processors.iter().sum()
    }

    /// The natural lower bound induced by this allotment on any schedule that
    /// uses it: `max(total work / m, longest task)`.
    pub fn makespan_lower_bound(&self, instance: &Instance) -> f64 {
        (self.total_work(instance) / instance.processors() as f64).max(self.max_time(instance))
    }

    /// Replace the processor count of one task, returning a new allotment.
    pub fn with_processors(&self, task: TaskId, processors: usize) -> Self {
        let mut next = self.processors.clone();
        next[task] = processors;
        Allotment { processors: next }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![4.0, 2.0, 1.5]).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.6]).unwrap(),
                SpeedupProfile::sequential(0.5).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_vectors() {
        let inst = instance();
        assert!(Allotment::new(&inst, vec![1, 1]).is_err());
        assert!(Allotment::new(&inst, vec![1, 1, 0]).is_err());
        assert!(Allotment::new(&inst, vec![1, 1, 5]).is_err());
        assert!(Allotment::new(&inst, vec![1, 2, 1]).is_ok());
    }

    #[test]
    fn aggregates_match_hand_computation() {
        let inst = instance();
        let a = Allotment::new(&inst, vec![2, 2, 1]).unwrap();
        assert!((a.total_work(&inst) - (4.0 + 3.2 + 0.5)).abs() < 1e-12);
        assert!((a.max_time(&inst) - 2.0).abs() < 1e-12);
        assert_eq!(a.total_processors(), 5);
        let lb = a.makespan_lower_bound(&inst);
        assert!((lb - (7.7f64 / 4.0).max(2.0)).abs() < 1e-12);
    }

    #[test]
    fn canonical_allotment_matches_instance_helper() {
        let inst = instance();
        let a = Allotment::canonical(&inst, 2.0).unwrap();
        assert_eq!(a.as_slice(), &[2, 2, 1]);
        assert!(Allotment::canonical(&inst, 1.0).is_err());
    }

    #[test]
    fn sequential_allotment_is_all_ones() {
        let inst = instance();
        let a = Allotment::sequential(&inst);
        assert_eq!(a.as_slice(), &[1, 1, 1]);
        assert!((a.total_work(&inst) - inst.total_sequential_work()).abs() < 1e-12);
    }

    #[test]
    fn with_processors_changes_one_entry() {
        let inst = instance();
        let a = Allotment::sequential(&inst).with_processors(0, 3);
        assert_eq!(a.as_slice(), &[3, 1, 1]);
    }
}
