//! Lower bounds on the optimal makespan.
//!
//! The performance guarantees of the paper are stated against an optimal
//! schedule that may even be preemptive and non-contiguous.  We therefore
//! need lower bounds that hold for that relaxed optimum; they are used both
//! by the dual-approximation binary search (as the initial search interval)
//! and by the experiment harness (to normalise measured makespans, since the
//! true optimum is unknown in general).
//!
//! Three families of bounds are implemented:
//!
//! * the **area bound** `Σ_j t_j(1) / m`: under the monotone assumption the
//!   work of a task is minimised on one processor, and the machine cannot
//!   process more than `m` units of work per unit of time;
//! * the **critical-task bound** `max_j t_j(m)`: no task can finish earlier
//!   than its execution time on the whole machine;
//! * the **tall-task bound**: tasks that need more than `m/2` processors to
//!   meet a deadline `d` can never run two at a time, so their canonical
//!   times must add up to at most `d`.  This bound is evaluated by a small
//!   parametric feasibility test and strengthens the other two noticeably on
//!   instances dominated by wide tasks.

use crate::instance::Instance;

/// The simple area bound `Σ_j t_j(1) / m`.
pub fn area_bound(instance: &Instance) -> f64 {
    instance.total_sequential_work() / instance.processors() as f64
}

/// The critical-task bound `max_j t_j(m)`.
pub fn critical_task_bound(instance: &Instance) -> f64 {
    instance.max_min_time()
}

/// Necessary feasibility conditions for a target makespan `d`.
///
/// Returns `false` when a schedule of length at most `d` (even preemptive and
/// non-contiguous) provably cannot exist:
///
/// 1. some task cannot meet `d` on any processor count;
/// 2. the total work of the canonical allotment for `d` exceeds `m·d`
///    (Property 2 of the paper);
/// 3. the canonical times of tasks needing more than `m/2` processors sum to
///    more than `d` (no two of them can overlap in any schedule of length
///    `≤ d`, because together they would need more than `m` processors).
pub fn may_be_feasible(instance: &Instance, deadline: f64) -> bool {
    if deadline <= 0.0 {
        return false;
    }
    let allotment = match instance.canonical_allotment(deadline) {
        Ok(a) => a,
        Err(_) => return false,
    };
    let m = instance.processors();
    let mut total_work = 0.0;
    let mut tall_time = 0.0;
    for (id, &q) in allotment.iter().enumerate() {
        total_work += instance.work(id, q);
        if 2 * q > m {
            tall_time += instance.time(id, q);
        }
    }
    if total_work > m as f64 * deadline + 1e-9 {
        return false;
    }
    if tall_time > deadline + 1e-9 {
        return false;
    }
    true
}

/// The strongest lower bound available from the necessary conditions:
/// the largest `d` (up to a relative tolerance) for which [`may_be_feasible`]
/// still fails, searched between the trivial bounds.
pub fn lower_bound(instance: &Instance) -> f64 {
    let trivial = area_bound(instance).max(critical_task_bound(instance));
    // The tall-task condition can push the bound above `trivial`; search for
    // the threshold where feasibility starts holding.
    let mut lo = trivial;
    let mut hi = trivial.max(1e-12);
    // Find an upper end where the conditions hold (doubling search).
    let mut guard = 0;
    while !may_be_feasible(instance, hi) && guard < 128 {
        hi *= 2.0;
        guard += 1;
    }
    if guard == 0 {
        // Already feasible at the trivial bound: it is the best we can certify.
        return trivial;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if may_be_feasible(instance, mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi.max(trivial)
}

/// A guaranteed-feasible upper bound on the optimal makespan: the makespan of
/// executing every task sequentially (one processor each) one after another
/// is always achievable, but we use the tighter "every task alone on the full
/// machine" + "all sequential via area" combination:
/// `min( Σ_j t_j(m), m·area_bound )` is feasible; we return the smaller of the
/// two trivial feasible schedules' makespans.
pub fn upper_bound(instance: &Instance) -> f64 {
    let gang: f64 = (0..instance.task_count())
        .map(|t| instance.time(t, instance.processors()))
        .sum();
    let serial: f64 = instance.total_sequential_work();
    gang.min(serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![4.0, 2.2, 1.6, 1.4]).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.8]).unwrap(),
                SpeedupProfile::sequential(0.7).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn area_and_critical_bounds() {
        let inst = instance();
        assert!((area_bound(&inst) - 7.7 / 4.0).abs() < 1e-12);
        assert!((critical_task_bound(&inst) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn feasibility_conditions_reject_small_deadlines() {
        let inst = instance();
        assert!(!may_be_feasible(&inst, 0.0));
        assert!(!may_be_feasible(&inst, 1.0)); // task 0 cannot finish in 1.0
        assert!(may_be_feasible(&inst, 10.0));
    }

    #[test]
    fn tall_task_condition_strengthens_bound() {
        // Two tasks that each need 3 of 4 processors to meet deadline 1.0:
        // they cannot overlap, so OPT >= 2 even though area/critical say ~1.5.
        let profile = SpeedupProfile::new(vec![3.0, 1.5, 1.0, 0.9]).unwrap();
        let inst = Instance::from_profiles(vec![profile.clone(), profile], 4).unwrap();
        assert!(!may_be_feasible(&inst, 1.0));
        let lb = lower_bound(&inst);
        assert!(lb > 1.2, "tall-task bound should exceed 1.2, got {lb}");
    }

    #[test]
    fn lower_bound_never_below_trivial_bounds() {
        let inst = instance();
        let lb = lower_bound(&inst);
        assert!(lb >= area_bound(&inst) - 1e-9);
        assert!(lb >= critical_task_bound(&inst) - 1e-9);
    }

    #[test]
    fn upper_bound_at_least_lower_bound() {
        let inst = instance();
        assert!(upper_bound(&inst) >= lower_bound(&inst) - 1e-9);
    }

    #[test]
    fn single_sequential_task_bounds_are_tight() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::sequential(2.0).unwrap()], 2).unwrap();
        assert!((lower_bound(&inst) - 2.0).abs() < 1e-9);
        assert!((upper_bound(&inst) - 2.0).abs() < 1e-9);
    }
}
