//! Breakpoints of the dual-approximation oracle in the guess `ω`.
//!
//! The canonical processor count of a task is a monotone step function of the
//! guess whose discontinuities are exactly the per-task execution times
//! `t_j(q)` (§3 of Mounié–Rapine–Trystram).  Every quantity a probe derives
//! from the canonical allotment — canonical times, total work, the λ-area —
//! is therefore constant on the open intervals between consecutive values of
//! the set `{t_j(q)}`.  The feasibility *certificates* of a probe add two
//! more families of thresholds that move continuously with `ω` while the
//! canonical data stands still:
//!
//! * the **work condition** `W(ω) ≤ m·ω` (Property 2) flips at `ω = W/m`,
//!   where `W` is the canonical work of the interval;
//! * the **width condition** (tasks needing more than `m/2` processors can
//!   never overlap) flips at `ω = Σ t_j(q_j)` over the tall tasks of the
//!   interval.
//!
//! [`collect`] gathers all three families — `O(n·m)` values overall — with a
//! single descending sweep that maintains the canonical counts, work and
//! tall-task time incrementally.  On the resulting candidate list the probe
//! outcome is constant between consecutive candidates, which is what lets
//! [`DualSearch::solve_exact`] bisect over candidate *indices* instead of
//! blind `f64` midpoints: `⌈log₂(n·m)⌉ + O(1)` probes replace the fixed
//! 30-iteration dichotomic search, and an infeasible candidate certifies
//! `OPT ≥ next candidate` exactly instead of up to a tolerance.
//!
//! [`DualSearch::solve_exact`]: crate::dual::DualSearch::solve_exact

use crate::instance::Instance;

/// All candidate guesses at which a dual-approximation probe of `instance`
/// can change its answer: the per-task canonical times `t_j(q)` plus the
/// work/width feasibility kinks, sorted ascending and deduplicated.
pub fn collect(instance: &Instance) -> Vec<f64> {
    collect_window(instance, 0.0, f64::INFINITY)
}

/// The candidate guesses of [`collect`] restricted to the search interval
/// `[lo, hi]`, with the interval ends always included (ascending, distinct).
///
/// Only profile times strictly inside the window are gathered and swept, so
/// a warm-started search with a tight interval (the online epoch re-planner)
/// pays `O(n·log m)` for the window-top count initialisation instead of a
/// full `O(n·m·log(n·m))` sort of every breakpoint.
pub fn search_candidates(instance: &Instance, lo: f64, hi: f64) -> Vec<f64> {
    let mut candidates = vec![lo];
    candidates.extend(collect_window(instance, lo, hi));
    if hi > lo {
        candidates.push(hi);
    }
    candidates
}

/// Breakpoints and feasibility kinks strictly inside `(lo, hi)`, ascending
/// and deduplicated.
fn collect_window(instance: &Instance, lo: f64, hi: f64) -> Vec<f64> {
    let mut values: Vec<f64> = Vec::new();
    for (_, task) in instance.iter() {
        // Profile times are non-increasing in the processor count; skip the
        // plateau duplicates as we go.
        let mut previous = f64::NAN;
        for &t in task.profile.times() {
            if t != previous && lo < t && t < hi {
                values.push(t);
            }
            previous = t;
        }
    }
    values.sort_by(f64::total_cmp);
    values.dedup();
    let kinks = feasibility_kinks(instance, &values, lo, hi);
    values.extend(kinks);
    values.sort_by(f64::total_cmp);
    values.dedup();
    values
}

/// The `ω` values strictly inside `(lo, hi)` where the work condition
/// `W(ω) ≤ m·ω` or the tall-task condition flips, found by sweeping the
/// sorted in-window breakpoints downwards while maintaining the canonical
/// counts incrementally.  Counts are initialised at the topmost in-window
/// breakpoint (or at `lo` when the window holds none) by binary search.
fn feasibility_kinks(instance: &Instance, sorted_times: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    let m = instance.processors();
    let n = instance.task_count();
    let mut kinks = Vec::new();

    // Counts on the interval `[v_k, v_{k+1})` equal the canonical counts at
    // `v_k` (no profile time lies strictly between consecutive breakpoints).
    // Initialise at the anchor of the topmost interval.
    let top_anchor = sorted_times.last().copied().unwrap_or(lo);
    let mut counts = Vec::with_capacity(n);
    let mut work = 0.0f64;
    let mut tall = 0.0f64;
    let tall_contribution = |q: usize, t: f64| if 2 * q > m { t } else { 0.0 };
    for (_, task) in instance.iter() {
        let q = match task.canonical_processors(top_anchor) {
            Some(q) => q,
            // Unreachable at the window top: everything in the window is
            // certainly infeasible, no kinks can matter.
            None => return kinks,
        };
        let t = task.time(q);
        work += q as f64 * t;
        tall += tall_contribution(q, t);
        counts.push(q);
    }

    // Emit the kinks of one interval (lower, upper): thresholds that fall
    // strictly inside it (and inside the window).
    let emit = |kinks: &mut Vec<f64>, lower: f64, upper: f64, work: f64, tall: f64| {
        let w_kink = work / m as f64;
        if lower < w_kink && w_kink < upper && lo < w_kink && w_kink < hi {
            kinks.push(w_kink);
        }
        if lower < tall && tall < upper && lo < tall && tall < hi {
            kinks.push(tall);
        }
    };

    // Topmost interval [top_anchor, hi).
    emit(&mut kinks, top_anchor, hi, work, tall);

    // Boundary events: (in-window profile time, task) pairs descending, so
    // the sweep consumes each task's level changes in order.
    let mut events: Vec<(f64, usize)> = Vec::new();
    for (id, task) in instance.iter() {
        let mut previous = f64::NAN;
        for &t in task.profile.times() {
            if t != previous && lo < t && t < hi {
                events.push((t, id));
            }
            previous = t;
        }
    }
    events.sort_by(|a, b| b.0.total_cmp(&a.0));

    // Sweep downwards: cross below each breakpoint, re-resolving the tasks
    // whose canonical time sat exactly on it, then emit the interval below.
    let mut next_event = 0usize;
    for k in (0..sorted_times.len()).rev() {
        let upper = sorted_times[k];
        let lower = if k > 0 { sorted_times[k - 1] } else { lo };
        while next_event < events.len() && events[next_event].0 >= upper {
            let j = events[next_event].1;
            next_event += 1;
            let q_new = match instance.task(j).canonical_processors(lower) {
                Some(q) => q,
                // Dead below `upper`: everything lower is infeasible.
                None => return kinks,
            };
            let q_old = counts[j];
            if q_new == q_old {
                continue;
            }
            work += instance.work(j, q_new) - instance.work(j, q_old);
            tall += tall_contribution(q_new, instance.time(j, q_new))
                - tall_contribution(q_old, instance.time(j, q_old));
            counts[j] = q_new;
        }
        emit(&mut kinks, lower, upper, work, tall);
    }
    kinks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::task::SpeedupProfile;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![3.0, 1.6, 1.2, 0.95]).unwrap(),
                SpeedupProfile::new(vec![1.7, 0.9]).unwrap(),
                SpeedupProfile::sequential(0.8).unwrap(),
                SpeedupProfile::linear(1.8, 4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn collect_contains_all_profile_times_sorted() {
        let inst = instance();
        let candidates = collect(&inst);
        for (_, task) in inst.iter() {
            for &t in task.profile.times() {
                assert!(
                    candidates.contains(&t),
                    "profile time {t} missing from {candidates:?}"
                );
            }
        }
        for pair in candidates.windows(2) {
            assert!(pair[0] < pair[1], "candidates must be strictly ascending");
        }
    }

    #[test]
    fn feasibility_is_constant_between_candidates() {
        // The defining property of the candidate set: `may_be_feasible` never
        // changes its answer strictly between two consecutive candidates.
        let inst = instance();
        let candidates = collect(&inst);
        for pair in candidates.windows(2) {
            let (lo, hi) = (pair[0], pair[1]);
            let samples = [
                lo + (hi - lo) * 0.05,
                lo + (hi - lo) * 0.35,
                lo + (hi - lo) * 0.65,
                lo + (hi - lo) * 0.95,
            ];
            let answers: Vec<bool> = samples
                .iter()
                .map(|&w| bounds::may_be_feasible(&inst, w))
                .collect();
            assert!(
                answers.windows(2).all(|w| w[0] == w[1]),
                "feasibility changed inside ({lo}, {hi}): {answers:?}"
            );
        }
    }

    #[test]
    fn search_candidates_are_clipped_and_bracketed() {
        let inst = instance();
        let lb = bounds::lower_bound(&inst);
        let ub = bounds::upper_bound(&inst);
        let candidates = search_candidates(&inst, lb, ub);
        assert_eq!(candidates.first().copied(), Some(lb));
        assert_eq!(candidates.last().copied(), Some(ub));
        for &c in &candidates {
            assert!((lb..=ub).contains(&c));
        }
        for pair in candidates.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn degenerate_interval_is_a_single_candidate() {
        let inst = instance();
        let candidates = search_candidates(&inst, 2.0, 2.0);
        assert_eq!(candidates, vec![2.0]);
    }

    #[test]
    fn candidate_count_is_linear_in_profile_sizes() {
        let inst = instance();
        let total_profile_entries: usize =
            inst.iter().map(|(_, t)| t.profile.max_processors()).sum();
        // Each interval contributes at most two kinks, plus the times.
        assert!(collect(&inst).len() <= 3 * total_profile_entries + 2);
    }
}
