//! Canonical allotments, the canonical λ-area, and the canonical list
//! algorithm of §3.2 of the paper.
//!
//! For a makespan guess `ω`, the *canonical number of processors* of a task is
//! the minimal count executing it in time at most `ω`; in any schedule of
//! length `≤ ω` every task uses at least its canonical count, which is what
//! makes canonical quantities usable as certificates.  The canonical list
//! algorithm allots every task its canonical count and list-schedules the
//! resulting rigid tasks by decreasing execution time with the
//! leftmost/rightmost tie-breaking convention; Theorem 2 of the paper shows
//! the result has length at most `2λ·ω` whenever
//!
//! * the *canonical λ-area* `S_m` is at most `λ·m·ω`, and
//! * the machine has at least `m_λ` processors (a constant depending only on
//!   `λ`, plotted in Figure 8 of the paper).
//!
//! Both quantities are computed here.  Note on `m_λ`: the appendix derivation
//! of the exact constants is not fully recoverable from the available scan of
//! the paper, so [`m_lambda`] implements a closed form anchored on the two
//! data points that *are* legible (the value 8 at `λ = √3/2` and the shape of
//! Figure 8, a decreasing curve diverging as `λ → 3/4⁺`).  The scheduling
//! code never relies on `m_λ` for correctness — every branch's output is
//! validated against its target makespan — so the constant only influences
//! branch ordering and the Figure 8 reproduction.  See `DESIGN.md`.

use crate::allotment::Allotment;
use crate::bounds;
use crate::dual::{DualApproximation, DualOutcome};
use crate::error::Result;
use crate::instance::Instance;
use crate::list::{schedule_rigid, ListOrder};
use crate::schedule::Schedule;
use crate::task::TaskId;

/// Canonical data of an instance for a given makespan guess `ω`.
#[derive(Debug, Clone, PartialEq)]
pub struct CanonicalAllotment {
    /// The guess `ω` the allotment was computed for.
    pub omega: f64,
    /// The canonical allotment itself (minimal processors per task).
    pub allotment: Allotment,
    /// Execution time of every task under its canonical count.
    pub times: Vec<f64>,
    /// Total work of the canonical allotment (`Σ q_j · t_j(q_j)`).
    pub total_work: f64,
    /// Task identifiers sorted by decreasing canonical time (ties broken by
    /// task id), cached at compute time: the λ-area and the canonical list
    /// algorithm both consume this order on every probe.
    sorted: Vec<TaskId>,
}

/// Build the decreasing-time order (ties by increasing id) from scratch.
fn sort_by_decreasing_time(times: &[f64]) -> Vec<TaskId> {
    let mut sorted: Vec<TaskId> = (0..times.len()).collect();
    sorted.sort_unstable_by(|&a, &b| times[b].total_cmp(&times[a]).then(a.cmp(&b)));
    sorted
}

/// Restore the decreasing-time order (ties by increasing id) of `sorted` after
/// `times` changed.  Insertion sort is adaptive: when the guess `ω` moves
/// between two probes, only the tasks whose canonical count changed are out of
/// place, so the repair costs `O(n + inversions)` instead of a full sort.  It
/// is only used on the incremental [`CanonicalAllotment::recompute`] path —
/// cold construction uses [`sort_by_decreasing_time`], which is `O(n·log n)`
/// on arbitrary orders.
fn resort_by_decreasing_time(sorted: &mut [TaskId], times: &[f64]) {
    let after = |a: TaskId, b: TaskId| times[a] < times[b] || (times[a] == times[b] && a > b);
    for i in 1..sorted.len() {
        let id = sorted[i];
        let mut j = i;
        while j > 0 && after(sorted[j - 1], id) {
            sorted[j] = sorted[j - 1];
            j -= 1;
        }
        sorted[j] = id;
    }
}

impl CanonicalAllotment {
    /// Compute the canonical allotment for `ω`, or an error naming a task for
    /// which `ω` is unreachable (a certificate that `OPT > ω`).
    pub fn compute(instance: &Instance, omega: f64) -> Result<Self> {
        let allotment = Allotment::canonical(instance, omega)?;
        let times: Vec<f64> = (0..instance.task_count())
            .map(|t| allotment.time(instance, t))
            .collect();
        let total_work = allotment.total_work(instance);
        let sorted = sort_by_decreasing_time(&times);
        Ok(CanonicalAllotment {
            omega,
            allotment,
            times,
            total_work,
            sorted,
        })
    }

    /// Wrap an arbitrary (not necessarily canonical) allotment in the
    /// canonical data structure, deriving the per-task times, total work and
    /// sort order from it — used by the baselines to reuse the level packer
    /// on non-canonical allotments.
    pub fn from_allotment(instance: &Instance, allotment: Allotment, omega: f64) -> Self {
        let times: Vec<f64> = (0..allotment.len())
            .map(|t| allotment.time(instance, t))
            .collect();
        let total_work = allotment.total_work(instance);
        let sorted = sort_by_decreasing_time(&times);
        CanonicalAllotment {
            omega,
            allotment,
            times,
            total_work,
            sorted,
        }
    }

    /// Recompute the allotment for a new guess (and possibly a new instance)
    /// in place, reusing the existing buffers and repairing the cached sort
    /// order incrementally.  On `Err` (the guess is unreachable — a
    /// certificate that `OPT > ω`) the receiver is left untouched.
    pub fn recompute(&mut self, instance: &Instance, omega: f64) -> Result<()> {
        let n = instance.task_count();
        // First pass without mutation, so an unreachable deadline leaves the
        // receiver consistent with its previous guess.
        for (id, task) in instance.iter() {
            if task.canonical_processors(omega).is_none() {
                return Err(crate::error::Error::DeadlineUnreachable {
                    task: id,
                    deadline: omega,
                });
            }
        }
        let same_tasks = self.times.len() == n;
        let counts = self.allotment.processors_vec_mut();
        counts.resize(n, 1);
        self.times.resize(n, 0.0);
        let mut changed = !same_tasks;
        let mut total_work = 0.0;
        for (id, task) in instance.iter() {
            let q = task
                .canonical_processors(omega)
                .expect("checked in the first pass");
            let t = task.time(q);
            if counts[id] != q || self.times[id] != t {
                changed = true;
            }
            counts[id] = q;
            self.times[id] = t;
            total_work += q as f64 * t;
        }
        self.omega = omega;
        self.total_work = total_work;
        if !same_tasks {
            // A different task set: rebuild the order in place with a full
            // sort (the adaptive repair is only a win on nearly-sorted data).
            let times = &self.times;
            self.sorted.clear();
            self.sorted.extend(0..n);
            self.sorted
                .sort_unstable_by(|&a, &b| times[b].total_cmp(&times[a]).then(a.cmp(&b)));
        } else if changed {
            resort_by_decreasing_time(&mut self.sorted, &self.times);
        }
        Ok(())
    }

    /// Task identifiers sorted by decreasing canonical execution time (the
    /// order used by the canonical list algorithm and by the λ-area).  The
    /// permutation is cached at compute time and maintained incrementally by
    /// [`CanonicalAllotment::recompute`].
    pub fn sorted_by_decreasing_time(&self) -> &[TaskId] {
        &self.sorted
    }

    /// Total capacity of the owned buffers (allocation-tracking telemetry).
    pub(crate) fn buffer_capacity(&self) -> usize {
        self.allotment.buffer_capacity() + self.times.capacity() + self.sorted.capacity()
    }

    /// The canonical λ-area `S_m` (Definition 1 of the paper): run the
    /// canonical layout on an unbounded number of processors, tasks sorted by
    /// decreasing canonical time and placed side by side; `S_m` is the
    /// (fractional) area covered by the first `m` processor columns.
    ///
    /// When the canonical widths sum to less than `m`, the whole canonical
    /// work is returned.
    pub fn lambda_area(&self, m: usize) -> f64 {
        let mut width_used = 0usize;
        let mut area = 0.0f64;
        for &id in &self.sorted {
            let q = self.allotment.processors(id);
            let t = self.times[id];
            if width_used + q <= m {
                area += q as f64 * t;
                width_used += q;
                if width_used == m {
                    break;
                }
            } else {
                area += (m - width_used) as f64 * t;
                break;
            }
        }
        area
    }

    /// Whether the canonical λ-area condition `S_m ≤ λ·m·ω` of Theorem 2
    /// holds, i.e. whether the canonical-list branch is the one the paper
    /// prescribes for this instance and guess.
    pub fn satisfies_area_condition(&self, m: usize, lambda: f64) -> bool {
        self.lambda_area(m) <= lambda * m as f64 * self.omega + 1e-9
    }
}

/// Largest integer `k` with `k/(k+1) < λ`; a task whose canonical execution
/// time is at most `λ·ω` uses at most `k_star(λ) + 1` processors (a direct
/// consequence of Property 1).
pub fn k_star(lambda: f64) -> usize {
    assert!(
        (0.5..1.0 + 1e-12).contains(&lambda),
        "k_star expects λ in [1/2, 1], got {lambda}"
    );
    if lambda >= 1.0 {
        return usize::MAX >> 1;
    }
    let bound = lambda / (1.0 - lambda);
    let mut k = bound.floor() as usize;
    // Handle the boundary case where k/(k+1) == λ exactly.
    while k > 0 && (k as f64) / (k as f64 + 1.0) >= lambda - 1e-15 {
        k -= 1;
    }
    while ((k + 1) as f64) / ((k + 2) as f64) < lambda - 1e-15 {
        k += 1;
    }
    k
}

/// The "half" reallocation width `ĥ_λ = ⌈(k_λ + 1)/2⌉` used by the appendix:
/// shrinking a task of time ≤ λ·ω from its canonical count to `ĥ_λ`
/// processors at most doubles its execution time, keeping it below `2λ·ω`.
pub fn h_hat(lambda: f64) -> usize {
    (k_star(lambda) + 2) / 2
}

/// The minimal machine size `m_λ` for which Property 3 (first two levels of
/// the canonical list schedule finish before `2λ·ω`) is asserted.
///
/// Closed form reconstructed from Figure 8 of the paper (see the module
/// documentation): `m_λ = round((2λ + 2)/(4λ − 3))` for `λ ∈ (3/4, 1]`, anchored at
/// `m_{√3/2} = 8`, decreasing in `λ` and diverging as `λ → 3/4⁺`.  Returns
/// `None` for `λ ≤ 3/4`, where the paper's analysis does not apply.
pub fn m_lambda(lambda: f64) -> Option<usize> {
    if !(lambda > 0.75 && lambda <= 1.0 + 1e-12) {
        return None;
    }
    let value = (2.0 * lambda + 2.0) / (4.0 * lambda - 3.0);
    Some(value.round().max(3.0) as usize)
}

/// The canonical list algorithm as a dual approximation oracle.
///
/// Probing a guess `ω`:
/// * reject when the basic necessary conditions fail (certificate);
/// * otherwise allot every task its canonical count and list-schedule by
///   decreasing canonical time with the paper's tie-breaking convention.
///
/// Theorem 2 guarantees a makespan of at most `2λ·ω` when `S_m ≤ λ·m·ω` and
/// `m ≥ m_λ`; outside that regime the schedule is still valid, just without
/// the a-priori bound (the `mrt` module cross-checks the achieved makespan).
#[derive(Debug, Clone, Copy)]
pub struct CanonicalListAlgorithm {
    /// The shelf parameter λ used for reporting the guarantee (default `√3/2`).
    pub lambda: f64,
}

impl Default for CanonicalListAlgorithm {
    fn default() -> Self {
        CanonicalListAlgorithm {
            lambda: 3f64.sqrt() / 2.0,
        }
    }
}

impl CanonicalListAlgorithm {
    /// Build the canonical list schedule for a guess `ω` without the
    /// feasibility checks (used by the combined MRT scheduler).
    pub fn build(&self, instance: &Instance, omega: f64) -> Result<Schedule> {
        let canonical = CanonicalAllotment::compute(instance, omega)?;
        Ok(schedule_rigid(
            instance,
            &canonical.allotment,
            ListOrder::DecreasingAllottedTime,
        ))
    }
}

impl DualApproximation for CanonicalListAlgorithm {
    fn name(&self) -> &'static str {
        "canonical-list"
    }

    fn guarantee(&self, _instance: &Instance) -> f64 {
        2.0 * self.lambda
    }

    fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome {
        if !bounds::may_be_feasible(instance, omega) {
            return DualOutcome::Infeasible;
        }
        match self.build(instance, omega) {
            Ok(schedule) => DualOutcome::Feasible(schedule),
            Err(_) => DualOutcome::Infeasible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;
    use proptest::prelude::*;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![3.0, 1.6, 1.2, 0.95]).unwrap(),
                SpeedupProfile::new(vec![1.7, 0.9]).unwrap(),
                SpeedupProfile::sequential(0.8).unwrap(),
                SpeedupProfile::sequential(0.3).unwrap(),
                SpeedupProfile::linear(1.8, 4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn canonical_allotment_and_times() {
        let inst = instance();
        let c = CanonicalAllotment::compute(&inst, 1.0).unwrap();
        assert_eq!(c.allotment.as_slice(), &[4, 2, 1, 1, 2]);
        assert!((c.times[0] - 0.95).abs() < 1e-12);
        assert!((c.times[4] - 0.9).abs() < 1e-12);
        assert!(CanonicalAllotment::compute(&inst, 0.5).is_err());
    }

    #[test]
    fn cached_sort_order_is_decreasing_with_id_tiebreak() {
        let inst = instance();
        let c = CanonicalAllotment::compute(&inst, 1.0).unwrap();
        let order = c.sorted_by_decreasing_time();
        assert_eq!(order.len(), inst.task_count());
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                c.times[a] > c.times[b] || (c.times[a] == c.times[b] && a < b),
                "order {order:?} violates decreasing time with id tie-break"
            );
        }
    }

    #[test]
    fn recompute_matches_fresh_compute() {
        let inst = instance();
        let mut cached = CanonicalAllotment::compute(&inst, 2.0).unwrap();
        for omega in [1.0, 0.95, 1.4, 3.0, 1.0] {
            cached.recompute(&inst, omega).unwrap();
            let fresh = CanonicalAllotment::compute(&inst, omega).unwrap();
            assert_eq!(cached, fresh, "recompute diverged at ω = {omega}");
        }
        // An unreachable guess is rejected and leaves the cache untouched.
        let before = cached.clone();
        assert!(cached.recompute(&inst, 0.1).is_err());
        assert_eq!(cached, before);
        // A different instance (new task count) is handled by resizing.
        let other = Instance::from_profiles(
            vec![
                SpeedupProfile::sequential(0.4).unwrap(),
                SpeedupProfile::linear(2.0, 4).unwrap(),
            ],
            4,
        )
        .unwrap();
        cached.recompute(&other, 1.0).unwrap();
        assert_eq!(cached, CanonicalAllotment::compute(&other, 1.0).unwrap());
    }

    #[test]
    fn lambda_area_small_instance() {
        let inst = instance();
        let c = CanonicalAllotment::compute(&inst, 1.0).unwrap();
        // Canonical times are [0.95, 0.9, 0.8, 0.3, 0.9] with q = [4, 2, 1, 1, 2].
        // Sorted by decreasing canonical time, task 0 comes first and its four
        // canonical processors already fill the m = 4 columns, so
        // S_4 = 4 · 0.95 = 3.8.
        let s4 = c.lambda_area(4);
        assert!((s4 - 3.8).abs() < 1e-9, "got {s4}");
        // With unbounded columns the area equals the total canonical work.
        let total = c.lambda_area(1000);
        assert!((total - c.total_work).abs() < 1e-9);
    }

    #[test]
    fn area_condition_matches_direct_comparison() {
        let inst = instance();
        let c = CanonicalAllotment::compute(&inst, 1.0).unwrap();
        let m = inst.processors();
        for lambda in [0.8, 0.9, 1.0] {
            assert_eq!(
                c.satisfies_area_condition(m, lambda),
                c.lambda_area(m) <= lambda * m as f64 + 1e-9
            );
        }
    }

    #[test]
    fn k_star_values() {
        // λ = 0.8: 3/4 = 0.75 < 0.8 but 4/5 = 0.8 is not < 0.8, so k* = 3.
        assert_eq!(k_star(0.8), 3);
        // λ = √3/2 ≈ 0.866: 6/7 ≈ 0.857 < λ < 7/8 = 0.875, so k* = 6.
        assert_eq!(k_star(3f64.sqrt() / 2.0), 6);
        // λ = 0.51: 1/2 < 0.51 but 2/3 > 0.51, so k* = 1.
        assert_eq!(k_star(0.51), 1);
    }

    #[test]
    fn h_hat_values() {
        // k*(√3/2) = 6, so ĥ = ⌈7/2⌉ = 4.
        assert_eq!(h_hat(3f64.sqrt() / 2.0), 4);
        // k*(0.8) = 3, so ĥ = ⌈4/2⌉ = 2.
        assert_eq!(h_hat(0.8), 2);
    }

    #[test]
    fn h_hat_is_half_of_kstar_plus_one_rounded_up() {
        for lambda in [0.76, 0.8, 0.85, 3f64.sqrt() / 2.0, 0.9, 0.95] {
            let k = k_star(lambda);
            assert_eq!(h_hat(lambda), (k + 1).div_ceil(2));
        }
    }

    #[test]
    fn m_lambda_anchor_points() {
        // Anchor from Figure 8: m_λ = 8 at λ = √3/2.
        assert_eq!(m_lambda(3f64.sqrt() / 2.0), Some(8));
        // Decreasing in λ.
        let values: Vec<usize> = [0.78, 0.82, 0.87, 0.92, 0.97, 1.0]
            .iter()
            .map(|&l| m_lambda(l).unwrap())
            .collect();
        for w in values.windows(2) {
            assert!(w[0] >= w[1], "m_lambda must be non-increasing: {values:?}");
        }
        // Diverges towards λ = 3/4 and is undefined below.
        assert!(m_lambda(0.76).unwrap() > 20);
        assert_eq!(m_lambda(0.75), None);
        assert_eq!(m_lambda(0.5), None);
    }

    #[test]
    fn canonical_list_produces_valid_schedules() {
        let inst = instance();
        let algo = CanonicalListAlgorithm::default();
        let schedule = algo.build(&inst, 1.0).unwrap();
        assert!(schedule.validate(&inst).is_ok());
        // All tasks present, makespan at least the lower bound.
        assert_eq!(schedule.len(), inst.task_count());
        assert!(schedule.makespan() >= bounds::lower_bound(&inst) - 1e-9);
    }

    #[test]
    fn canonical_list_dual_probe_rejects_tiny_omega() {
        let inst = instance();
        let algo = CanonicalListAlgorithm::default();
        assert!(!algo.probe(&inst, 0.1).is_feasible());
        assert!(algo.probe(&inst, 2.0).is_feasible());
    }

    proptest! {
        /// The λ-area is monotone in m and bounded by the total canonical work.
        #[test]
        fn lambda_area_monotone(
            works in prop::collection::vec(0.2f64..3.0, 1..20),
            m in 2usize..12,
        ) {
            let profiles: Vec<SpeedupProfile> = works
                .iter()
                .map(|&w| SpeedupProfile::linear(w, m).unwrap())
                .collect();
            let inst = Instance::from_profiles(profiles, m).unwrap();
            let omega = bounds::upper_bound(&inst);
            let c = CanonicalAllotment::compute(&inst, omega).unwrap();
            let mut previous = 0.0;
            for cols in 1..=m {
                let area = c.lambda_area(cols);
                prop_assert!(area + 1e-9 >= previous);
                prop_assert!(area <= c.total_work + 1e-9);
                previous = area;
            }
        }

        /// Theorem 2 regime check: when the area condition holds and m ≥ m_λ,
        /// the canonical list schedule at a feasible ω stays below 2λω.
        #[test]
        fn theorem_two_regime_respected(
            seed_works in prop::collection::vec(0.05f64..0.5, 5..40),
            m in 8usize..24,
        ) {
            // Small sequential-ish tasks: the canonical allotment at ω = LB·1.05
            // is all-sequential, the area condition holds easily, and the list
            // schedule must stay below 2λω.
            let profiles: Vec<SpeedupProfile> = seed_works
                .iter()
                .map(|&w| SpeedupProfile::sequential(w).unwrap())
                .collect();
            let inst = Instance::from_profiles(profiles, m).unwrap();
            let omega = bounds::lower_bound(&inst) * 1.05;
            let lambda = 3f64.sqrt() / 2.0;
            if let Ok(c) = CanonicalAllotment::compute(&inst, omega) {
                if c.satisfies_area_condition(m, lambda) && m >= m_lambda(lambda).unwrap() {
                    let algo = CanonicalListAlgorithm::default();
                    let schedule = algo.build(&inst, omega).unwrap();
                    prop_assert!(schedule.validate(&inst).is_ok());
                    prop_assert!(
                        schedule.makespan() <= 2.0 * lambda * omega + 1e-9,
                        "makespan {} exceeds 2λω = {}",
                        schedule.makespan(),
                        2.0 * lambda * omega
                    );
                }
            }
        }
    }
}
