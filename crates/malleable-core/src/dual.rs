//! Dual approximation algorithms and the binary search driving them.
//!
//! Following Hochbaum & Shmoys (and §2.2 of the paper), a *dual
//! ρ-approximation* receives a guess `ω` of the optimal makespan and either
//! returns a schedule of length at most `ρ·ω` or correctly reports that no
//! schedule of length at most `ω` exists.  A dichotomic search over `ω`
//! converts such an oracle into a `ρ(1 + 2^{-k})`-approximation after `k`
//! probes.
//!
//! The driver below additionally keeps the best schedule seen over all probes
//! and the largest ω it certified infeasible, so the caller gets both a
//! schedule and a *certified* lower bound on the optimum — the ratio of the
//! two is an instance-specific a-posteriori guarantee that is usually much
//! better than the worst-case ρ.

use crate::bounds;
use crate::breakpoints;
use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::workspace::ProbeWorkspace;

/// Outcome of one dual-approximation probe at a guess `ω`.
#[derive(Debug, Clone)]
pub enum DualOutcome {
    /// A schedule of length at most `ρ·ω` was constructed.
    Feasible(Schedule),
    /// No schedule of length at most `ω` exists (a certificate, not a failure).
    Infeasible,
}

impl DualOutcome {
    /// Whether this outcome carries a schedule.
    pub fn is_feasible(&self) -> bool {
        matches!(self, DualOutcome::Feasible(_))
    }
}

/// A dual approximation algorithm for the malleable scheduling problem.
pub trait DualApproximation {
    /// A short human-readable name (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// The worst-case guarantee ρ of the algorithm on the given instance
    /// (some guarantees depend on `m`, e.g. `√3 + 3/(m+1)`).
    fn guarantee(&self, instance: &Instance) -> f64;

    /// Probe the guess `ω`.
    fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome;

    /// Probe the guess `ω`, reusing the buffers of `workspace` across probes.
    ///
    /// The default implementation delegates to [`DualApproximation::probe`];
    /// algorithms with allocation-heavy probes (the combined MRT scheduler)
    /// override it to reuse the canonical-allotment cache, the packing
    /// scratch and the knapsack DP tables between probes.
    fn probe_with_workspace(
        &self,
        instance: &Instance,
        omega: f64,
        workspace: &mut ProbeWorkspace,
    ) -> DualOutcome {
        let _ = workspace;
        self.probe(instance, omega)
    }
}

/// Result of a dual-approximation binary search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best (shortest) schedule found over all probes.
    pub schedule: Schedule,
    /// The largest guess that was certified infeasible, combined with the
    /// static lower bounds of [`bounds::lower_bound`]; the optimum makespan is
    /// at least this value.
    pub certified_lower_bound: f64,
    /// The smallest guess for which a schedule was obtained.
    pub feasible_omega: f64,
    /// Number of probes performed.
    pub probes: usize,
    /// Whether the wall-clock budget ([`DualSearch::time_budget`]) expired
    /// and truncated the search.
    pub time_budget_exhausted: bool,
    /// Wall time of the whole search, measured on the workspace-wide
    /// monotonic clock ([`telemetry::SpanTimer`]) — the same timer that
    /// enforces [`DualSearch::time_budget`], so budget checks and the
    /// reported duration can never disagree.
    pub wall_time: std::time::Duration,
}

impl SearchResult {
    /// The a-posteriori approximation ratio `makespan / certified lower bound`.
    pub fn ratio(&self) -> f64 {
        if self.certified_lower_bound <= 0.0 {
            return 1.0;
        }
        self.schedule.makespan() / self.certified_lower_bound
    }
}

/// How the dichotomic search picks its probe points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Blind `f64` midpoint bisection of §2.2 (the classical search).
    #[default]
    Bisect,
    /// Bisection over the index space of the oracle's breakpoints (the
    /// per-task canonical times plus the work/width feasibility kinks, see
    /// [`crate::breakpoints`]).  The oracle's answer only changes at
    /// breakpoints, so `⌈log₂(n·m)⌉ + O(1)` probes replace the fixed
    /// iteration budget, and the certified lower bound is exact at a
    /// breakpoint instead of tolerance-limited.
    Exact,
}

impl SearchMode {
    /// Stable name used in reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            SearchMode::Bisect => "bisect",
            SearchMode::Exact => "exact",
        }
    }
}

/// Probe budget of the quality-descent phase of [`SearchMode::Exact`]: after
/// the breakpoint bisection has pinned the oracle's feasibility threshold,
/// up to this many classical midpoint probes sweep the feasible region for
/// *schedule quality* (branch quality, unlike feasibility, is not constant
/// between breakpoints — the two-shelf construction moves continuously with
/// ω).  Part of the `O(1)` in the exact mode's `⌈log₂(n·m)⌉ + O(1)` probe
/// bound.
pub const EXACT_QUALITY_PROBES: usize = 12;

/// Configuration of the dichotomic search.
#[derive(Debug, Clone, Copy)]
pub struct DualSearch {
    /// Number of bisection iterations (`k`); the interval shrinks by `2^{-k}`.
    pub iterations: usize,
    /// Stop early once the relative width of the interval drops below this.
    pub relative_tolerance: f64,
    /// Hard cap on the total oracle probes of one solve, counted across every
    /// phase (both search modes and the exact mode's quality descent); `None`
    /// is unbounded.  The probes needed to establish the first feasible guess
    /// are exempt — without one there is no schedule to return — so a solve
    /// can exceed the cap by the climb probes (one, when the static upper
    /// bound is accepted).  Truncating the search early never invalidates the
    /// certified lower bound; it only costs refinement.
    pub max_probes: Option<usize>,
    /// Wall-clock budget of one solve, enforced at the same points as
    /// [`DualSearch::max_probes`] (checked before each refinement probe; the
    /// climb to the first feasible guess is exempt for the same reason).  A
    /// solve can overrun by at most one oracle probe.  `None` is unbounded.
    pub time_budget: Option<std::time::Duration>,
}

impl Default for DualSearch {
    fn default() -> Self {
        DualSearch {
            iterations: 30,
            relative_tolerance: 1e-6,
            max_probes: None,
            time_budget: None,
        }
    }
}

/// Probe bookkeeping shared by every phase of the search driver: the probe
/// counter, the best (shortest) schedule seen with its cached makespan, and
/// the smallest guess accepted so far.  Factoring it out is what lets the
/// climb, bisection, breakpoint and quality-descent phases share one oracle
/// call site instead of four hand-rolled copies.
struct SearchState<'a> {
    instance: &'a Instance,
    algorithm: &'a dyn DualApproximation,
    probes: usize,
    best: Option<Schedule>,
    best_makespan: f64,
    feasible_omega: f64,
    /// When the solve started — one [`telemetry::SpanTimer`] serves both the
    /// wall-clock budget checks and the reported [`SearchResult::wall_time`].
    started: telemetry::SpanTimer,
    /// Set once the wall-clock budget truncated a phase.
    time_budget_exhausted: bool,
}

/// What one bookkept probe observed.
struct ProbeStep {
    /// The oracle accepted the guess.
    feasible: bool,
    /// The probe's schedule improved on the best seen so far.
    improved: bool,
}

impl<'a> SearchState<'a> {
    fn new(instance: &'a Instance, algorithm: &'a dyn DualApproximation) -> Self {
        SearchState {
            instance,
            algorithm,
            probes: 0,
            best: None,
            best_makespan: f64::INFINITY,
            feasible_omega: f64::INFINITY,
            started: telemetry::SpanTimer::start(),
            time_budget_exhausted: false,
        }
    }

    /// Probe `omega` and fold the outcome into the running state.
    fn probe(&mut self, omega: f64, workspace: &mut ProbeWorkspace) -> ProbeStep {
        self.probes += 1;
        match self
            .algorithm
            .probe_with_workspace(self.instance, omega, workspace)
        {
            DualOutcome::Feasible(s) => {
                self.feasible_omega = self.feasible_omega.min(omega);
                let makespan = s.makespan();
                let improved = makespan < self.best_makespan;
                if improved {
                    self.best_makespan = makespan;
                    self.best = Some(s);
                }
                ProbeStep {
                    feasible: true,
                    improved,
                }
            }
            DualOutcome::Infeasible => ProbeStep {
                feasible: false,
                improved: false,
            },
        }
    }

    /// A-posteriori ratio already 1: the best schedule matches the certified
    /// bound, no probe can improve either side.
    fn gap_closed(&self, lo: f64) -> bool {
        self.best_makespan <= lo * (1.0 + 1e-9)
    }

    fn into_result(self, certified_lower_bound: f64) -> Result<SearchResult> {
        let schedule = self.best.ok_or(Error::NoFeasibleSchedule)?;
        Ok(SearchResult {
            schedule,
            certified_lower_bound,
            feasible_omega: self.feasible_omega,
            probes: self.probes,
            time_budget_exhausted: self.time_budget_exhausted,
            wall_time: self.started.elapsed(),
        })
    }
}

impl DualSearch {
    /// A search with a fixed number of iterations and no early stop.
    pub fn with_iterations(iterations: usize) -> Self {
        DualSearch {
            iterations,
            relative_tolerance: 0.0,
            ..Default::default()
        }
    }

    /// A default search with a hard probe cap (see [`DualSearch::max_probes`]).
    pub fn with_probe_cap(max_probes: usize) -> Self {
        DualSearch {
            max_probes: Some(max_probes),
            ..Default::default()
        }
    }

    /// Whether the probe cap or the wall-clock budget is exhausted (records
    /// time exhaustion in the state so the result can report it).
    fn out_of_budget(&self, state: &mut SearchState<'_>) -> bool {
        if self.max_probes.is_some_and(|cap| state.probes >= cap) {
            return true;
        }
        if self
            .time_budget
            .is_some_and(|budget| state.started.elapsed() >= budget)
        {
            state.time_budget_exhausted = true;
            return true;
        }
        false
    }

    /// Run the dichotomic search of §2.2 on `algorithm`.
    ///
    /// The initial interval is `[LB, UB]` from the [`bounds`] module.  If the
    /// algorithm rejects even the guaranteed-feasible upper bound (which a
    /// correct dual approximation never should), the upper end is doubled a
    /// few times before giving up with [`Error::NoFeasibleSchedule`].
    ///
    /// This and the other `solve_*` names are thin forwarding wrappers around
    /// the one core driver, [`DualSearch::solve_guided`].
    pub fn solve(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
    ) -> Result<SearchResult> {
        self.solve_in(instance, algorithm, &mut ProbeWorkspace::new())
    }

    /// Same as [`DualSearch::solve`], reusing `workspace` across probes.
    pub fn solve_in(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SearchResult> {
        self.solve_guided(instance, algorithm, SearchMode::Bisect, None, workspace)
    }

    /// Run the search in breakpoint-exact mode (see [`SearchMode::Exact`]).
    pub fn solve_exact(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
    ) -> Result<SearchResult> {
        self.solve_exact_in(instance, algorithm, &mut ProbeWorkspace::new())
    }

    /// Same as [`DualSearch::solve_exact`], reusing `workspace` across probes.
    pub fn solve_exact_in(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SearchResult> {
        self.solve_guided(instance, algorithm, SearchMode::Exact, None, workspace)
    }

    /// The core driver every other `solve_*` entry point forwards to: run the
    /// search in the given mode, with an optional warm-start hint for the
    /// upper end of the interval (a guess believed feasible, e.g. scaled over
    /// from the previous epoch of an online re-planner).  A hint below the
    /// true threshold only costs the doubling probes needed to climb back;
    /// correctness is unaffected.
    pub fn solve_guided(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
        mode: SearchMode,
        upper_hint: Option<f64>,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SearchResult> {
        // The static lower bound is computed once per solve (it is itself a
        // bisection over the feasibility conditions) and reused both as the
        // initial `lo` and as the certified-bound floor.
        let static_lb = bounds::lower_bound(instance);
        let mut lo = static_lb;
        let mut hi = bounds::upper_bound(instance).max(lo);
        if let Some(hint) = upper_hint {
            if hint.is_finite() && hint > 0.0 {
                hi = hi.min(hint.max(lo));
            }
        }

        let mut state = SearchState::new(instance, algorithm);
        self.climb_to_feasible(&mut state, &mut lo, &mut hi, workspace)?;
        match mode {
            SearchMode::Bisect => self.bisect_phase(&mut state, &mut lo, &mut hi, workspace),
            SearchMode::Exact => self.exact_phase(&mut state, &mut lo, hi, workspace),
        }
        state.into_result(lo)
    }

    /// Ensure the upper end of the interval is actually accepted by the
    /// oracle, doubling past a lowball warm-start hint when necessary.
    fn climb_to_feasible(
        &self,
        state: &mut SearchState<'_>,
        lo: &mut f64,
        hi: &mut f64,
        workspace: &mut ProbeWorkspace,
    ) -> Result<()> {
        let mut attempts = 0;
        loop {
            if state.probe(*hi, workspace).feasible {
                return Ok(());
            }
            *lo = lo.max(*hi);
            *hi *= 2.0;
            attempts += 1;
            if attempts > 16 {
                return Err(Error::NoFeasibleSchedule);
            }
        }
    }

    /// The classical `f64` midpoint bisection of §2.2.
    fn bisect_phase(
        &self,
        state: &mut SearchState<'_>,
        lo: &mut f64,
        hi: &mut f64,
        workspace: &mut ProbeWorkspace,
    ) {
        for _ in 0..self.iterations {
            if self.out_of_budget(state)
                || *hi - *lo <= self.relative_tolerance * hi.max(1e-12)
                || state.gap_closed(*lo)
            {
                break;
            }
            let mid = 0.5 * (*lo + *hi);
            if state.probe(mid, workspace).feasible {
                *hi = mid;
            } else {
                *lo = mid;
            }
        }
    }

    /// Breakpoint-index bisection plus the bounded quality descent of
    /// [`SearchMode::Exact`].
    fn exact_phase(
        &self,
        state: &mut SearchState<'_>,
        lo: &mut f64,
        hi: f64,
        workspace: &mut ProbeWorkspace,
    ) {
        // Bisect over breakpoint indices: feasibility is constant between
        // consecutive candidates, so the smallest feasible candidate is the
        // oracle's true threshold.
        let candidates = breakpoints::search_candidates(state.instance, *lo, hi);
        let mut hi_idx = candidates.len() - 1; // == hi, probed feasible
        let mut lo_idx: Option<usize> = None;
        while lo_idx.map_or(0, |k| k + 1) < hi_idx {
            if self.out_of_budget(state) || state.gap_closed(*lo) {
                break;
            }
            let mid = (lo_idx.map_or(0, |k| k + 1) + hi_idx) / 2;
            if state.probe(candidates[mid], workspace).feasible {
                hi_idx = mid;
            } else {
                lo_idx = Some(mid);
            }
        }
        if let Some(k) = lo_idx {
            // The candidate set makes the *necessary feasibility conditions*
            // piecewise-constant, so verifying them at one interior point
            // certifies the whole half-open interval: if they fail there,
            // `OPT ≥ candidates[hi_idx]` exactly.  An oracle may also reject
            // for non-certificate reasons (ablation branch subsets, custom
            // oracles) whose thresholds are not in the candidate set — in
            // that case only the probed guess itself is a (claimed)
            // certificate, the classical bisection semantics.
            let interior = 0.5 * (candidates[k] + candidates[hi_idx]);
            if !bounds::may_be_feasible(state.instance, interior) {
                *lo = lo.max(candidates[hi_idx].min(state.best_makespan));
            } else {
                *lo = lo.max(candidates[k]);
            }
        }

        // Quality descent: the certified bound is already exact, but branch
        // quality (unlike feasibility) is not constant between breakpoints —
        // the two-shelf construction moves continuously with ω.  Spend a
        // small bounded budget on the classical midpoint descent through the
        // known-feasible region; in the common case where the threshold sits
        // at the static bound, this retraces the bisection search's own probe
        // points.
        let mut quality_hi = hi;
        let quality_lo = state.feasible_omega;
        let mut stale = 0usize;
        for _ in 0..EXACT_QUALITY_PROBES {
            // Stop on a stale streak, a closed a-posteriori gap, or a region
            // already narrower than the search tolerance (the same stopping
            // rule the bisection mode uses) — the last is what keeps
            // warm-started epoch re-solves cheap.
            if self.out_of_budget(state)
                || stale >= 8
                || state.gap_closed(*lo)
                || quality_hi - quality_lo
                    <= self.relative_tolerance.max(1e-9) * quality_hi.max(1e-12)
            {
                break;
            }
            let mid = 0.5 * (quality_lo + quality_hi);
            let step = state.probe(mid, workspace);
            if !step.feasible {
                // Above the certified threshold every guess is feasible for a
                // monotone oracle; stop rather than fight a non-monotone one.
                break;
            }
            quality_hi = mid;
            if step.improved {
                stale = 0;
            } else {
                stale += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allotment::Allotment;
    use crate::list::{schedule_rigid, ListOrder};
    use crate::task::SpeedupProfile;

    /// A deliberately simple dual 2-approximation used to exercise the search:
    /// canonical allotment + list scheduling, rejecting ω when the canonical
    /// allotment does not exist or violates the area bound (Property 2).
    struct CanonicalListOracle;

    impl DualApproximation for CanonicalListOracle {
        fn name(&self) -> &'static str {
            "canonical-list-test-oracle"
        }

        fn guarantee(&self, _instance: &Instance) -> f64 {
            2.0
        }

        fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome {
            if !bounds::may_be_feasible(instance, omega) {
                return DualOutcome::Infeasible;
            }
            let allotment = match Allotment::canonical(instance, omega) {
                Ok(a) => a,
                Err(_) => return DualOutcome::Infeasible,
            };
            DualOutcome::Feasible(schedule_rigid(
                instance,
                &allotment,
                ListOrder::DecreasingAllottedTime,
            ))
        }
    }

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![4.0, 2.2, 1.6, 1.4]).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.8]).unwrap(),
                SpeedupProfile::sequential(0.7).unwrap(),
                SpeedupProfile::linear(2.4, 4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn search_produces_valid_schedule_and_bounds() {
        let inst = instance();
        let result = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(result.schedule.validate(&inst).is_ok());
        assert!(result.certified_lower_bound > 0.0);
        assert!(result.schedule.makespan() >= result.certified_lower_bound - 1e-9);
        assert!(result.ratio() <= 2.0 + 1e-6, "ratio was {}", result.ratio());
        assert!(result.probes >= 2);
    }

    #[test]
    fn more_iterations_never_worsen_the_result() {
        let inst = instance();
        let coarse = DualSearch::with_iterations(2)
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        let fine = DualSearch::with_iterations(40)
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(fine.schedule.makespan() <= coarse.schedule.makespan() + 1e-9);
        assert!(fine.certified_lower_bound >= coarse.certified_lower_bound - 1e-9);
    }

    #[test]
    fn single_task_converges_to_its_best_time() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::linear(8.0, 4).unwrap()], 4).unwrap();
        let result = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        // The only schedule is the task alone; optimum is t(4) = 2.0.
        assert!((result.schedule.makespan() - 2.0).abs() < 1e-6);
        assert!((result.certified_lower_bound - 2.0).abs() < 1e-3);
    }

    #[test]
    fn search_mode_names_are_stable() {
        assert_eq!(SearchMode::Bisect.name(), "bisect");
        assert_eq!(SearchMode::Exact.name(), "exact");
        assert_eq!(SearchMode::default(), SearchMode::Bisect);
    }

    #[test]
    fn exact_mode_solves_the_test_oracle_with_fewer_probes() {
        let inst = instance();
        let bisect = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        let exact = DualSearch::default()
            .solve_exact(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(exact.schedule.validate(&inst).is_ok());
        assert!(exact.certified_lower_bound >= bisect.certified_lower_bound - 1e-9);
        assert!(
            exact.probes < bisect.probes,
            "exact used {} probes, bisect {}",
            exact.probes,
            bisect.probes
        );
        assert!(exact.schedule.makespan() >= exact.certified_lower_bound - 1e-9);
    }

    #[test]
    fn solve_guided_accepts_upper_hints() {
        let inst = instance();
        let base = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        let mut ws = ProbeWorkspace::new();
        // A hint just above the known-feasible guess narrows the interval.
        let hinted = DualSearch::default()
            .solve_guided(
                &inst,
                &CanonicalListOracle,
                SearchMode::Bisect,
                Some(base.feasible_omega * 1.01),
                &mut ws,
            )
            .unwrap();
        assert!(hinted.schedule.validate(&inst).is_ok());
        assert!(hinted.probes <= base.probes);
        // An absurd lowball hint is recovered by the doubling climb.
        let lowball = DualSearch::default()
            .solve_guided(
                &inst,
                &CanonicalListOracle,
                SearchMode::Exact,
                Some(1e-12),
                &mut ws,
            )
            .unwrap();
        assert!(lowball.schedule.validate(&inst).is_ok());
    }

    #[test]
    fn time_budget_truncates_but_stays_valid() {
        let inst = instance();
        for mode in [SearchMode::Bisect, SearchMode::Exact] {
            // A zero budget expires before the first refinement probe: only
            // the climb (exempt, it produces the schedule) runs.
            let search = DualSearch {
                time_budget: Some(std::time::Duration::ZERO),
                ..Default::default()
            };
            let result = search
                .solve_guided(
                    &inst,
                    &CanonicalListOracle,
                    mode,
                    None,
                    &mut ProbeWorkspace::new(),
                )
                .unwrap();
            assert!(result.time_budget_exhausted, "{mode:?}");
            assert_eq!(result.probes, 1, "{mode:?}: climb only");
            assert!(result.schedule.validate(&inst).is_ok());
            assert!(result.schedule.makespan() >= result.certified_lower_bound - 1e-9);
        }
        // A generous budget never truncates.
        let search = DualSearch {
            time_budget: Some(std::time::Duration::from_secs(3600)),
            ..Default::default()
        };
        let result = search.solve(&inst, &CanonicalListOracle).unwrap();
        assert!(!result.time_budget_exhausted);
        assert!(result.probes >= 2);
    }

    /// Monotonicity of the oracle: feasible at ω implies feasible at ω' ≥ ω.
    #[test]
    fn oracle_is_monotone() {
        let inst = instance();
        let oracle = CanonicalListOracle;
        let omegas = [0.5, 1.0, 1.5, 2.0, 3.0, 5.0];
        let outcomes: Vec<bool> = omegas
            .iter()
            .map(|&w| oracle.probe(&inst, w).is_feasible())
            .collect();
        for w in outcomes.windows(2) {
            assert!(!w[0] || w[1], "feasibility must be monotone in ω");
        }
    }
}
