//! Dual approximation algorithms and the binary search driving them.
//!
//! Following Hochbaum & Shmoys (and §2.2 of the paper), a *dual
//! ρ-approximation* receives a guess `ω` of the optimal makespan and either
//! returns a schedule of length at most `ρ·ω` or correctly reports that no
//! schedule of length at most `ω` exists.  A dichotomic search over `ω`
//! converts such an oracle into a `ρ(1 + 2^{-k})`-approximation after `k`
//! probes.
//!
//! The driver below additionally keeps the best schedule seen over all probes
//! and the largest ω it certified infeasible, so the caller gets both a
//! schedule and a *certified* lower bound on the optimum — the ratio of the
//! two is an instance-specific a-posteriori guarantee that is usually much
//! better than the worst-case ρ.

use crate::bounds;
use crate::breakpoints;
use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::schedule::Schedule;
use crate::workspace::ProbeWorkspace;

/// Outcome of one dual-approximation probe at a guess `ω`.
#[derive(Debug, Clone)]
pub enum DualOutcome {
    /// A schedule of length at most `ρ·ω` was constructed.
    Feasible(Schedule),
    /// No schedule of length at most `ω` exists (a certificate, not a failure).
    Infeasible,
}

impl DualOutcome {
    /// Whether this outcome carries a schedule.
    pub fn is_feasible(&self) -> bool {
        matches!(self, DualOutcome::Feasible(_))
    }
}

/// A dual approximation algorithm for the malleable scheduling problem.
pub trait DualApproximation {
    /// A short human-readable name (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// The worst-case guarantee ρ of the algorithm on the given instance
    /// (some guarantees depend on `m`, e.g. `√3 + 3/(m+1)`).
    fn guarantee(&self, instance: &Instance) -> f64;

    /// Probe the guess `ω`.
    fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome;

    /// Probe the guess `ω`, reusing the buffers of `workspace` across probes.
    ///
    /// The default implementation delegates to [`DualApproximation::probe`];
    /// algorithms with allocation-heavy probes (the combined MRT scheduler)
    /// override it to reuse the canonical-allotment cache, the packing
    /// scratch and the knapsack DP tables between probes.
    fn probe_with_workspace(
        &self,
        instance: &Instance,
        omega: f64,
        workspace: &mut ProbeWorkspace,
    ) -> DualOutcome {
        let _ = workspace;
        self.probe(instance, omega)
    }
}

/// Result of a dual-approximation binary search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best (shortest) schedule found over all probes.
    pub schedule: Schedule,
    /// The largest guess that was certified infeasible, combined with the
    /// static lower bounds of [`bounds::lower_bound`]; the optimum makespan is
    /// at least this value.
    pub certified_lower_bound: f64,
    /// The smallest guess for which a schedule was obtained.
    pub feasible_omega: f64,
    /// Number of probes performed.
    pub probes: usize,
}

impl SearchResult {
    /// The a-posteriori approximation ratio `makespan / certified lower bound`.
    pub fn ratio(&self) -> f64 {
        if self.certified_lower_bound <= 0.0 {
            return 1.0;
        }
        self.schedule.makespan() / self.certified_lower_bound
    }
}

/// How the dichotomic search picks its probe points.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearchMode {
    /// Blind `f64` midpoint bisection of §2.2 (the classical search).
    #[default]
    Bisect,
    /// Bisection over the index space of the oracle's breakpoints (the
    /// per-task canonical times plus the work/width feasibility kinks, see
    /// [`crate::breakpoints`]).  The oracle's answer only changes at
    /// breakpoints, so `⌈log₂(n·m)⌉ + O(1)` probes replace the fixed
    /// iteration budget, and the certified lower bound is exact at a
    /// breakpoint instead of tolerance-limited.
    Exact,
}

impl SearchMode {
    /// Stable name used in reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            SearchMode::Bisect => "bisect",
            SearchMode::Exact => "exact",
        }
    }
}

/// Probe budget of the quality-descent phase of [`SearchMode::Exact`]: after
/// the breakpoint bisection has pinned the oracle's feasibility threshold,
/// up to this many classical midpoint probes sweep the feasible region for
/// *schedule quality* (branch quality, unlike feasibility, is not constant
/// between breakpoints — the two-shelf construction moves continuously with
/// ω).  Part of the `O(1)` in the exact mode's `⌈log₂(n·m)⌉ + O(1)` probe
/// bound.
pub const EXACT_QUALITY_PROBES: usize = 12;

/// Configuration of the dichotomic search.
#[derive(Debug, Clone, Copy)]
pub struct DualSearch {
    /// Number of bisection iterations (`k`); the interval shrinks by `2^{-k}`.
    pub iterations: usize,
    /// Stop early once the relative width of the interval drops below this.
    pub relative_tolerance: f64,
}

impl Default for DualSearch {
    fn default() -> Self {
        DualSearch {
            iterations: 30,
            relative_tolerance: 1e-6,
        }
    }
}

impl DualSearch {
    /// A search with a fixed number of iterations and no early stop.
    pub fn with_iterations(iterations: usize) -> Self {
        DualSearch {
            iterations,
            relative_tolerance: 0.0,
        }
    }

    /// Run the dichotomic search of §2.2 on `algorithm`.
    ///
    /// The initial interval is `[LB, UB]` from the [`bounds`] module.  If the
    /// algorithm rejects even the guaranteed-feasible upper bound (which a
    /// correct dual approximation never should), the upper end is doubled a
    /// few times before giving up with [`Error::NoFeasibleSchedule`].
    pub fn solve(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
    ) -> Result<SearchResult> {
        self.solve_in(instance, algorithm, &mut ProbeWorkspace::new())
    }

    /// Same as [`DualSearch::solve`], reusing `workspace` across probes.
    pub fn solve_in(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SearchResult> {
        self.solve_guided(instance, algorithm, SearchMode::Bisect, None, workspace)
    }

    /// Run the search in breakpoint-exact mode (see [`SearchMode::Exact`]).
    pub fn solve_exact(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
    ) -> Result<SearchResult> {
        self.solve_exact_in(instance, algorithm, &mut ProbeWorkspace::new())
    }

    /// Same as [`DualSearch::solve_exact`], reusing `workspace` across probes.
    pub fn solve_exact_in(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SearchResult> {
        self.solve_guided(instance, algorithm, SearchMode::Exact, None, workspace)
    }

    /// The full-control entry point: run the search in the given mode, with
    /// an optional warm-start hint for the upper end of the interval (a guess
    /// believed feasible, e.g. scaled over from the previous epoch of an
    /// online re-planner).  A hint below the true threshold only costs the
    /// doubling probes needed to climb back; correctness is unaffected.
    pub fn solve_guided(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
        mode: SearchMode,
        upper_hint: Option<f64>,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SearchResult> {
        // The static lower bound is computed once per solve (it is itself a
        // bisection over the feasibility conditions) and reused both as the
        // initial `lo` and as the certified-bound floor.
        let static_lb = bounds::lower_bound(instance);
        let mut lo = static_lb;
        let mut hi = bounds::upper_bound(instance).max(lo);
        if let Some(hint) = upper_hint {
            if hint.is_finite() && hint > 0.0 {
                hi = hi.min(hint.max(lo));
            }
        }

        let mut probes = 0usize;
        let mut best: Option<Schedule>;
        let mut best_makespan: f64;
        let mut feasible_omega: f64;

        // Ensure the upper end is actually accepted by the oracle.
        let mut attempts = 0;
        loop {
            probes += 1;
            match algorithm.probe_with_workspace(instance, hi, workspace) {
                DualOutcome::Feasible(s) => {
                    feasible_omega = hi;
                    best_makespan = s.makespan();
                    best = Some(s);
                    break;
                }
                DualOutcome::Infeasible => {
                    lo = lo.max(hi);
                    hi *= 2.0;
                    attempts += 1;
                    if attempts > 16 {
                        return Err(Error::NoFeasibleSchedule);
                    }
                }
            }
        }

        match mode {
            SearchMode::Bisect => {
                for _ in 0..self.iterations {
                    if hi - lo <= self.relative_tolerance * hi.max(1e-12) {
                        break;
                    }
                    // A-posteriori ratio already 1: the best schedule matches
                    // the certified bound, no probe can improve either side.
                    if best_makespan <= lo * (1.0 + 1e-9) {
                        break;
                    }
                    let mid = 0.5 * (lo + hi);
                    probes += 1;
                    match algorithm.probe_with_workspace(instance, mid, workspace) {
                        DualOutcome::Feasible(s) => {
                            feasible_omega = feasible_omega.min(mid);
                            hi = mid;
                            let makespan = s.makespan();
                            if makespan < best_makespan {
                                best_makespan = makespan;
                                best = Some(s);
                            }
                        }
                        DualOutcome::Infeasible => {
                            lo = mid;
                        }
                    }
                }
            }
            SearchMode::Exact => {
                // Bisect over breakpoint indices: feasibility is constant
                // between consecutive candidates, so the smallest feasible
                // candidate is the oracle's true threshold.
                let initial_hi = hi;
                let candidates = breakpoints::search_candidates(instance, lo, hi);
                let mut hi_idx = candidates.len() - 1; // == hi, probed feasible
                let mut lo_idx: Option<usize> = None;
                while lo_idx.map_or(0, |k| k + 1) < hi_idx {
                    if best_makespan <= lo * (1.0 + 1e-9) {
                        break;
                    }
                    let mid = (lo_idx.map_or(0, |k| k + 1) + hi_idx) / 2;
                    probes += 1;
                    match algorithm.probe_with_workspace(instance, candidates[mid], workspace) {
                        DualOutcome::Feasible(s) => {
                            hi_idx = mid;
                            feasible_omega = feasible_omega.min(candidates[mid]);
                            let makespan = s.makespan();
                            if makespan < best_makespan {
                                best_makespan = makespan;
                                best = Some(s);
                            }
                        }
                        DualOutcome::Infeasible => {
                            lo_idx = Some(mid);
                        }
                    }
                }
                if let Some(k) = lo_idx {
                    // The candidate set makes the *necessary feasibility
                    // conditions* piecewise-constant, so verifying them at
                    // one interior point certifies the whole half-open
                    // interval: if they fail there, `OPT ≥ candidates[hi_idx]`
                    // exactly.  An oracle may also reject for non-certificate
                    // reasons (ablation branch subsets, custom oracles) whose
                    // thresholds are not in the candidate set — in that case
                    // only the probed guess itself is a (claimed) certificate,
                    // the classical bisection semantics.
                    let interior = 0.5 * (candidates[k] + candidates[hi_idx]);
                    if !bounds::may_be_feasible(instance, interior) {
                        lo = lo.max(candidates[hi_idx].min(best_makespan));
                    } else {
                        lo = lo.max(candidates[k]);
                    }
                }

                // Quality descent: the certified bound is already exact, but
                // branch quality (unlike feasibility) is not constant between
                // breakpoints — the two-shelf construction moves continuously
                // with ω.  Spend a small bounded budget on the classical
                // midpoint descent through the known-feasible region; in the
                // common case where the threshold sits at the static bound,
                // this retraces the bisection search's own probe points.
                let mut quality_hi = initial_hi;
                let quality_lo = feasible_omega;
                let mut stale = 0usize;
                for _ in 0..EXACT_QUALITY_PROBES {
                    // Stop on a stale streak, a closed a-posteriori gap, or a
                    // region already narrower than the search tolerance (the
                    // same stopping rule the bisection mode uses) — the last
                    // is what keeps warm-started epoch re-solves cheap.
                    if stale >= 8
                        || best_makespan <= lo * (1.0 + 1e-9)
                        || quality_hi - quality_lo
                            <= self.relative_tolerance.max(1e-9) * quality_hi.max(1e-12)
                    {
                        break;
                    }
                    let mid = 0.5 * (quality_lo + quality_hi);
                    probes += 1;
                    match algorithm.probe_with_workspace(instance, mid, workspace) {
                        DualOutcome::Feasible(s) => {
                            quality_hi = mid;
                            feasible_omega = feasible_omega.min(mid);
                            let makespan = s.makespan();
                            if makespan < best_makespan {
                                best_makespan = makespan;
                                best = Some(s);
                                stale = 0;
                            } else {
                                stale += 1;
                            }
                        }
                        // Above the certified threshold every guess is
                        // feasible for a monotone oracle; stop rather than
                        // fight a non-monotone one.
                        DualOutcome::Infeasible => break,
                    }
                }
            }
        }

        let schedule = best.ok_or(Error::NoFeasibleSchedule)?;
        Ok(SearchResult {
            schedule,
            certified_lower_bound: lo,
            feasible_omega,
            probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allotment::Allotment;
    use crate::list::{schedule_rigid, ListOrder};
    use crate::task::SpeedupProfile;

    /// A deliberately simple dual 2-approximation used to exercise the search:
    /// canonical allotment + list scheduling, rejecting ω when the canonical
    /// allotment does not exist or violates the area bound (Property 2).
    struct CanonicalListOracle;

    impl DualApproximation for CanonicalListOracle {
        fn name(&self) -> &'static str {
            "canonical-list-test-oracle"
        }

        fn guarantee(&self, _instance: &Instance) -> f64 {
            2.0
        }

        fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome {
            if !bounds::may_be_feasible(instance, omega) {
                return DualOutcome::Infeasible;
            }
            let allotment = match Allotment::canonical(instance, omega) {
                Ok(a) => a,
                Err(_) => return DualOutcome::Infeasible,
            };
            DualOutcome::Feasible(schedule_rigid(
                instance,
                &allotment,
                ListOrder::DecreasingAllottedTime,
            ))
        }
    }

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![4.0, 2.2, 1.6, 1.4]).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.8]).unwrap(),
                SpeedupProfile::sequential(0.7).unwrap(),
                SpeedupProfile::linear(2.4, 4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn search_produces_valid_schedule_and_bounds() {
        let inst = instance();
        let result = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(result.schedule.validate(&inst).is_ok());
        assert!(result.certified_lower_bound > 0.0);
        assert!(result.schedule.makespan() >= result.certified_lower_bound - 1e-9);
        assert!(result.ratio() <= 2.0 + 1e-6, "ratio was {}", result.ratio());
        assert!(result.probes >= 2);
    }

    #[test]
    fn more_iterations_never_worsen_the_result() {
        let inst = instance();
        let coarse = DualSearch::with_iterations(2)
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        let fine = DualSearch::with_iterations(40)
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(fine.schedule.makespan() <= coarse.schedule.makespan() + 1e-9);
        assert!(fine.certified_lower_bound >= coarse.certified_lower_bound - 1e-9);
    }

    #[test]
    fn single_task_converges_to_its_best_time() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::linear(8.0, 4).unwrap()], 4).unwrap();
        let result = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        // The only schedule is the task alone; optimum is t(4) = 2.0.
        assert!((result.schedule.makespan() - 2.0).abs() < 1e-6);
        assert!((result.certified_lower_bound - 2.0).abs() < 1e-3);
    }

    #[test]
    fn search_mode_names_are_stable() {
        assert_eq!(SearchMode::Bisect.name(), "bisect");
        assert_eq!(SearchMode::Exact.name(), "exact");
        assert_eq!(SearchMode::default(), SearchMode::Bisect);
    }

    #[test]
    fn exact_mode_solves_the_test_oracle_with_fewer_probes() {
        let inst = instance();
        let bisect = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        let exact = DualSearch::default()
            .solve_exact(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(exact.schedule.validate(&inst).is_ok());
        assert!(exact.certified_lower_bound >= bisect.certified_lower_bound - 1e-9);
        assert!(
            exact.probes < bisect.probes,
            "exact used {} probes, bisect {}",
            exact.probes,
            bisect.probes
        );
        assert!(exact.schedule.makespan() >= exact.certified_lower_bound - 1e-9);
    }

    #[test]
    fn solve_guided_accepts_upper_hints() {
        let inst = instance();
        let base = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        let mut ws = ProbeWorkspace::new();
        // A hint just above the known-feasible guess narrows the interval.
        let hinted = DualSearch::default()
            .solve_guided(
                &inst,
                &CanonicalListOracle,
                SearchMode::Bisect,
                Some(base.feasible_omega * 1.01),
                &mut ws,
            )
            .unwrap();
        assert!(hinted.schedule.validate(&inst).is_ok());
        assert!(hinted.probes <= base.probes);
        // An absurd lowball hint is recovered by the doubling climb.
        let lowball = DualSearch::default()
            .solve_guided(
                &inst,
                &CanonicalListOracle,
                SearchMode::Exact,
                Some(1e-12),
                &mut ws,
            )
            .unwrap();
        assert!(lowball.schedule.validate(&inst).is_ok());
    }

    /// Monotonicity of the oracle: feasible at ω implies feasible at ω' ≥ ω.
    #[test]
    fn oracle_is_monotone() {
        let inst = instance();
        let oracle = CanonicalListOracle;
        let omegas = [0.5, 1.0, 1.5, 2.0, 3.0, 5.0];
        let outcomes: Vec<bool> = omegas
            .iter()
            .map(|&w| oracle.probe(&inst, w).is_feasible())
            .collect();
        for w in outcomes.windows(2) {
            assert!(!w[0] || w[1], "feasibility must be monotone in ω");
        }
    }
}
