//! Dual approximation algorithms and the binary search driving them.
//!
//! Following Hochbaum & Shmoys (and §2.2 of the paper), a *dual
//! ρ-approximation* receives a guess `ω` of the optimal makespan and either
//! returns a schedule of length at most `ρ·ω` or correctly reports that no
//! schedule of length at most `ω` exists.  A dichotomic search over `ω`
//! converts such an oracle into a `ρ(1 + 2^{-k})`-approximation after `k`
//! probes.
//!
//! The driver below additionally keeps the best schedule seen over all probes
//! and the largest ω it certified infeasible, so the caller gets both a
//! schedule and a *certified* lower bound on the optimum — the ratio of the
//! two is an instance-specific a-posteriori guarantee that is usually much
//! better than the worst-case ρ.

use crate::bounds;
use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::schedule::Schedule;

/// Outcome of one dual-approximation probe at a guess `ω`.
#[derive(Debug, Clone)]
pub enum DualOutcome {
    /// A schedule of length at most `ρ·ω` was constructed.
    Feasible(Schedule),
    /// No schedule of length at most `ω` exists (a certificate, not a failure).
    Infeasible,
}

impl DualOutcome {
    /// Whether this outcome carries a schedule.
    pub fn is_feasible(&self) -> bool {
        matches!(self, DualOutcome::Feasible(_))
    }
}

/// A dual approximation algorithm for the malleable scheduling problem.
pub trait DualApproximation {
    /// A short human-readable name (used in benchmark reports).
    fn name(&self) -> &'static str;

    /// The worst-case guarantee ρ of the algorithm on the given instance
    /// (some guarantees depend on `m`, e.g. `√3 + 3/(m+1)`).
    fn guarantee(&self, instance: &Instance) -> f64;

    /// Probe the guess `ω`.
    fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome;
}

/// Result of a dual-approximation binary search.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// The best (shortest) schedule found over all probes.
    pub schedule: Schedule,
    /// The largest guess that was certified infeasible, combined with the
    /// static lower bounds of [`bounds::lower_bound`]; the optimum makespan is
    /// at least this value.
    pub certified_lower_bound: f64,
    /// The smallest guess for which a schedule was obtained.
    pub feasible_omega: f64,
    /// Number of probes performed.
    pub probes: usize,
}

impl SearchResult {
    /// The a-posteriori approximation ratio `makespan / certified lower bound`.
    pub fn ratio(&self) -> f64 {
        if self.certified_lower_bound <= 0.0 {
            return 1.0;
        }
        self.schedule.makespan() / self.certified_lower_bound
    }
}

/// Configuration of the dichotomic search.
#[derive(Debug, Clone, Copy)]
pub struct DualSearch {
    /// Number of bisection iterations (`k`); the interval shrinks by `2^{-k}`.
    pub iterations: usize,
    /// Stop early once the relative width of the interval drops below this.
    pub relative_tolerance: f64,
}

impl Default for DualSearch {
    fn default() -> Self {
        DualSearch {
            iterations: 30,
            relative_tolerance: 1e-6,
        }
    }
}

impl DualSearch {
    /// A search with a fixed number of iterations and no early stop.
    pub fn with_iterations(iterations: usize) -> Self {
        DualSearch {
            iterations,
            relative_tolerance: 0.0,
        }
    }

    /// Run the dichotomic search of §2.2 on `algorithm`.
    ///
    /// The initial interval is `[LB, UB]` from the [`bounds`] module.  If the
    /// algorithm rejects even the guaranteed-feasible upper bound (which a
    /// correct dual approximation never should), the upper end is doubled a
    /// few times before giving up with [`Error::NoFeasibleSchedule`].
    pub fn solve(
        &self,
        instance: &Instance,
        algorithm: &dyn DualApproximation,
    ) -> Result<SearchResult> {
        let mut lo = bounds::lower_bound(instance);
        let mut hi = bounds::upper_bound(instance).max(lo);
        let mut probes = 0usize;
        let mut best: Option<Schedule>;
        let mut feasible_omega: f64;

        // Ensure the upper end is actually accepted by the oracle.
        let mut attempts = 0;
        loop {
            probes += 1;
            match algorithm.probe(instance, hi) {
                DualOutcome::Feasible(s) => {
                    feasible_omega = hi;
                    best = Some(s);
                    break;
                }
                DualOutcome::Infeasible => {
                    lo = lo.max(hi);
                    hi *= 2.0;
                    attempts += 1;
                    if attempts > 16 {
                        return Err(Error::NoFeasibleSchedule);
                    }
                }
            }
        }

        for _ in 0..self.iterations {
            if hi - lo <= self.relative_tolerance * hi.max(1e-12) {
                break;
            }
            let mid = 0.5 * (lo + hi);
            probes += 1;
            match algorithm.probe(instance, mid) {
                DualOutcome::Feasible(s) => {
                    feasible_omega = feasible_omega.min(mid);
                    hi = mid;
                    match &best {
                        Some(b) if b.makespan() <= s.makespan() => {}
                        _ => best = Some(s),
                    }
                }
                DualOutcome::Infeasible => {
                    lo = mid;
                }
            }
        }

        let schedule = best.ok_or(Error::NoFeasibleSchedule)?;
        Ok(SearchResult {
            schedule,
            certified_lower_bound: lo.max(bounds::lower_bound(instance)),
            feasible_omega,
            probes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allotment::Allotment;
    use crate::list::{schedule_rigid, ListOrder};
    use crate::task::SpeedupProfile;

    /// A deliberately simple dual 2-approximation used to exercise the search:
    /// canonical allotment + list scheduling, rejecting ω when the canonical
    /// allotment does not exist or violates the area bound (Property 2).
    struct CanonicalListOracle;

    impl DualApproximation for CanonicalListOracle {
        fn name(&self) -> &'static str {
            "canonical-list-test-oracle"
        }

        fn guarantee(&self, _instance: &Instance) -> f64 {
            2.0
        }

        fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome {
            if !bounds::may_be_feasible(instance, omega) {
                return DualOutcome::Infeasible;
            }
            let allotment = match Allotment::canonical(instance, omega) {
                Ok(a) => a,
                Err(_) => return DualOutcome::Infeasible,
            };
            DualOutcome::Feasible(schedule_rigid(
                instance,
                &allotment,
                ListOrder::DecreasingAllottedTime,
            ))
        }
    }

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![4.0, 2.2, 1.6, 1.4]).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.8]).unwrap(),
                SpeedupProfile::sequential(0.7).unwrap(),
                SpeedupProfile::linear(2.4, 4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn search_produces_valid_schedule_and_bounds() {
        let inst = instance();
        let result = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(result.schedule.validate(&inst).is_ok());
        assert!(result.certified_lower_bound > 0.0);
        assert!(result.schedule.makespan() >= result.certified_lower_bound - 1e-9);
        assert!(result.ratio() <= 2.0 + 1e-6, "ratio was {}", result.ratio());
        assert!(result.probes >= 2);
    }

    #[test]
    fn more_iterations_never_worsen_the_result() {
        let inst = instance();
        let coarse = DualSearch::with_iterations(2)
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        let fine = DualSearch::with_iterations(40)
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        assert!(fine.schedule.makespan() <= coarse.schedule.makespan() + 1e-9);
        assert!(fine.certified_lower_bound >= coarse.certified_lower_bound - 1e-9);
    }

    #[test]
    fn single_task_converges_to_its_best_time() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::linear(8.0, 4).unwrap()], 4).unwrap();
        let result = DualSearch::default()
            .solve(&inst, &CanonicalListOracle)
            .unwrap();
        // The only schedule is the task alone; optimum is t(4) = 2.0.
        assert!((result.schedule.makespan() - 2.0).abs() < 1e-6);
        assert!((result.certified_lower_bound - 2.0).abs() < 1e-3);
    }

    /// Monotonicity of the oracle: feasible at ω implies feasible at ω' ≥ ω.
    #[test]
    fn oracle_is_monotone() {
        let inst = instance();
        let oracle = CanonicalListOracle;
        let omegas = [0.5, 1.0, 1.5, 2.0, 3.0, 5.0];
        let outcomes: Vec<bool> = omegas
            .iter()
            .map(|&w| oracle.probe(&inst, w).is_feasible())
            .collect();
        for w in outcomes.windows(2) {
            assert!(!w[0] || w[1], "feasibility must be monotone in ω");
        }
    }
}
