//! Epsilon-guarded comparisons for floating scheduling quantities.
//!
//! Makespans, allotment times and work integrals are chains of `f64`
//! arithmetic; comparing them bit-exactly is how work-conservation checks
//! and feasibility gates silently diverge between solvers.  Every tolerance
//! in the workspace routes through these helpers so the epsilon is a single
//! reviewable constant instead of scattered `1e-9` literals, and so the
//! `float-exact-compare` lint has a sanctioned replacement to point at.

/// The workspace tolerance for absolute comparisons of scheduling
/// quantities (times, makespans, work).  Matches the `1e-9` historically
/// used by the bound checks.
pub const EPS: f64 = 1e-9;

/// A coarser tolerance for quantities accumulated over many operations
/// (work integrals, utilization sums), where `EPS`-level noise compounds.
pub const EPS_ACCUM: f64 = 1e-6;

/// `a` equals `b` within [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// `a` differs from `b` by more than [`EPS`].
#[inline]
pub fn approx_ne(a: f64, b: f64) -> bool {
    !approx_eq(a, b)
}

/// `a <= b` up to [`EPS`] slack — the feasibility-gate comparison
/// (`makespan <= deadline + EPS`).
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a >= b` up to [`EPS`] slack.
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// `a` is zero within [`EPS`].
#[inline]
pub fn approx_zero(a: f64) -> bool {
    a.abs() <= EPS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_tolerates_eps_noise() {
        assert!(approx_eq(1.0, 1.0 + 0.5 * EPS));
        assert!(approx_ne(1.0, 1.0 + 3.0 * EPS));
        assert!(approx_eq(0.1 + 0.2, 0.3));
    }

    #[test]
    fn ordering_helpers_allow_slack_one_way_only() {
        assert!(approx_le(1.0 + 0.5 * EPS, 1.0));
        assert!(!approx_le(1.0 + 3.0 * EPS, 1.0));
        assert!(approx_ge(1.0 - 0.5 * EPS, 1.0));
        assert!(!approx_ge(1.0 - 3.0 * EPS, 1.0));
    }

    #[test]
    fn zero_check_is_symmetric() {
        assert!(approx_zero(0.5 * EPS));
        assert!(approx_zero(-0.5 * EPS));
        assert!(!approx_zero(2.0 * EPS));
    }
}
