//! Error types for the malleable scheduling library.

use std::fmt;

/// Errors raised while constructing model objects or running schedulers.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A speed-up profile was empty.
    EmptyProfile,
    /// A speed-up profile contained a non-positive or non-finite time.
    InvalidTime { processors: usize, time: f64 },
    /// Execution times must be non-increasing in the number of processors.
    NonMonotonicTime { processors: usize },
    /// Work (processors × time) must be non-decreasing in the number of processors.
    NonMonotonicWork { processors: usize },
    /// An instance was built with no tasks.
    EmptyInstance,
    /// An instance was built with zero processors.
    NoProcessors,
    /// A task index was out of range for the instance.
    UnknownTask { task: usize },
    /// An allotment referenced a processor count outside `1..=m`.
    InvalidAllotment { task: usize, processors: usize },
    /// The requested deadline cannot be met by any allotment of some task.
    DeadlineUnreachable { task: usize, deadline: f64 },
    /// A scheduler was asked for a guarantee parameter outside its valid range.
    InvalidParameter { name: &'static str, value: f64 },
    /// A `SolverConfig` knob carried a value the addressed solver rejects.
    InvalidConfig {
        /// The config key.
        key: &'static str,
        /// Why the value was rejected.
        message: String,
    },
    /// The dual-approximation search could not find any feasible schedule.
    NoFeasibleSchedule,
    /// An internal invariant the engine relies on was observed broken at
    /// run time.  Raised instead of panicking on engine paths so a
    /// corrupted run degrades into a reported error.
    InvariantViolated {
        /// Which invariant (a short static label, e.g. `"revoke-queued"`).
        context: &'static str,
        /// What was actually observed.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyProfile => write!(f, "speed-up profile has no entries"),
            Error::InvalidTime { processors, time } => write!(
                f,
                "execution time on {processors} processor(s) is invalid: {time}"
            ),
            Error::NonMonotonicTime { processors } => write!(
                f,
                "execution time increases when going from {} to {} processors",
                processors - 1,
                processors
            ),
            Error::NonMonotonicWork { processors } => write!(
                f,
                "work decreases when going from {} to {} processors (super-linear speed-up)",
                processors - 1,
                processors
            ),
            Error::EmptyInstance => write!(f, "instance contains no tasks"),
            Error::NoProcessors => write!(f, "instance has zero processors"),
            Error::UnknownTask { task } => write!(f, "task index {task} is out of range"),
            Error::InvalidAllotment { task, processors } => write!(
                f,
                "allotment gives task {task} an invalid processor count {processors}"
            ),
            Error::DeadlineUnreachable { task, deadline } => write!(
                f,
                "task {task} cannot finish within deadline {deadline} on any allotment"
            ),
            Error::InvalidParameter { name, value } => {
                write!(f, "parameter {name} has invalid value {value}")
            }
            Error::InvalidConfig { key, message } => {
                write!(f, "config key `{key}` rejected: {message}")
            }
            Error::NoFeasibleSchedule => {
                write!(f, "no feasible schedule could be constructed")
            }
            Error::InvariantViolated { context, message } => {
                write!(f, "engine invariant `{context}` violated: {message}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::EmptyProfile, "no entries"),
            (
                Error::InvalidTime {
                    processors: 2,
                    time: -1.0,
                },
                "invalid",
            ),
            (Error::NonMonotonicTime { processors: 3 }, "increases"),
            (Error::NonMonotonicWork { processors: 3 }, "super-linear"),
            (Error::EmptyInstance, "no tasks"),
            (Error::NoProcessors, "zero processors"),
            (Error::UnknownTask { task: 7 }, "out of range"),
            (
                Error::InvalidAllotment {
                    task: 1,
                    processors: 9,
                },
                "invalid processor count",
            ),
            (
                Error::DeadlineUnreachable {
                    task: 0,
                    deadline: 1.0,
                },
                "cannot finish",
            ),
            (
                Error::InvalidParameter {
                    name: "lambda",
                    value: 2.0,
                },
                "lambda",
            ),
            (Error::NoFeasibleSchedule, "no feasible schedule"),
            (
                Error::InvariantViolated {
                    context: "revoke-queued",
                    message: "reservation already cancelled".to_string(),
                },
                "revoke-queued",
            ),
        ];
        for (err, needle) in cases {
            assert!(
                err.to_string().contains(needle),
                "{err} should mention {needle}"
            );
        }
    }
}
