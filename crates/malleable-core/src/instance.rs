//! Problem instances: a set of malleable tasks plus a machine size.

use crate::error::{Error, Result};
use crate::task::{MalleableTask, SpeedupProfile, TaskId};

/// An instance of the malleable scheduling problem: `n` independent monotone
/// malleable tasks to be scheduled on `m` identical processors.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Instance {
    tasks: Vec<MalleableTask>,
    processors: usize,
}

/// What [`Instance::new`] did to its inputs while normalising them —
/// returned by [`Instance::new_with_summary`] so callers can surface the
/// silent adjustments (the CLI warns when profiles were truncated; tests
/// assert the count is zero for generated workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstanceSummary {
    /// Number of tasks `n` in the constructed instance.
    pub tasks: usize,
    /// Number of processors `m` of the constructed instance.
    pub processors: usize,
    /// How many speed-up profiles were longer than `m` and therefore
    /// truncated to the machine size.
    pub truncated_profiles: usize,
}

impl Instance {
    /// Build an instance, validating that it has at least one task and one
    /// processor.
    ///
    /// **Truncation behaviour:** profiles longer than `processors` are
    /// silently truncated — a task can never be allotted more processors than
    /// the machine has, and under the monotone assumption the dropped entries
    /// can only describe slower-or-equal configurations.  Use
    /// [`Instance::new_with_summary`] when the caller needs to know whether
    /// (and how often) this happened.
    pub fn new(tasks: Vec<MalleableTask>, processors: usize) -> Result<Self> {
        Self::new_with_summary(tasks, processors).map(|(instance, _)| instance)
    }

    /// Same as [`Instance::new`], additionally reporting what was normalised:
    /// the returned [`InstanceSummary`] carries the number of profiles that
    /// were longer than `processors` and had to be truncated.
    pub fn new_with_summary(
        tasks: Vec<MalleableTask>,
        processors: usize,
    ) -> Result<(Self, InstanceSummary)> {
        if processors == 0 {
            return Err(Error::NoProcessors);
        }
        if tasks.is_empty() {
            return Err(Error::EmptyInstance);
        }
        let mut truncated_profiles = 0usize;
        let tasks: Vec<MalleableTask> = tasks
            .into_iter()
            .map(|t| {
                if t.profile.max_processors() > processors {
                    truncated_profiles += 1;
                }
                MalleableTask {
                    name: t.name,
                    profile: t.profile.truncated(processors),
                }
            })
            .collect();
        let summary = InstanceSummary {
            tasks: tasks.len(),
            processors,
            truncated_profiles,
        };
        Ok((Instance { tasks, processors }, summary))
    }

    /// Convenience constructor from bare profiles.
    pub fn from_profiles(profiles: Vec<SpeedupProfile>, processors: usize) -> Result<Self> {
        Self::new(
            profiles.into_iter().map(MalleableTask::new).collect(),
            processors,
        )
    }

    /// Number of tasks `n`.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// Number of processors `m`.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Access a task by identifier.
    pub fn task(&self, id: TaskId) -> &MalleableTask {
        &self.tasks[id]
    }

    /// Checked access to a task.
    pub fn try_task(&self, id: TaskId) -> Result<&MalleableTask> {
        self.tasks.get(id).ok_or(Error::UnknownTask { task: id })
    }

    /// Iterate over `(id, task)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TaskId, &MalleableTask)> {
        self.tasks.iter().enumerate()
    }

    /// All tasks as a slice.
    pub fn tasks(&self) -> &[MalleableTask] {
        &self.tasks
    }

    /// Execution time of task `id` on `p` processors.
    pub fn time(&self, id: TaskId, p: usize) -> f64 {
        self.tasks[id].time(p)
    }

    /// Work of task `id` on `p` processors.
    pub fn work(&self, id: TaskId, p: usize) -> f64 {
        self.tasks[id].work(p)
    }

    /// Total sequential work `Σ_j t_j(1)` — the minimal possible total work
    /// under the monotone assumption.
    pub fn total_sequential_work(&self) -> f64 {
        self.tasks.iter().map(|t| t.profile.min_work()).sum()
    }

    /// Largest minimum execution time over all tasks
    /// (`max_j t_j(min(m, p_max))`): no schedule can beat it.
    pub fn max_min_time(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.profile.min_time())
            .fold(0.0, f64::max)
    }

    /// Longest sequential time over all tasks.
    pub fn max_sequential_time(&self) -> f64 {
        self.tasks
            .iter()
            .map(|t| t.profile.sequential_time())
            .fold(0.0, f64::max)
    }

    /// The canonical allotment for deadline `d`: for every task the minimal
    /// number of processors finishing within `d`, or an error naming the first
    /// task for which the deadline is unreachable.
    pub fn canonical_allotment(&self, deadline: f64) -> Result<Vec<usize>> {
        let mut allotment = Vec::with_capacity(self.tasks.len());
        for (id, task) in self.iter() {
            match task.canonical_processors(deadline) {
                Some(p) => allotment.push(p),
                None => return Err(Error::DeadlineUnreachable { task: id, deadline }),
            }
        }
        Ok(allotment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_instance() -> Instance {
        let profiles = vec![
            SpeedupProfile::new(vec![4.0, 2.0, 1.5]).unwrap(),
            SpeedupProfile::new(vec![3.0, 1.6]).unwrap(),
            SpeedupProfile::sequential(0.5).unwrap(),
        ];
        Instance::from_profiles(profiles, 4).unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        assert_eq!(
            Instance::from_profiles(vec![], 4).unwrap_err(),
            Error::EmptyInstance
        );
        assert_eq!(
            Instance::from_profiles(vec![SpeedupProfile::sequential(1.0).unwrap()], 0).unwrap_err(),
            Error::NoProcessors
        );
    }

    #[test]
    fn profiles_are_truncated_to_machine_size() {
        let p = SpeedupProfile::new(vec![8.0, 4.0, 3.0, 2.5, 2.2]).unwrap();
        let inst = Instance::from_profiles(vec![p], 3).unwrap();
        assert_eq!(inst.task(0).profile.max_processors(), 3);
        assert_eq!(inst.time(0, 3), 3.0);
        // Beyond the machine size the time stays flat.
        assert_eq!(inst.time(0, 5), 3.0);
    }

    #[test]
    fn construction_summary_counts_truncated_profiles() {
        let tasks: Vec<MalleableTask> = vec![
            SpeedupProfile::new(vec![8.0, 4.0, 3.0, 2.5, 2.2]).unwrap(), // truncated
            SpeedupProfile::new(vec![3.0, 1.6]).unwrap(),                // fits
            SpeedupProfile::linear(6.0, 5).unwrap(),                     // truncated
        ]
        .into_iter()
        .map(MalleableTask::new)
        .collect();
        let (inst, summary) = Instance::new_with_summary(tasks, 3).unwrap();
        assert_eq!(
            summary,
            InstanceSummary {
                tasks: 3,
                processors: 3,
                truncated_profiles: 2,
            }
        );
        assert_eq!(inst.task(0).profile.max_processors(), 3);

        // Nothing to truncate → a zero count.
        let (_, summary) = Instance::new_with_summary(
            vec![MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap())],
            4,
        )
        .unwrap();
        assert_eq!(summary.truncated_profiles, 0);
    }

    #[test]
    fn aggregate_statistics() {
        let inst = simple_instance();
        assert_eq!(inst.task_count(), 3);
        assert_eq!(inst.processors(), 4);
        assert!((inst.total_sequential_work() - 7.5).abs() < 1e-12);
        assert!((inst.max_min_time() - 1.6).abs() < 1e-12);
        assert!((inst.max_sequential_time() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn canonical_allotment_per_deadline() {
        let inst = simple_instance();
        assert_eq!(inst.canonical_allotment(4.0).unwrap(), vec![1, 1, 1]);
        assert_eq!(inst.canonical_allotment(2.0).unwrap(), vec![2, 2, 1]);
        assert_eq!(inst.canonical_allotment(1.6).unwrap(), vec![3, 2, 1]);
        let err = inst.canonical_allotment(1.0).unwrap_err();
        assert!(matches!(err, Error::DeadlineUnreachable { .. }));
    }

    #[test]
    fn unknown_task_is_reported() {
        let inst = simple_instance();
        assert!(inst.try_task(2).is_ok());
        assert_eq!(
            inst.try_task(3).unwrap_err(),
            Error::UnknownTask { task: 3 }
        );
    }
}
