//! # malleable-core
//!
//! A Rust implementation of the approximation algorithms for scheduling
//! independent **monotonic malleable tasks** from:
//!
//! > G. Mounié, C. Rapine, D. Trystram,
//! > *Efficient Approximation Algorithms for Scheduling Malleable Tasks*,
//! > 11th ACM Symposium on Parallel Algorithms and Architectures (SPAA), 1999.
//!
//! A *malleable task* may be executed on any number of processors; its
//! execution time is non-increasing and its work (processors × time) is
//! non-decreasing in the processor count.  The library schedules a set of
//! independent malleable tasks on `m` identical processors to minimise the
//! makespan, with the paper's worst-case performance guarantee of `√3 + ε`.
//!
//! ## Quick start
//!
//! ```rust
//! use malleable_core::prelude::*;
//!
//! // Three tasks: a parallel solver, a medium task and a small sequential one.
//! let tasks = vec![
//!     SpeedupProfile::linear(8.0, 8).unwrap(),          // perfect speed-up
//!     SpeedupProfile::new(vec![3.0, 1.7, 1.3]).unwrap(), // measured profile
//!     SpeedupProfile::sequential(0.8).unwrap(),
//! ];
//! let instance = Instance::from_profiles(tasks, 8).unwrap();
//!
//! // One call: dual-approximation search around the MRT √3 scheduler.
//! let result = malleable_core::mrt::schedule(&instance).unwrap();
//! assert!(result.schedule.validate(&instance).is_ok());
//! assert!(result.ratio() <= 1.75); // a-posteriori ratio vs certified bound
//! ```
//!
//! ## Crate layout
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`task`], [`instance`], [`allotment`], [`schedule`] | §2 | the model: monotone profiles, instances, allotments, contiguous schedules |
//! | [`bounds`] | §2 | lower bounds and necessary feasibility conditions |
//! | [`dual`] | §2.2 | dual approximation trait + dichotomic search |
//! | [`list`] | §3 | contiguous list scheduling / LPT engine |
//! | [`mla`] | §3.1 | the malleable list algorithm |
//! | [`canonical`] | §3.2 | canonical allotment, λ-area, canonical list algorithm, `m_λ` |
//! | [`two_shelf`] | §4 | the knapsack-based two-shelf construction |
//! | [`mrt`] | §3–§4, Thm 3 | the combined √3 scheduler and the one-call API |
//! | [`solver`] | — | the unified `Solver` trait, `SolveRequest`/`SolveOutcome` pipeline and the solver registry |

pub mod allotment;
pub mod bounds;
pub mod breakpoints;
pub mod canonical;
pub mod dual;
pub mod eps;
pub mod error;
pub mod instance;
pub mod list;
pub mod mla;
pub mod mrt;
pub mod schedule;
pub mod solver;
pub mod task;
pub mod two_shelf;
pub mod workspace;

pub mod prelude;

pub use allotment::Allotment;
pub use error::{Error, Result};
pub use instance::{Instance, InstanceSummary};
pub use schedule::{ProcessorRange, Schedule, ScheduledTask};
pub use solver::{
    CanonicalListSolver, ConfigValue, MrtSolver, SolveOutcome, SolveRequest, Solver,
    SolverCapabilities, SolverConfig, SolverHandle, SolverRegistry,
};
pub use task::{MalleableTask, SpeedupProfile, TaskId};
pub use workspace::ProbeWorkspace;

/// The paper's headline guarantee: `√3`.
pub const SQRT3: f64 = 1.7320508075688772;

/// The paper's second-shelf parameter: `λ = √3 − 1`.
pub const LAMBDA_SQRT3: f64 = SQRT3 - 1.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert!((SQRT3 * SQRT3 - 3.0).abs() < 1e-12);
        assert!((LAMBDA_SQRT3 - (SQRT3 - 1.0)).abs() < 1e-15);
        assert!((1.0 + LAMBDA_SQRT3 - SQRT3).abs() < 1e-15);
    }
}
