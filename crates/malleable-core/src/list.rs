//! List scheduling of rigid (fixed-allotment) tasks.
//!
//! Both list algorithms of §3 of the paper share the same scheduling engine:
//! once an allotment is chosen, tasks are considered in a priority order and
//! each is started as early as possible on a block of contiguous processors,
//! with the paper's tie-breaking convention (leftmost block for tasks starting
//! at time 0, rightmost otherwise).  Sequential tasks scheduled this way
//! degenerate to the classical LPT rule of Graham when ordered by decreasing
//! duration.
//!
//! The engine is a thin layer over [`packing::ProcessorTimeline`]; it produces
//! a [`Schedule`] and never fails (any allotment with `p_j ≤ m` is
//! schedulable, possibly with a long makespan).

use crate::allotment::Allotment;
use crate::instance::Instance;
use crate::schedule::{ProcessorRange, Schedule, ScheduledTask};
use crate::task::TaskId;
use packing::timeline::{ProcessorTimeline, TieBreak};

/// Priority orders used by the algorithms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListOrder {
    /// Keep the tasks in instance order (mostly useful for tests).
    AsGiven,
    /// Decreasing execution time under the chosen allotment — the order used
    /// by the *canonical list algorithm* (§3.2).
    DecreasingAllottedTime,
    /// Decreasing sequential execution time `t_j(1)` — the order used by the
    /// *malleable list algorithm* (§3.1).
    DecreasingSequentialTime,
    /// Parallel tasks (allotted ≥ 2 processors) first by decreasing allotted
    /// time, then sequential tasks by decreasing duration; this realises the
    /// "parallel tasks at time 0, then LPT" structure of §3.1.
    ParallelFirst,
}

/// Compute the task order for a given policy.
pub fn compute_order(instance: &Instance, allotment: &Allotment, order: ListOrder) -> Vec<TaskId> {
    let mut ids: Vec<TaskId> = (0..instance.task_count()).collect();
    match order {
        ListOrder::AsGiven => {}
        ListOrder::DecreasingAllottedTime => {
            ids.sort_by(|&a, &b| {
                allotment
                    .time(instance, b)
                    .partial_cmp(&allotment.time(instance, a))
                    .unwrap()
            });
        }
        ListOrder::DecreasingSequentialTime => {
            ids.sort_by(|&a, &b| {
                instance
                    .time(b, 1)
                    .partial_cmp(&instance.time(a, 1))
                    .unwrap()
            });
        }
        ListOrder::ParallelFirst => {
            ids.sort_by(|&a, &b| {
                let pa = allotment.processors(a) > 1;
                let pb = allotment.processors(b) > 1;
                pb.cmp(&pa).then(
                    allotment
                        .time(instance, b)
                        .partial_cmp(&allotment.time(instance, a))
                        .unwrap(),
                )
            });
        }
    }
    ids
}

/// Schedule the rigid tasks defined by `allotment` in the given explicit
/// order, starting each task as early as possible on contiguous processors.
pub fn schedule_rigid_in_order(
    instance: &Instance,
    allotment: &Allotment,
    order: &[TaskId],
) -> Schedule {
    let m = instance.processors();
    let mut timeline = ProcessorTimeline::new(m);
    let mut schedule = Schedule::new(m);
    for &task in order {
        let p = allotment.processors(task).min(m);
        let duration = instance.time(task, p);
        let window = timeline.place(p, duration, TieBreak::PaperConvention);
        schedule.push(ScheduledTask {
            task,
            start: window.start,
            duration,
            processors: ProcessorRange::new(window.first, p),
        });
    }
    schedule
}

/// Schedule the rigid tasks defined by `allotment` with a priority policy.
pub fn schedule_rigid(instance: &Instance, allotment: &Allotment, order: ListOrder) -> Schedule {
    let ids = compute_order(instance, allotment, order);
    schedule_rigid_in_order(instance, allotment, &ids)
}

/// Graham's LPT bound for sequential tasks: `W/m + (1 − 1/m)·t_max` is an
/// upper bound on the makespan produced by LPT, and the classical guarantee
/// against the optimum is `4/3 − 1/(3m)`.  Exposed for tests and benches.
pub fn lpt_upper_bound(total_work: f64, max_duration: f64, m: usize) -> f64 {
    total_work / m as f64 + (1.0 - 1.0 / m as f64) * max_duration
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;
    use proptest::prelude::*;

    fn sequential_instance(durations: &[f64], m: usize) -> Instance {
        Instance::from_profiles(
            durations
                .iter()
                .map(|&d| SpeedupProfile::sequential(d).unwrap())
                .collect(),
            m,
        )
        .unwrap()
    }

    #[test]
    fn lpt_on_sequential_tasks_matches_known_result() {
        // Graham's classic LPT worst case: durations 5,5,4,4,3,3,3 on 3
        // processors.  LPT yields 11 while the optimum is 9 (ratio 11/9,
        // matching the 4/3 - 1/(3m) bound).
        let inst = sequential_instance(&[5.0, 5.0, 4.0, 4.0, 3.0, 3.0, 3.0], 3);
        let allot = Allotment::sequential(&inst);
        let sched = schedule_rigid(&inst, &allot, ListOrder::DecreasingAllottedTime);
        assert!(sched.validate(&inst).is_ok());
        assert!((sched.makespan() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_first_places_wide_tasks_at_time_zero() {
        let inst = Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![3.0, 1.6]).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
                SpeedupProfile::new(vec![2.4, 1.3]).unwrap(),
            ],
            4,
        )
        .unwrap();
        let allot = Allotment::new(&inst, vec![2, 1, 2]).unwrap();
        let sched = schedule_rigid(&inst, &allot, ListOrder::ParallelFirst);
        assert!(sched.validate(&inst).is_ok());
        for &t in &[0usize, 2usize] {
            assert_eq!(sched.entry_for(t).unwrap().start, 0.0);
        }
    }

    #[test]
    fn order_policies_differ_when_profiles_do() {
        let inst = Instance::from_profiles(
            vec![
                // Long sequentially, short when parallel.
                SpeedupProfile::new(vec![4.0, 2.0, 1.4, 1.1]).unwrap(),
                // Short sequentially.
                SpeedupProfile::sequential(1.2).unwrap(),
            ],
            4,
        )
        .unwrap();
        let allot = Allotment::new(&inst, vec![4, 1]).unwrap();
        let by_allotted = compute_order(&inst, &allot, ListOrder::DecreasingAllottedTime);
        let by_sequential = compute_order(&inst, &allot, ListOrder::DecreasingSequentialTime);
        assert_eq!(by_allotted, vec![1, 0]);
        assert_eq!(by_sequential, vec![0, 1]);
    }

    #[test]
    fn schedule_covers_every_task_exactly_once() {
        let inst = sequential_instance(&[1.0, 2.0, 3.0], 2);
        let allot = Allotment::sequential(&inst);
        let sched = schedule_rigid(&inst, &allot, ListOrder::AsGiven);
        assert_eq!(sched.len(), 3);
        assert!(sched.validate(&inst).is_ok());
    }

    #[test]
    fn graham_bound_formula() {
        assert!((lpt_upper_bound(10.0, 4.0, 2) - (5.0 + 2.0)).abs() < 1e-12);
    }

    proptest! {
        /// List schedules of sequential tasks respect Graham's bound
        /// W/m + (1-1/m)·t_max, and are always valid.
        #[test]
        fn lpt_respects_graham_bound(
            durations in prop::collection::vec(0.1f64..5.0, 1..40),
            m in 1usize..8,
        ) {
            let inst = sequential_instance(&durations, m);
            let allot = Allotment::sequential(&inst);
            let sched = schedule_rigid(&inst, &allot, ListOrder::DecreasingAllottedTime);
            prop_assert!(sched.validate(&inst).is_ok());
            let total: f64 = durations.iter().sum();
            let tmax = durations.iter().cloned().fold(0.0, f64::max);
            prop_assert!(sched.makespan() <= lpt_upper_bound(total, tmax, m) + 1e-9);
        }

        /// Rigid list schedules with random allotments are valid and their
        /// makespan is at least the trivial lower bound of the allotment.
        #[test]
        fn rigid_schedules_are_valid(
            seeds in prop::collection::vec((0.2f64..4.0, 1usize..4), 1..25),
            m in 4usize..9,
        ) {
            let profiles: Vec<SpeedupProfile> = seeds
                .iter()
                .map(|&(w, maxp)| SpeedupProfile::linear(w, maxp.min(m)).unwrap())
                .collect();
            let inst = Instance::from_profiles(profiles, m).unwrap();
            let alloc: Vec<usize> = seeds.iter().map(|&(_, p)| p.min(m)).collect();
            let allot = Allotment::new(&inst, alloc).unwrap();
            for order in [
                ListOrder::AsGiven,
                ListOrder::DecreasingAllottedTime,
                ListOrder::DecreasingSequentialTime,
                ListOrder::ParallelFirst,
            ] {
                let sched = schedule_rigid(&inst, &allot, order);
                prop_assert!(sched.validate(&inst).is_ok());
                prop_assert!(sched.makespan() >= allot.makespan_lower_bound(&inst) - 1e-9);
            }
        }
    }
}
