//! The malleable list algorithm of §3.1 of the paper.
//!
//! Given a makespan guess `ω` (assumed ≥ OPT), the algorithm
//!
//! 1. allots every task the minimal number of processors bringing its
//!    execution time below a threshold `θ·ω` (with `θ ≥ 1`, so the chosen
//!    count never exceeds the canonical count and Property 2 applies), and
//! 2. schedules the resulting rigid tasks with a list algorithm: the parallel
//!    tasks (two or more processors) first, then the sequential ones in LPT
//!    order.
//!
//! The published threshold and the resulting guarantee are stated as
//! `√3`-flavoured expressions whose exact small-`m` corrections are not fully
//! legible in the available scan (see `DESIGN.md`).  We use the largest
//! threshold for which the key structural property of the paper's proof —
//! *all parallel tasks can start at time 0* — is provable from Properties 1
//! and 2 alone:
//!
//! > With `θ(m) = 2m/(m+1)`, every parallel task has work larger than
//! > `θ·ω·(γ_j − 1) ≥ θ·ω·γ_j/2`, so the parallel tasks' processor demand `P`
//! > satisfies `P < 2·m·ω/(θ·ω) = m + 1`, i.e. `P ≤ m`.
//!
//! The sequential phase is plain LPT.  The worst-case bound we *claim* for
//! this oracle is therefore the conservative `1 + θ(m)·(m−1)/m < 3`; its
//! observed behaviour (far better, and the reason the paper uses it as the
//! small-`m` fallback) is measured by the benchmark suite rather than
//! asserted.  Inside the combined [`crate::mrt::MrtScheduler`] this algorithm
//! is only one of several branches and the best schedule is kept, so the
//! conservative bound never propagates to the headline guarantee.

use crate::allotment::Allotment;
use crate::bounds;
use crate::dual::{DualApproximation, DualOutcome};
use crate::error::Result;
use crate::instance::Instance;
use crate::list::{schedule_rigid, ListOrder};
use crate::schedule::Schedule;

/// The malleable list algorithm as a dual approximation oracle.
#[derive(Debug, Clone, Copy, Default)]
pub struct MalleableListAlgorithm {
    /// Optional override of the allotment threshold factor `θ` (must be ≥ 1).
    /// `None` selects the provable default `θ(m) = 2m/(m+1)`.
    pub threshold_override: Option<f64>,
}

impl MalleableListAlgorithm {
    /// The allotment threshold factor `θ` used for a machine of `m` processors.
    pub fn threshold(&self, m: usize) -> f64 {
        match self.threshold_override {
            Some(theta) => theta.max(1.0),
            None => 2.0 * m as f64 / (m as f64 + 1.0),
        }
    }

    /// Compute the §3.1 allotment for the guess `ω`: minimal processors so
    /// that every task runs within `θ·ω`.
    pub fn allotment(&self, instance: &Instance, omega: f64) -> Result<Allotment> {
        let theta = self.threshold(instance.processors());
        Allotment::canonical(instance, theta * omega)
    }

    /// Build the §3.1 schedule (parallel tasks first, then LPT) for `ω`.
    pub fn build(&self, instance: &Instance, omega: f64) -> Result<Schedule> {
        let allotment = self.allotment(instance, omega)?;
        Ok(schedule_rigid(
            instance,
            &allotment,
            ListOrder::ParallelFirst,
        ))
    }
}

impl DualApproximation for MalleableListAlgorithm {
    fn name(&self) -> &'static str {
        "malleable-list"
    }

    fn guarantee(&self, instance: &Instance) -> f64 {
        let m = instance.processors() as f64;
        1.0 + self.threshold(instance.processors()) * (m - 1.0) / m
    }

    fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome {
        if !bounds::may_be_feasible(instance, omega) {
            return DualOutcome::Infeasible;
        }
        // The θ-allotment always exists when the canonical allotment does
        // (θ ≥ 1), and the canonical allotment exists whenever
        // `may_be_feasible` holds.
        match self.build(instance, omega) {
            Ok(schedule) => DualOutcome::Feasible(schedule),
            Err(_) => DualOutcome::Infeasible,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;
    use proptest::prelude::*;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![2.8, 1.5, 1.05, 0.85]).unwrap(),
                SpeedupProfile::new(vec![1.9, 1.0]).unwrap(),
                SpeedupProfile::sequential(0.9).unwrap(),
                SpeedupProfile::sequential(0.6).unwrap(),
                SpeedupProfile::linear(2.0, 4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn default_threshold_is_two_m_over_m_plus_one() {
        let algo = MalleableListAlgorithm::default();
        assert!((algo.threshold(4) - 1.6).abs() < 1e-12);
        assert!((algo.threshold(9) - 1.8).abs() < 1e-12);
        let custom = MalleableListAlgorithm {
            threshold_override: Some(1.2),
        };
        assert!((custom.threshold(100) - 1.2).abs() < 1e-12);
    }

    #[test]
    fn threshold_allotment_never_exceeds_canonical() {
        let inst = instance();
        let algo = MalleableListAlgorithm::default();
        let omega = 1.0;
        let theta_allot = algo.allotment(&inst, omega).unwrap();
        let canonical = Allotment::canonical(&inst, omega).unwrap();
        for t in 0..inst.task_count() {
            assert!(theta_allot.processors(t) <= canonical.processors(t));
        }
    }

    #[test]
    fn parallel_demand_fits_machine_at_feasible_omega() {
        // The structural property behind θ(m) = 2m/(m+1): at any ω satisfying
        // the necessary conditions, parallel tasks' processor demand ≤ m.
        let inst = instance();
        let algo = MalleableListAlgorithm::default();
        for omega in [1.1, 1.5, 2.0, 3.0] {
            if !bounds::may_be_feasible(&inst, omega) {
                continue;
            }
            let allot = algo.allotment(&inst, omega).unwrap();
            let parallel_demand: usize = (0..inst.task_count())
                .map(|t| allot.processors(t))
                .filter(|&p| p > 1)
                .sum();
            assert!(parallel_demand <= inst.processors());
        }
    }

    #[test]
    fn schedule_is_valid_and_probe_is_consistent() {
        let inst = instance();
        let algo = MalleableListAlgorithm::default();
        let schedule = algo.build(&inst, 1.2).unwrap();
        assert!(schedule.validate(&inst).is_ok());
        assert!(!algo.probe(&inst, 0.2).is_feasible());
        assert!(algo.probe(&inst, 3.0).is_feasible());
    }

    #[test]
    fn guarantee_is_below_three() {
        let inst = instance();
        let algo = MalleableListAlgorithm::default();
        assert!(algo.guarantee(&inst) < 3.0);
    }

    proptest! {
        /// At every ω passing the necessary conditions, the parallel tasks of
        /// the θ-allotment fit on the machine side by side (the property that
        /// justifies the default threshold), and the schedule is valid.
        #[test]
        fn parallel_tasks_fit_generic(
            works in prop::collection::vec(0.3f64..5.0, 1..25),
            m in 2usize..12,
            slack in 1.0f64..2.5,
        ) {
            let profiles: Vec<SpeedupProfile> = works
                .iter()
                .map(|&w| SpeedupProfile::linear(w, m).unwrap())
                .collect();
            let inst = Instance::from_profiles(profiles, m).unwrap();
            let omega = bounds::lower_bound(&inst) * slack;
            if bounds::may_be_feasible(&inst, omega) {
                let algo = MalleableListAlgorithm::default();
                let allot = algo.allotment(&inst, omega).unwrap();
                let demand: usize = (0..inst.task_count())
                    .map(|t| allot.processors(t))
                    .filter(|&p| p > 1)
                    .sum();
                prop_assert!(demand <= m, "parallel demand {demand} exceeds m = {m}");
                let schedule = algo.build(&inst, omega).unwrap();
                prop_assert!(schedule.validate(&inst).is_ok());
            }
        }
    }
}
