//! The combined MRT scheduler (Mounié–Rapine–Trystram, SPAA 1999).
//!
//! The paper's final algorithm (Theorem 3 together with §3) is a dual
//! approximation that, given a guess `ω`:
//!
//! 1. rejects `ω` when the canonical allotment does not exist or violates the
//!    necessary work/width conditions (a certificate that `OPT > ω`);
//! 2. otherwise builds a schedule by the branch the instance parameters call
//!    for — the knapsack-based two-shelf construction of §4 when the
//!    canonical λ-area is large, the canonical list algorithm of §3.2 when it
//!    is small, with the malleable list algorithm of §3.1 as the small-`m`
//!    fallback.
//!
//! This implementation evaluates *all* branches (plus a level-packing branch
//! used by the baselines) and keeps the shortest schedule.  Running every
//! branch costs `O(n·m)` in the worst case — the same order as the knapsack
//! resolution alone — and makes the oracle robust outside the regime where
//! the paper's existence lemmas apply (small machines, `m < m_λ`), because a
//! probe never *rejects* a guess it cannot certify infeasible.  The paper's
//! worst-case guarantee of `√3·ω ≈ (1 + λ)·ω` is therefore realised whenever
//! any branch achieves it (which the lemmas prove for `m ≥ m_λ`), and the
//! benchmark suite tracks the achieved ratios empirically across workload
//! families (see `EXPERIMENTS.md`).

use crate::bounds;
use crate::canonical::CanonicalAllotment;
use crate::dual::{DualApproximation, DualOutcome, DualSearch, SearchMode, SearchResult};
use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::list::schedule_rigid_in_order;
use crate::mla::MalleableListAlgorithm;
use crate::schedule::{ProcessorRange, Schedule, ScheduledTask};
use crate::two_shelf::{self, TwoShelfKind, TwoShelfParams};
use crate::workspace::ProbeWorkspace;
use packing::rect::Rect;
use packing::strip::ffdh;

/// Which branch produced the schedule returned by a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branch {
    /// The §4 two-shelf construction (with the mechanism that succeeded).
    TwoShelf(TwoShelfKind),
    /// The §3.2 canonical list algorithm.
    CanonicalList,
    /// The §3.1 malleable list algorithm.
    MalleableList,
    /// FFDH level packing of the canonical allotment (baseline-style branch).
    LevelPacking,
}

/// Diagnostic information about one probe of the MRT oracle.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// The guess that was probed.
    pub omega: f64,
    /// The winning branch, when the probe was feasible.
    pub branch: Option<Branch>,
    /// Makespan of the winning schedule, when feasible.
    pub makespan: Option<f64>,
    /// The canonical λ-area `S_m` at this guess (when the canonical allotment
    /// exists), for reproducing the branch statistics of the paper.
    pub lambda_area: Option<f64>,
    /// Whether the λ-area condition `S_m ≤ λ·m·ω` of Theorem 2 held.
    pub area_condition: Option<bool>,
}

/// Which branches the combined scheduler evaluates on every probe.
///
/// All branches are on by default; switching branches off is used by the
/// ablation experiments (see `crates/bench/src/bin/ablation.rs`) to measure
/// how much each of the paper's mechanisms contributes to the final quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchSet {
    /// Evaluate the §4 knapsack two-shelf construction.
    pub two_shelf: bool,
    /// Evaluate the §3.2 canonical list algorithm.
    pub canonical_list: bool,
    /// Evaluate the §3.1 malleable list algorithm.
    pub malleable_list: bool,
    /// Evaluate the FFDH level packing of the canonical allotment.
    pub level_packing: bool,
}

impl Default for BranchSet {
    fn default() -> Self {
        BranchSet {
            two_shelf: true,
            canonical_list: true,
            malleable_list: true,
            level_packing: true,
        }
    }
}

impl BranchSet {
    /// Only the knapsack two-shelf construction (plus nothing to fall back on).
    pub fn two_shelf_only() -> Self {
        BranchSet {
            two_shelf: true,
            canonical_list: false,
            malleable_list: false,
            level_packing: false,
        }
    }

    /// Only the list-scheduling branches of §3.
    pub fn lists_only() -> Self {
        BranchSet {
            two_shelf: false,
            canonical_list: true,
            malleable_list: true,
            level_packing: false,
        }
    }

    /// At least one branch must be enabled for the scheduler to make sense.
    pub fn is_empty(&self) -> bool {
        !(self.two_shelf || self.canonical_list || self.malleable_list || self.level_packing)
    }
}

/// The combined MRT dual approximation.
#[derive(Debug, Clone, Copy)]
pub struct MrtScheduler {
    /// The second-shelf parameter λ (default `√3 − 1`, the paper's choice).
    pub lambda: f64,
    /// The λ used by the canonical list branch's area test (default `√3/2`).
    pub list_lambda: f64,
    /// Knapsack resolution strategy.
    pub strategy: knapsack::Strategy,
    /// Which branches are evaluated on every probe (all by default).
    pub branches: BranchSet,
    /// Evaluate the independent branches concurrently with scoped threads.
    ///
    /// The two-shelf and malleable-list branches run on their own threads
    /// while the main thread evaluates the list/packing branches.  Spawned
    /// branches cannot borrow the probe workspace, so they fall back to their
    /// allocating paths — the toggle trades the allocation-free invariant for
    /// latency on large instances; off by default.
    pub parallel_branches: bool,
}

impl Default for MrtScheduler {
    fn default() -> Self {
        MrtScheduler {
            lambda: 3f64.sqrt() - 1.0,
            list_lambda: 3f64.sqrt() / 2.0,
            strategy: knapsack::Strategy::default(),
            branches: BranchSet::default(),
            parallel_branches: false,
        }
    }
}

impl MrtScheduler {
    /// Create a scheduler with a custom two-shelf λ.
    pub fn with_lambda(lambda: f64) -> Result<Self> {
        if !(lambda > 0.5 && lambda <= 1.0 + 1e-12) {
            return Err(Error::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(MrtScheduler {
            lambda,
            ..Default::default()
        })
    }

    /// Create a scheduler that only evaluates the given branches (used by the
    /// ablation experiments).
    pub fn with_branches(branches: BranchSet) -> Result<Self> {
        if branches.is_empty() {
            return Err(Error::InvalidParameter {
                name: "branches",
                value: 0.0,
            });
        }
        Ok(MrtScheduler {
            branches,
            ..Default::default()
        })
    }

    fn two_shelf_params(&self) -> TwoShelfParams {
        TwoShelfParams {
            lambda: self.lambda,
            strategy: self.strategy,
        }
    }

    /// Probe a guess and report which branch won, for the branch-statistics
    /// experiment (see `crates/bench`).
    pub fn probe_with_report(&self, instance: &Instance, omega: f64) -> (DualOutcome, ProbeReport) {
        self.probe_with_report_in(instance, omega, &mut ProbeWorkspace::new())
    }

    /// Same as [`MrtScheduler::probe_with_report`], reusing the buffers of
    /// `workspace`: the canonical allotment (with its sort order) is
    /// recomputed in place, and every branch draws its scratch — rectangles,
    /// First Fit bins, knapsack DP tables — from the workspace, so a
    /// steady-state probe allocates nothing beyond the schedules it builds.
    pub fn probe_with_report_in(
        &self,
        instance: &Instance,
        omega: f64,
        workspace: &mut ProbeWorkspace,
    ) -> (DualOutcome, ProbeReport) {
        let signature = workspace.capacity_signature();
        let result = self.probe_branches(instance, omega, workspace);
        workspace.note_probe(signature);
        result
    }

    fn probe_branches(
        &self,
        instance: &Instance,
        omega: f64,
        workspace: &mut ProbeWorkspace,
    ) -> (DualOutcome, ProbeReport) {
        let mut report = ProbeReport {
            omega,
            branch: None,
            makespan: None,
            lambda_area: None,
            area_condition: None,
        };
        if !bounds::may_be_feasible(instance, omega) {
            return (DualOutcome::Infeasible, report);
        }
        let canonical = match workspace.take_canonical(instance, omega) {
            Ok(c) => c,
            Err(_) => return (DualOutcome::Infeasible, report),
        };
        let m = instance.processors();
        let area = canonical.lambda_area(m);
        report.lambda_area = Some(area);
        report.area_condition = Some(area <= self.list_lambda * m as f64 * omega + 1e-9);

        // Keep the best schedule by *moving* candidates behind a cached
        // makespan: at most one schedule is retained and every candidate's
        // makespan is computed exactly once.
        let mut best: Option<(Schedule, Branch, f64)> = None;
        let mut consider = |candidate: Option<(Schedule, Branch)>| {
            if let Some((schedule, branch)) = candidate {
                let makespan = schedule.makespan();
                if best.as_ref().is_none_or(|&(_, _, m)| makespan < m) {
                    best = Some((schedule, branch, makespan));
                }
            }
        };

        if self.parallel_branches {
            // The two-shelf and malleable-list branches are independent of
            // the list/packing branches; evaluate them on scoped threads.
            // Spawned branches cannot borrow the workspace, so they use the
            // allocating paths.
            let (two_shelf_result, mla_result, list_result, packing_result) =
                std::thread::scope(|scope| {
                    let two_shelf_handle = self.branches.two_shelf.then(|| {
                        let canonical = &canonical;
                        scope.spawn(move || {
                            two_shelf::build_with_canonical(
                                instance,
                                canonical,
                                self.two_shelf_params(),
                            )
                        })
                    });
                    let mla_handle = self.branches.malleable_list.then(|| {
                        scope.spawn(move || {
                            MalleableListAlgorithm::default()
                                .build(instance, omega)
                                .ok()
                        })
                    });
                    let list = self
                        .branches
                        .canonical_list
                        .then(|| canonical_list_schedule(instance, &canonical));
                    // The packing branch runs on the main thread, so it can
                    // still borrow the workspace's rect scratch.
                    let packing = self.branches.level_packing.then(|| {
                        level_packing_schedule_in(instance, &canonical, &mut workspace.rects)
                    });
                    (
                        two_shelf_handle.map(|h| h.join().expect("two-shelf branch panicked")),
                        mla_handle.map(|h| h.join().expect("malleable-list branch panicked")),
                        list,
                        packing,
                    )
                });
            consider(
                two_shelf_result
                    .flatten()
                    .map(|ts| (ts.schedule, Branch::TwoShelf(ts.kind))),
            );
            consider(list_result.map(|s| (s, Branch::CanonicalList)));
            consider(mla_result.flatten().map(|s| (s, Branch::MalleableList)));
            consider(packing_result.map(|s| (s, Branch::LevelPacking)));
        } else {
            // Branch 1: two-shelf knapsack construction (§4).
            if self.branches.two_shelf {
                consider(
                    two_shelf::build_with_canonical_in(
                        instance,
                        &canonical,
                        self.two_shelf_params(),
                        workspace,
                    )
                    .map(|ts| (ts.schedule, Branch::TwoShelf(ts.kind))),
                );
            }

            // Branch 2: canonical list algorithm (§3.2), reusing the cached
            // decreasing-time order of the canonical allotment.
            if self.branches.canonical_list {
                consider(Some((
                    canonical_list_schedule(instance, &canonical),
                    Branch::CanonicalList,
                )));
            }

            // Branch 3: malleable list algorithm (§3.1).
            if self.branches.malleable_list {
                consider(
                    MalleableListAlgorithm::default()
                        .build(instance, omega)
                        .ok()
                        .map(|s| (s, Branch::MalleableList)),
                );
            }

            // Branch 4: FFDH level packing of the canonical allotment.
            if self.branches.level_packing {
                consider(Some((
                    level_packing_schedule_in(instance, &canonical, &mut workspace.rects),
                    Branch::LevelPacking,
                )));
            }
        }
        workspace.store_canonical(canonical);

        match best {
            Some((schedule, branch, makespan)) => {
                report.branch = Some(branch);
                report.makespan = Some(makespan);
                (DualOutcome::Feasible(schedule), report)
            }
            None => (DualOutcome::Infeasible, report),
        }
    }

    /// Convenience: solve an instance end to end with the default dual search.
    pub fn schedule(&self, instance: &Instance) -> Result<SearchResult> {
        DualSearch::default().solve(instance, self)
    }

    /// Solve an instance with the given search mode (breakpoint-exact or
    /// classical bisection) and a reusable workspace.
    pub fn schedule_with(&self, instance: &Instance, mode: SearchMode) -> Result<SearchResult> {
        DualSearch::default().solve_guided(instance, self, mode, None, &mut ProbeWorkspace::new())
    }
}

/// The canonical list schedule (§3.2) via the cached decreasing-time order.
fn canonical_list_schedule(instance: &Instance, canonical: &CanonicalAllotment) -> Schedule {
    schedule_rigid_in_order(
        instance,
        &canonical.allotment,
        canonical.sorted_by_decreasing_time(),
    )
}

impl DualApproximation for MrtScheduler {
    fn name(&self) -> &'static str {
        "mrt-sqrt3"
    }

    fn guarantee(&self, _instance: &Instance) -> f64 {
        1.0 + self.lambda
    }

    fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome {
        self.probe_with_report(instance, omega).0
    }

    fn probe_with_workspace(
        &self,
        instance: &Instance,
        omega: f64,
        workspace: &mut ProbeWorkspace,
    ) -> DualOutcome {
        self.probe_with_report_in(instance, omega, workspace).0
    }
}

/// Schedule the canonical allotment with FFDH level packing.  This is the
/// Ludwig-style "strip packing on a fixed allotment" step, exposed here so the
/// combined scheduler can use it as an extra branch.
pub fn level_packing_schedule(instance: &Instance, canonical: &CanonicalAllotment) -> Schedule {
    level_packing_schedule_in(instance, canonical, &mut Vec::new())
}

/// Same as [`level_packing_schedule`], writing the intermediate rectangles
/// into a caller-provided scratch buffer (cleared first) so repeated probes
/// reuse the same heap storage.
pub fn level_packing_schedule_in(
    instance: &Instance,
    canonical: &CanonicalAllotment,
    rects: &mut Vec<Rect>,
) -> Schedule {
    let m = instance.processors();
    rects.clear();
    rects.extend(
        (0..instance.task_count())
            .map(|t| Rect::new(canonical.allotment.processors(t), canonical.times[t])),
    );
    let packing = ffdh(rects, m);
    let mut schedule = Schedule::new(m);
    for placement in &packing.placements {
        let t = placement.index;
        schedule.push(ScheduledTask {
            task: t,
            start: placement.y,
            duration: canonical.times[t],
            processors: ProcessorRange::new(placement.x, canonical.allotment.processors(t)),
        });
    }
    schedule
}

/// One-call convenience API: schedule an instance with the paper's default
/// parameters and a default-precision dual search.
pub fn schedule(instance: &Instance) -> Result<SearchResult> {
    MrtScheduler::default().schedule(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mixed_instance(seed: u64, n: usize, m: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let profiles: Vec<SpeedupProfile> = (0..n)
            .map(|_| {
                let work: f64 = rng.gen_range(0.5..8.0);
                let seq_fraction: f64 = rng.gen_range(0.05..0.6);
                SpeedupProfile::from_fn(m, |p| {
                    work * (seq_fraction + (1.0 - seq_fraction) / p as f64)
                })
                .unwrap()
            })
            .collect();
        Instance::from_profiles(profiles, m).unwrap()
    }

    #[test]
    fn schedule_convenience_produces_valid_result() {
        let inst = mixed_instance(7, 12, 8);
        let result = schedule(&inst).unwrap();
        assert!(result.schedule.validate(&inst).is_ok());
        assert!(result.schedule.makespan() >= result.certified_lower_bound - 1e-9);
    }

    #[test]
    fn guarantee_is_sqrt3_with_default_lambda() {
        let scheduler = MrtScheduler::default();
        let inst = mixed_instance(1, 4, 4);
        assert!((scheduler.guarantee(&inst) - 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn invalid_lambda_is_rejected() {
        assert!(MrtScheduler::with_lambda(0.3).is_err());
        assert!(MrtScheduler::with_lambda(1.5).is_err());
        assert!(MrtScheduler::with_lambda(0.9).is_ok());
    }

    #[test]
    fn probe_reports_area_and_branch() {
        let inst = mixed_instance(3, 10, 8);
        let scheduler = MrtScheduler::default();
        let omega = bounds::upper_bound(&inst);
        let (outcome, report) = scheduler.probe_with_report(&inst, omega);
        assert!(outcome.is_feasible());
        assert!(report.branch.is_some());
        assert!(report.lambda_area.unwrap() > 0.0);
        assert!(report.makespan.unwrap() > 0.0);
    }

    #[test]
    fn probe_rejects_certifiably_infeasible_omega() {
        let inst = mixed_instance(5, 6, 4);
        let scheduler = MrtScheduler::default();
        let lb = bounds::lower_bound(&inst);
        let (outcome, report) = scheduler.probe_with_report(&inst, lb * 0.3);
        assert!(!outcome.is_feasible());
        assert!(report.branch.is_none());
    }

    #[test]
    fn ratio_stays_below_sqrt3_on_moderate_machines() {
        // The paper's regime: m comfortably above m_λ.  The a-posteriori
        // ratio (makespan vs certified lower bound) must stay below √3 plus
        // the dichotomic-search slack.
        for seed in 0..12u64 {
            let inst = mixed_instance(seed, 20, 16);
            let result = schedule(&inst).unwrap();
            assert!(result.schedule.validate(&inst).is_ok());
            let ratio = result.ratio();
            assert!(
                ratio <= 3f64.sqrt() + 0.02,
                "seed {seed}: ratio {ratio} exceeds √3"
            );
        }
    }

    #[test]
    fn level_packing_branch_is_valid() {
        let inst = mixed_instance(11, 15, 8);
        let omega = bounds::upper_bound(&inst);
        let canonical = CanonicalAllotment::compute(&inst, omega).unwrap();
        let schedule = level_packing_schedule(&inst, &canonical);
        assert!(schedule.validate(&inst).is_ok());
    }

    #[test]
    fn single_task_instances_are_scheduled_optimally() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::linear(6.0, 6).unwrap()], 6).unwrap();
        let result = schedule(&inst).unwrap();
        assert!((result.schedule.makespan() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_sequential_instance_matches_lpt_quality() {
        let inst = Instance::from_profiles(
            (0..9)
                .map(|i| SpeedupProfile::sequential(1.0 + 0.1 * i as f64).unwrap())
                .collect(),
            3,
        )
        .unwrap();
        let result = schedule(&inst).unwrap();
        assert!(result.schedule.validate(&inst).is_ok());
        // LPT on these durations is within 4/3 of the optimum; the MRT result
        // must not be worse than that.
        assert!(
            result.ratio() <= 4.0 / 3.0 + 0.05,
            "ratio {}",
            result.ratio()
        );
    }

    #[test]
    fn branch_sets_can_be_restricted() {
        let inst = mixed_instance(9, 10, 8);
        let all = MrtScheduler::default().schedule(&inst).unwrap();
        for branches in [BranchSet::two_shelf_only(), BranchSet::lists_only()] {
            let restricted = MrtScheduler::with_branches(branches)
                .unwrap()
                .schedule(&inst)
                .unwrap();
            assert!(restricted.schedule.validate(&inst).is_ok());
            // The full scheduler keeps the best branch, so restricting the
            // branch set can never improve the result.
            assert!(all.schedule.makespan() <= restricted.schedule.makespan() + 1e-9);
        }
        assert!(MrtScheduler::with_branches(BranchSet {
            two_shelf: false,
            canonical_list: false,
            malleable_list: false,
            level_packing: false,
        })
        .is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// End-to-end: schedules are always valid and the achieved ratio stays
        /// below the paper's guarantee (plus search slack) for machines in the
        /// theorem regime, and below 2 even for small machines.
        #[test]
        fn end_to_end_guarantee(seed in 0u64..500, n in 3usize..24, m in 4usize..20) {
            let inst = mixed_instance(seed, n, m);
            let result = schedule(&inst).unwrap();
            prop_assert!(result.schedule.validate(&inst).is_ok());
            let ratio = result.ratio();
            let cap = if m >= 8 { 3f64.sqrt() + 0.02 } else { 2.0 };
            prop_assert!(ratio <= cap, "ratio {ratio} exceeds cap {cap} (m = {m})");
        }
    }
}
