//! The combined MRT scheduler (Mounié–Rapine–Trystram, SPAA 1999).
//!
//! The paper's final algorithm (Theorem 3 together with §3) is a dual
//! approximation that, given a guess `ω`:
//!
//! 1. rejects `ω` when the canonical allotment does not exist or violates the
//!    necessary work/width conditions (a certificate that `OPT > ω`);
//! 2. otherwise builds a schedule by the branch the instance parameters call
//!    for — the knapsack-based two-shelf construction of §4 when the
//!    canonical λ-area is large, the canonical list algorithm of §3.2 when it
//!    is small, with the malleable list algorithm of §3.1 as the small-`m`
//!    fallback.
//!
//! This implementation evaluates *all* branches (plus a level-packing branch
//! used by the baselines) and keeps the shortest schedule.  Running every
//! branch costs `O(n·m)` in the worst case — the same order as the knapsack
//! resolution alone — and makes the oracle robust outside the regime where
//! the paper's existence lemmas apply (small machines, `m < m_λ`), because a
//! probe never *rejects* a guess it cannot certify infeasible.  The paper's
//! worst-case guarantee of `√3·ω ≈ (1 + λ)·ω` is therefore realised whenever
//! any branch achieves it (which the lemmas prove for `m ≥ m_λ`), and the
//! benchmark suite tracks the achieved ratios empirically across workload
//! families (see `EXPERIMENTS.md`).

use crate::bounds;
use crate::canonical::CanonicalAllotment;
use crate::dual::{DualApproximation, DualOutcome, DualSearch, SearchResult};
use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::list::{schedule_rigid, ListOrder};
use crate::mla::MalleableListAlgorithm;
use crate::schedule::{ProcessorRange, Schedule, ScheduledTask};
use crate::two_shelf::{self, TwoShelfKind, TwoShelfParams};
use packing::rect::Rect;
use packing::strip::ffdh;

/// Which branch produced the schedule returned by a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Branch {
    /// The §4 two-shelf construction (with the mechanism that succeeded).
    TwoShelf(TwoShelfKind),
    /// The §3.2 canonical list algorithm.
    CanonicalList,
    /// The §3.1 malleable list algorithm.
    MalleableList,
    /// FFDH level packing of the canonical allotment (baseline-style branch).
    LevelPacking,
}

/// Diagnostic information about one probe of the MRT oracle.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// The guess that was probed.
    pub omega: f64,
    /// The winning branch, when the probe was feasible.
    pub branch: Option<Branch>,
    /// Makespan of the winning schedule, when feasible.
    pub makespan: Option<f64>,
    /// The canonical λ-area `S_m` at this guess (when the canonical allotment
    /// exists), for reproducing the branch statistics of the paper.
    pub lambda_area: Option<f64>,
    /// Whether the λ-area condition `S_m ≤ λ·m·ω` of Theorem 2 held.
    pub area_condition: Option<bool>,
}

/// Which branches the combined scheduler evaluates on every probe.
///
/// All branches are on by default; switching branches off is used by the
/// ablation experiments (see `crates/bench/src/bin/ablation.rs`) to measure
/// how much each of the paper's mechanisms contributes to the final quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchSet {
    /// Evaluate the §4 knapsack two-shelf construction.
    pub two_shelf: bool,
    /// Evaluate the §3.2 canonical list algorithm.
    pub canonical_list: bool,
    /// Evaluate the §3.1 malleable list algorithm.
    pub malleable_list: bool,
    /// Evaluate the FFDH level packing of the canonical allotment.
    pub level_packing: bool,
}

impl Default for BranchSet {
    fn default() -> Self {
        BranchSet {
            two_shelf: true,
            canonical_list: true,
            malleable_list: true,
            level_packing: true,
        }
    }
}

impl BranchSet {
    /// Only the knapsack two-shelf construction (plus nothing to fall back on).
    pub fn two_shelf_only() -> Self {
        BranchSet {
            two_shelf: true,
            canonical_list: false,
            malleable_list: false,
            level_packing: false,
        }
    }

    /// Only the list-scheduling branches of §3.
    pub fn lists_only() -> Self {
        BranchSet {
            two_shelf: false,
            canonical_list: true,
            malleable_list: true,
            level_packing: false,
        }
    }

    /// At least one branch must be enabled for the scheduler to make sense.
    pub fn is_empty(&self) -> bool {
        !(self.two_shelf || self.canonical_list || self.malleable_list || self.level_packing)
    }
}

/// The combined MRT dual approximation.
#[derive(Debug, Clone, Copy)]
pub struct MrtScheduler {
    /// The second-shelf parameter λ (default `√3 − 1`, the paper's choice).
    pub lambda: f64,
    /// The λ used by the canonical list branch's area test (default `√3/2`).
    pub list_lambda: f64,
    /// Knapsack resolution strategy.
    pub strategy: knapsack::Strategy,
    /// Which branches are evaluated on every probe (all by default).
    pub branches: BranchSet,
}

impl Default for MrtScheduler {
    fn default() -> Self {
        MrtScheduler {
            lambda: 3f64.sqrt() - 1.0,
            list_lambda: 3f64.sqrt() / 2.0,
            strategy: knapsack::Strategy::default(),
            branches: BranchSet::default(),
        }
    }
}

impl MrtScheduler {
    /// Create a scheduler with a custom two-shelf λ.
    pub fn with_lambda(lambda: f64) -> Result<Self> {
        if !(lambda > 0.5 && lambda <= 1.0 + 1e-12) {
            return Err(Error::InvalidParameter {
                name: "lambda",
                value: lambda,
            });
        }
        Ok(MrtScheduler {
            lambda,
            ..Default::default()
        })
    }

    /// Create a scheduler that only evaluates the given branches (used by the
    /// ablation experiments).
    pub fn with_branches(branches: BranchSet) -> Result<Self> {
        if branches.is_empty() {
            return Err(Error::InvalidParameter {
                name: "branches",
                value: 0.0,
            });
        }
        Ok(MrtScheduler {
            branches,
            ..Default::default()
        })
    }

    fn two_shelf_params(&self) -> TwoShelfParams {
        TwoShelfParams {
            lambda: self.lambda,
            strategy: self.strategy,
        }
    }

    /// Probe a guess and report which branch won, for the branch-statistics
    /// experiment (see `crates/bench`).
    pub fn probe_with_report(&self, instance: &Instance, omega: f64) -> (DualOutcome, ProbeReport) {
        let mut report = ProbeReport {
            omega,
            branch: None,
            makespan: None,
            lambda_area: None,
            area_condition: None,
        };
        if !bounds::may_be_feasible(instance, omega) {
            return (DualOutcome::Infeasible, report);
        }
        let canonical = match CanonicalAllotment::compute(instance, omega) {
            Ok(c) => c,
            Err(_) => return (DualOutcome::Infeasible, report),
        };
        let m = instance.processors();
        let area = canonical.lambda_area(m);
        report.lambda_area = Some(area);
        report.area_condition = Some(area <= self.list_lambda * m as f64 * omega + 1e-9);

        let mut best: Option<(Schedule, Branch)> = None;
        let mut consider = |schedule: Schedule, branch: Branch| match &best {
            Some((current, _)) if current.makespan() <= schedule.makespan() => {}
            _ => best = Some((schedule, branch)),
        };

        // Branch 1: two-shelf knapsack construction (§4).
        if self.branches.two_shelf {
            if let Some(ts) =
                two_shelf::build_with_canonical(instance, &canonical, self.two_shelf_params())
            {
                consider(ts.schedule, Branch::TwoShelf(ts.kind));
            }
        }

        // Branch 2: canonical list algorithm (§3.2).
        if self.branches.canonical_list {
            consider(
                schedule_rigid(
                    instance,
                    &canonical.allotment,
                    ListOrder::DecreasingAllottedTime,
                ),
                Branch::CanonicalList,
            );
        }

        // Branch 3: malleable list algorithm (§3.1).
        if self.branches.malleable_list {
            if let Ok(schedule) = MalleableListAlgorithm::default().build(instance, omega) {
                consider(schedule, Branch::MalleableList);
            }
        }

        // Branch 4: FFDH level packing of the canonical allotment.
        if self.branches.level_packing {
            consider(
                level_packing_schedule(instance, &canonical),
                Branch::LevelPacking,
            );
        }

        match best {
            Some((schedule, branch)) => {
                report.branch = Some(branch);
                report.makespan = Some(schedule.makespan());
                (DualOutcome::Feasible(schedule), report)
            }
            None => (DualOutcome::Infeasible, report),
        }
    }

    /// Convenience: solve an instance end to end with the default dual search.
    pub fn schedule(&self, instance: &Instance) -> Result<SearchResult> {
        DualSearch::default().solve(instance, self)
    }
}

impl DualApproximation for MrtScheduler {
    fn name(&self) -> &'static str {
        "mrt-sqrt3"
    }

    fn guarantee(&self, _instance: &Instance) -> f64 {
        1.0 + self.lambda
    }

    fn probe(&self, instance: &Instance, omega: f64) -> DualOutcome {
        self.probe_with_report(instance, omega).0
    }
}

/// Schedule the canonical allotment with FFDH level packing.  This is the
/// Ludwig-style "strip packing on a fixed allotment" step, exposed here so the
/// combined scheduler can use it as an extra branch.
pub fn level_packing_schedule(instance: &Instance, canonical: &CanonicalAllotment) -> Schedule {
    let m = instance.processors();
    let rects: Vec<Rect> = (0..instance.task_count())
        .map(|t| Rect::new(canonical.allotment.processors(t), canonical.times[t]))
        .collect();
    let packing = ffdh(&rects, m);
    let mut schedule = Schedule::new(m);
    for placement in &packing.placements {
        let t = placement.index;
        schedule.push(ScheduledTask {
            task: t,
            start: placement.y,
            duration: canonical.times[t],
            processors: ProcessorRange::new(placement.x, canonical.allotment.processors(t)),
        });
    }
    schedule
}

/// One-call convenience API: schedule an instance with the paper's default
/// parameters and a default-precision dual search.
pub fn schedule(instance: &Instance) -> Result<SearchResult> {
    MrtScheduler::default().schedule(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn mixed_instance(seed: u64, n: usize, m: usize) -> Instance {
        let mut rng = StdRng::seed_from_u64(seed);
        let profiles: Vec<SpeedupProfile> = (0..n)
            .map(|_| {
                let work: f64 = rng.gen_range(0.5..8.0);
                let seq_fraction: f64 = rng.gen_range(0.05..0.6);
                SpeedupProfile::from_fn(m, |p| {
                    work * (seq_fraction + (1.0 - seq_fraction) / p as f64)
                })
                .unwrap()
            })
            .collect();
        Instance::from_profiles(profiles, m).unwrap()
    }

    #[test]
    fn schedule_convenience_produces_valid_result() {
        let inst = mixed_instance(7, 12, 8);
        let result = schedule(&inst).unwrap();
        assert!(result.schedule.validate(&inst).is_ok());
        assert!(result.schedule.makespan() >= result.certified_lower_bound - 1e-9);
    }

    #[test]
    fn guarantee_is_sqrt3_with_default_lambda() {
        let scheduler = MrtScheduler::default();
        let inst = mixed_instance(1, 4, 4);
        assert!((scheduler.guarantee(&inst) - 3f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn invalid_lambda_is_rejected() {
        assert!(MrtScheduler::with_lambda(0.3).is_err());
        assert!(MrtScheduler::with_lambda(1.5).is_err());
        assert!(MrtScheduler::with_lambda(0.9).is_ok());
    }

    #[test]
    fn probe_reports_area_and_branch() {
        let inst = mixed_instance(3, 10, 8);
        let scheduler = MrtScheduler::default();
        let omega = bounds::upper_bound(&inst);
        let (outcome, report) = scheduler.probe_with_report(&inst, omega);
        assert!(outcome.is_feasible());
        assert!(report.branch.is_some());
        assert!(report.lambda_area.unwrap() > 0.0);
        assert!(report.makespan.unwrap() > 0.0);
    }

    #[test]
    fn probe_rejects_certifiably_infeasible_omega() {
        let inst = mixed_instance(5, 6, 4);
        let scheduler = MrtScheduler::default();
        let lb = bounds::lower_bound(&inst);
        let (outcome, report) = scheduler.probe_with_report(&inst, lb * 0.3);
        assert!(!outcome.is_feasible());
        assert!(report.branch.is_none());
    }

    #[test]
    fn ratio_stays_below_sqrt3_on_moderate_machines() {
        // The paper's regime: m comfortably above m_λ.  The a-posteriori
        // ratio (makespan vs certified lower bound) must stay below √3 plus
        // the dichotomic-search slack.
        for seed in 0..12u64 {
            let inst = mixed_instance(seed, 20, 16);
            let result = schedule(&inst).unwrap();
            assert!(result.schedule.validate(&inst).is_ok());
            let ratio = result.ratio();
            assert!(
                ratio <= 3f64.sqrt() + 0.02,
                "seed {seed}: ratio {ratio} exceeds √3"
            );
        }
    }

    #[test]
    fn level_packing_branch_is_valid() {
        let inst = mixed_instance(11, 15, 8);
        let omega = bounds::upper_bound(&inst);
        let canonical = CanonicalAllotment::compute(&inst, omega).unwrap();
        let schedule = level_packing_schedule(&inst, &canonical);
        assert!(schedule.validate(&inst).is_ok());
    }

    #[test]
    fn single_task_instances_are_scheduled_optimally() {
        let inst =
            Instance::from_profiles(vec![SpeedupProfile::linear(6.0, 6).unwrap()], 6).unwrap();
        let result = schedule(&inst).unwrap();
        assert!((result.schedule.makespan() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn all_sequential_instance_matches_lpt_quality() {
        let inst = Instance::from_profiles(
            (0..9)
                .map(|i| SpeedupProfile::sequential(1.0 + 0.1 * i as f64).unwrap())
                .collect(),
            3,
        )
        .unwrap();
        let result = schedule(&inst).unwrap();
        assert!(result.schedule.validate(&inst).is_ok());
        // LPT on these durations is within 4/3 of the optimum; the MRT result
        // must not be worse than that.
        assert!(
            result.ratio() <= 4.0 / 3.0 + 0.05,
            "ratio {}",
            result.ratio()
        );
    }

    #[test]
    fn branch_sets_can_be_restricted() {
        let inst = mixed_instance(9, 10, 8);
        let all = MrtScheduler::default().schedule(&inst).unwrap();
        for branches in [BranchSet::two_shelf_only(), BranchSet::lists_only()] {
            let restricted = MrtScheduler::with_branches(branches)
                .unwrap()
                .schedule(&inst)
                .unwrap();
            assert!(restricted.schedule.validate(&inst).is_ok());
            // The full scheduler keeps the best branch, so restricting the
            // branch set can never improve the result.
            assert!(all.schedule.makespan() <= restricted.schedule.makespan() + 1e-9);
        }
        assert!(MrtScheduler::with_branches(BranchSet {
            two_shelf: false,
            canonical_list: false,
            malleable_list: false,
            level_packing: false,
        })
        .is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        /// End-to-end: schedules are always valid and the achieved ratio stays
        /// below the paper's guarantee (plus search slack) for machines in the
        /// theorem regime, and below 2 even for small machines.
        #[test]
        fn end_to_end_guarantee(seed in 0u64..500, n in 3usize..24, m in 4usize..20) {
            let inst = mixed_instance(seed, n, m);
            let result = schedule(&inst).unwrap();
            prop_assert!(result.schedule.validate(&inst).is_ok());
            let ratio = result.ratio();
            let cap = if m >= 8 { 3f64.sqrt() + 0.02 } else { 2.0 };
            prop_assert!(ratio <= cap, "ratio {ratio} exceeds cap {cap} (m = {m})");
        }
    }
}
