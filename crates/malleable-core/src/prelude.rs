//! Convenience re-exports for library users.
//!
//! ```rust
//! use malleable_core::prelude::*;
//!
//! let task = SpeedupProfile::linear(4.0, 4).unwrap();
//! let instance = Instance::from_profiles(vec![task], 4).unwrap();
//! let result = MrtScheduler::default().schedule(&instance).unwrap();
//! assert!(result.schedule.makespan() > 0.0);
//! ```

pub use crate::allotment::Allotment;
pub use crate::bounds::{area_bound, critical_task_bound, lower_bound, upper_bound};
pub use crate::canonical::{CanonicalAllotment, CanonicalListAlgorithm};
pub use crate::dual::{DualApproximation, DualOutcome, DualSearch, SearchMode, SearchResult};
pub use crate::eps::{approx_eq, approx_ge, approx_le, approx_ne, approx_zero, EPS};
pub use crate::error::{Error, Result};
pub use crate::instance::{Instance, InstanceSummary};
pub use crate::list::{schedule_rigid, ListOrder};
pub use crate::mla::MalleableListAlgorithm;
pub use crate::mrt::{Branch, BranchSet, MrtScheduler};
pub use crate::schedule::{ProcessorRange, Schedule, ScheduledTask};
pub use crate::solver::{
    CanonicalListSolver, ConfigValue, MrtSolver, SolveOutcome, SolveRequest, Solver,
    SolverCapabilities, SolverConfig, SolverHandle, SolverRegistry,
};
pub use crate::task::{MalleableTask, SpeedupProfile, TaskId};
pub use crate::two_shelf::{TwoShelfKind, TwoShelfParams};
pub use crate::workspace::ProbeWorkspace;
pub use crate::{LAMBDA_SQRT3, SQRT3};
