//! Schedules: the output of every scheduling algorithm in this workspace.
//!
//! The paper searches for *non-preemptive, contiguous* schedules (§2): every
//! task runs without interruption on a block of processors with consecutive
//! indices, using a constant number of processors for its whole execution.
//! A [`Schedule`] is simply the list of per-task placements; the structural
//! invariants (no overlap, machine capacity, consistency with the task
//! profiles) are checked by [`Schedule::validate`] and, more thoroughly, by
//! the `simulator` crate.

use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::task::TaskId;

/// A block of processors with consecutive indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ProcessorRange {
    /// Index of the first processor (0-based).
    pub first: usize,
    /// Number of processors in the block (≥ 1).
    pub count: usize,
}

impl ProcessorRange {
    /// Create a new range.
    pub fn new(first: usize, count: usize) -> Self {
        assert!(count >= 1, "a processor range must contain a processor");
        ProcessorRange { first, count }
    }

    /// One-past-the-end processor index.
    pub fn end(&self) -> usize {
        self.first + self.count
    }

    /// Whether two ranges share at least one processor.
    pub fn overlaps(&self, other: &ProcessorRange) -> bool {
        self.first < other.end() && other.first < self.end()
    }

    /// Whether the range fits a machine with `m` processors.
    pub fn fits(&self, m: usize) -> bool {
        self.end() <= m
    }
}

/// The placement of a single task.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ScheduledTask {
    /// Which task this entry schedules.
    pub task: TaskId,
    /// Start time (≥ 0).
    pub start: f64,
    /// Execution time of the task under its allotted processor count.
    pub duration: f64,
    /// The contiguous block of processors the task occupies.
    pub processors: ProcessorRange,
}

impl ScheduledTask {
    /// Completion time of the task.
    pub fn finish(&self) -> f64 {
        self.start + self.duration
    }

    /// Whether this placement overlaps another in both time and processors.
    pub fn conflicts_with(&self, other: &ScheduledTask) -> bool {
        let time_overlap = self.start < other.finish() - 1e-9 && other.start < self.finish() - 1e-9;
        time_overlap && self.processors.overlaps(&other.processors)
    }
}

/// A complete schedule of an instance.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Schedule {
    processors: usize,
    entries: Vec<ScheduledTask>,
}

impl Schedule {
    /// Create an empty schedule for a machine with `processors` processors.
    pub fn new(processors: usize) -> Self {
        Schedule {
            processors,
            entries: Vec::new(),
        }
    }

    /// Number of processors of the machine the schedule targets.
    pub fn processors(&self) -> usize {
        self.processors
    }

    /// Add a placement.
    pub fn push(&mut self, entry: ScheduledTask) {
        self.entries.push(entry);
    }

    /// All placements, in insertion order.
    pub fn entries(&self) -> &[ScheduledTask] {
        &self.entries
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The placement of a given task, if any.
    pub fn entry_for(&self, task: TaskId) -> Option<&ScheduledTask> {
        self.entries.iter().find(|e| e.task == task)
    }

    /// Makespan: the latest completion time (0 for an empty schedule).
    pub fn makespan(&self) -> f64 {
        self.entries
            .iter()
            .map(ScheduledTask::finish)
            .fold(0.0, f64::max)
    }

    /// Total work (processor-time product) committed by the schedule.
    pub fn total_work(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.processors.count as f64 * e.duration)
            .sum()
    }

    /// Average machine utilisation over the makespan horizon (in `[0, 1]`).
    pub fn utilization(&self) -> f64 {
        let horizon = self.makespan();
        if horizon <= 0.0 {
            return 0.0;
        }
        self.total_work() / (self.processors as f64 * horizon)
    }

    /// Check the structural invariants of the schedule against its instance:
    ///
    /// 1. every task of the instance is scheduled exactly once;
    /// 2. every placement fits the machine (`first + count ≤ m`);
    /// 3. the recorded duration equals the task's execution time on the
    ///    allotted processor count;
    /// 4. no two placements overlap in time on a shared processor;
    /// 5. start times are non-negative and finite.
    pub fn validate(&self, instance: &Instance) -> Result<()> {
        if self.processors != instance.processors() {
            return Err(Error::InvalidAllotment {
                task: 0,
                processors: self.processors,
            });
        }
        let mut seen = vec![false; instance.task_count()];
        for e in &self.entries {
            if e.task >= instance.task_count() {
                return Err(Error::UnknownTask { task: e.task });
            }
            if seen[e.task] {
                return Err(Error::UnknownTask { task: e.task });
            }
            seen[e.task] = true;
            if !e.processors.fits(self.processors) {
                return Err(Error::InvalidAllotment {
                    task: e.task,
                    processors: e.processors.count,
                });
            }
            if !(e.start.is_finite() && e.start >= -1e-12) {
                return Err(Error::InvalidTime {
                    processors: e.processors.count,
                    time: e.start,
                });
            }
            let expected = instance.time(e.task, e.processors.count);
            if (expected - e.duration).abs() > 1e-6 {
                return Err(Error::InvalidTime {
                    processors: e.processors.count,
                    time: e.duration,
                });
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(Error::UnknownTask { task: missing });
        }
        for (i, a) in self.entries.iter().enumerate() {
            for b in self.entries.iter().skip(i + 1) {
                if a.conflicts_with(b) {
                    return Err(Error::InvalidAllotment {
                        task: b.task,
                        processors: b.processors.count,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![2.0, 1.2]).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
            ],
            3,
        )
        .unwrap()
    }

    fn entry(task: TaskId, start: f64, duration: f64, first: usize, count: usize) -> ScheduledTask {
        ScheduledTask {
            task,
            start,
            duration,
            processors: ProcessorRange::new(first, count),
        }
    }

    #[test]
    fn processor_range_overlap_logic() {
        let a = ProcessorRange::new(0, 2);
        let b = ProcessorRange::new(2, 2);
        let c = ProcessorRange::new(1, 2);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(b.overlaps(&c));
        assert!(a.fits(2));
        assert!(!b.fits(3));
    }

    #[test]
    fn makespan_and_work() {
        let inst = instance();
        let mut s = Schedule::new(inst.processors());
        s.push(entry(0, 0.0, 1.2, 0, 2));
        s.push(entry(1, 0.0, 1.0, 2, 1));
        assert!((s.makespan() - 1.2).abs() < 1e-12);
        assert!((s.total_work() - 3.4).abs() < 1e-12);
        assert!(s.utilization() > 0.9 && s.utilization() <= 1.0);
        assert!(s.validate(&inst).is_ok());
    }

    #[test]
    fn validate_detects_missing_task() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        assert!(matches!(
            s.validate(&inst).unwrap_err(),
            Error::UnknownTask { task: 1 }
        ));
    }

    #[test]
    fn validate_detects_duplicate_task() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        s.push(entry(0, 2.0, 1.2, 0, 2));
        s.push(entry(1, 0.0, 1.0, 2, 1));
        assert!(s.validate(&inst).is_err());
    }

    #[test]
    fn validate_detects_overlap() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 0, 2));
        s.push(entry(1, 0.5, 1.0, 1, 1));
        assert!(s.validate(&inst).is_err());
    }

    #[test]
    fn validate_detects_wrong_duration() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 0.9, 0, 2)); // true time on 2 processors is 1.2
        s.push(entry(1, 0.0, 1.0, 2, 1));
        assert!(matches!(
            s.validate(&inst).unwrap_err(),
            Error::InvalidTime { .. }
        ));
    }

    #[test]
    fn validate_detects_machine_overflow() {
        let inst = instance();
        let mut s = Schedule::new(3);
        s.push(entry(0, 0.0, 1.2, 2, 2)); // processors 2..4 on a 3-machine
        s.push(entry(1, 0.0, 1.0, 0, 1));
        assert!(s.validate(&inst).is_err());
    }

    #[test]
    fn touching_tasks_do_not_conflict() {
        let a = entry(0, 0.0, 1.0, 0, 2);
        let b = entry(1, 1.0, 1.0, 0, 2);
        assert!(!a.conflicts_with(&b));
    }

    #[test]
    fn empty_schedule_has_zero_makespan_and_utilization() {
        let s = Schedule::new(4);
        assert_eq!(s.makespan(), 0.0);
        assert_eq!(s.utilization(), 0.0);
        assert!(s.is_empty());
    }
}
