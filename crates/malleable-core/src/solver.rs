//! The unified solver API: one trait, one typed request/outcome pair, one
//! registry — shared by every consumer layer (CLI, online engine, benchmark
//! harness).
//!
//! Every algorithm in the workspace — the paper's √3 dual approximation, the
//! Ludwig/TWY two-phase baselines, gang scheduling, LPT, list variants —
//! answers the same question: *given an instance, produce a schedule and tell
//! me how good it is*.  Historically each had a bespoke entry point
//! (`MrtScheduler::schedule_with`, free functions in `baselines`, a
//! hand-rolled solver enum in the online crate); this module replaces them
//! with:
//!
//! * [`Solver`] — `solve(&SolveRequest) -> SolveOutcome`, plus
//!   [`Solver::name`], [`Solver::capabilities`] and an optional
//!   [`Solver::solve_with_workspace`] fast path that threads a
//!   [`ProbeWorkspace`] through warm-start-capable implementations;
//! * [`SolveRequest`] — a typed builder over instance, [`SearchMode`],
//!   [`BranchSet`], λ, warm-start hint and probe budget, replacing the
//!   scattered `with_lambda` / `with_branches` / `with_iterations`
//!   constructors;
//! * [`SolveOutcome`] — schedule, lower bound (certified or static),
//!   a-posteriori ratio, probe counter and wall time, uniformly for every
//!   algorithm;
//! * [`SolverRegistry`] — a name → factory map with alias resolution, so new
//!   algorithms plug in without touching any caller.
//!
//! The core crate registers its own solvers via [`core_registry`]; the
//! workspace-level `solver` crate extends that registry with the baseline
//! schedulers and is what the CLI, the online policies and the benches
//! consume.
//!
//! ```rust
//! use malleable_core::prelude::*;
//! use malleable_core::solver::core_registry;
//!
//! let instance = Instance::from_profiles(
//!     vec![
//!         SpeedupProfile::linear(6.0, 4).unwrap(),
//!         SpeedupProfile::sequential(1.0).unwrap(),
//!     ],
//!     4,
//! )
//! .unwrap();
//!
//! let registry = core_registry();
//! let solver = registry.get("mrt").unwrap();
//! let request = SolveRequest::new(&instance).with_mode(SearchMode::Exact);
//! let outcome = solver.solve(&request).unwrap();
//! assert!(outcome.schedule.validate(&instance).is_ok());
//! assert!(outcome.ratio() >= 1.0 - 1e-9);
//! ```

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use crate::allotment::Allotment;
use crate::bounds;
use crate::dual::{DualSearch, SearchMode};
use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::list::{schedule_rigid, ListOrder};
use crate::mrt::{BranchSet, MrtScheduler};
use crate::schedule::Schedule;
use crate::workspace::ProbeWorkspace;

/// A shared, thread-safe handle to a solver (what the registry hands out and
/// what the online policies hold).
pub type SolverHandle = Arc<dyn Solver>;

/// A typed value in a [`SolverConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// A boolean switch.
    Flag(bool),
    /// An integer knob.
    Int(i64),
    /// A floating-point knob.
    Float(f64),
    /// A free-form text knob (a sub-strategy name, a cluster spec, …).
    Text(String),
}

/// Per-solver configuration carried by a [`SolveRequest`]: a small ordered
/// map of typed key/value knobs that only the addressed solver interprets.
///
/// The shared request fields ([`SolveRequest::mode`], λ, budgets, …) cover
/// the knobs every dual-search solver understands; solver-*specific* knobs —
/// the two-phase method's rigid-packing strategy, the hetero solvers'
/// machine-class spec — used to live in constructor state, which made them
/// unreachable through the registry (factories take no arguments).  Putting
/// them on the request keeps solvers stateless values and makes every knob a
/// per-call parameter:
///
/// ```rust
/// use malleable_core::solver::SolverConfig;
///
/// let config = SolverConfig::new()
///     .with_text("rigid", "steinberg")
///     .with_flag("strict", true);
/// assert_eq!(config.text("rigid"), Some("steinberg"));
/// assert_eq!(config.flag("strict"), Some(true));
/// assert_eq!(config.text("absent"), None);
/// ```
///
/// Unknown keys are ignored by solvers (same contract as unknown request
/// knobs); a key set twice keeps the last value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SolverConfig {
    entries: Vec<(String, ConfigValue)>,
}

impl SolverConfig {
    /// An empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set `key` to `value` (builder style), replacing any earlier value.
    pub fn with(mut self, key: &str, value: ConfigValue) -> Self {
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, stored)) => *stored = value,
            None => self.entries.push((key.to_string(), value)),
        }
        self
    }

    /// Set a boolean switch (builder style).
    pub fn with_flag(self, key: &str, value: bool) -> Self {
        self.with(key, ConfigValue::Flag(value))
    }

    /// Set an integer knob (builder style).
    pub fn with_int(self, key: &str, value: i64) -> Self {
        self.with(key, ConfigValue::Int(value))
    }

    /// Set a floating-point knob (builder style).
    pub fn with_float(self, key: &str, value: f64) -> Self {
        self.with(key, ConfigValue::Float(value))
    }

    /// Set a text knob (builder style).
    pub fn with_text(self, key: &str, value: &str) -> Self {
        self.with(key, ConfigValue::Text(value.to_string()))
    }

    /// The raw value under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The boolean under `key` (None when absent or a different type).
    pub fn flag(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(ConfigValue::Flag(b)) => Some(*b),
            _ => None,
        }
    }

    /// The integer under `key` (None when absent or a different type).
    pub fn int(&self, key: &str) -> Option<i64> {
        match self.get(key) {
            Some(ConfigValue::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The float under `key`; an integer value is widened (None when absent
    /// or text/flag).
    pub fn float(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(ConfigValue::Float(x)) => Some(*x),
            Some(ConfigValue::Int(i)) => Some(*i as f64),
            _ => None,
        }
    }

    /// The text under `key` (None when absent or a different type).
    pub fn text(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(ConfigValue::Text(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Number of keys set.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no keys are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The keys, in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> + '_ {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

/// A typed solve request: the instance plus every tuning knob a solver may
/// honour.  Build one with [`SolveRequest::new`] and the `with_*` methods;
/// knobs a solver does not understand are ignored (gang scheduling has no
/// search mode), knobs with invalid values are rejected by the solver at
/// [`Solver::solve`] time.
///
/// ```rust
/// use malleable_core::prelude::*;
///
/// # let instance = Instance::from_profiles(
/// #     vec![SpeedupProfile::linear(4.0, 4).unwrap()], 4).unwrap();
/// let request = SolveRequest::new(&instance)
///     .with_mode(SearchMode::Exact)
///     .with_branches(BranchSet::lists_only())
///     .with_lambda(0.9)
///     .with_probe_budget(40);
/// let outcome = MrtSolver.solve(&request).unwrap();
/// assert!(outcome.schedule.validate(&instance).is_ok());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SolveRequest<'a> {
    /// The instance to schedule.
    pub instance: &'a Instance,
    /// How a dual-search solver picks its probe points (ignored by one-shot
    /// constructions).
    pub mode: SearchMode,
    /// Which oracle branches a combined dual approximation evaluates.
    pub branches: BranchSet,
    /// The second-shelf parameter λ; `None` selects the solver's default
    /// (`√3 − 1` for the MRT scheduler).
    pub lambda: Option<f64>,
    /// A guess believed feasible, e.g. scaled over from the previous epoch of
    /// an online re-planner; honoured only by solvers whose
    /// [`SolverCapabilities::supports_warm_start`] is set.
    pub warm_start_hint: Option<f64>,
    /// Hard cap on the oracle probes of one solve, honoured in both search
    /// modes (the probes establishing the first feasible guess are exempt —
    /// see [`DualSearch::max_probes`]); `None` is unbounded.
    pub probe_budget: Option<usize>,
    /// Wall-clock budget of one solve, enforced inside the dual search at
    /// the same points as the probe budget (see [`DualSearch::time_budget`]);
    /// whether it expired is reported in
    /// [`SolveOutcome::time_budget_exhausted`].  `None` is unbounded; the
    /// knob is ignored by one-shot constructions (they do no search).
    pub time_budget: Option<Duration>,
    /// Evaluate independent oracle branches on scoped threads.
    pub parallel_branches: bool,
    /// Solver-specific knobs (see [`SolverConfig`]); solvers ignore keys they
    /// do not understand, and `None` means every solver default applies.
    /// Borrowed so the request stays `Copy`.
    pub config: Option<&'a SolverConfig>,
}

impl<'a> SolveRequest<'a> {
    /// A request with every knob at its default.
    pub fn new(instance: &'a Instance) -> Self {
        SolveRequest {
            instance,
            mode: SearchMode::default(),
            branches: BranchSet::default(),
            lambda: None,
            warm_start_hint: None,
            probe_budget: None,
            time_budget: None,
            parallel_branches: false,
            config: None,
        }
    }

    /// Select the dual-search mode (builder style).
    pub fn with_mode(mut self, mode: SearchMode) -> Self {
        self.mode = mode;
        self
    }

    /// Restrict the oracle branches (builder style).
    pub fn with_branches(mut self, branches: BranchSet) -> Self {
        self.branches = branches;
        self
    }

    /// Override the second-shelf parameter λ (builder style).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Seed the search interval with a guess believed feasible (builder
    /// style).  A lowball hint only costs the doubling probes needed to climb
    /// back; correctness is unaffected.
    pub fn with_warm_start_hint(mut self, hint: f64) -> Self {
        self.warm_start_hint = Some(hint);
        self
    }

    /// Cap the dichotomic search's oracle probes (builder style).
    pub fn with_probe_budget(mut self, probes: usize) -> Self {
        self.probe_budget = Some(probes);
        self
    }

    /// Cap the dichotomic search's wall time (builder style).
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Evaluate independent oracle branches on scoped threads (builder style).
    pub fn with_parallel_branches(mut self, parallel: bool) -> Self {
        self.parallel_branches = parallel;
        self
    }

    /// Attach solver-specific knobs (builder style).  The config outlives the
    /// request (it is borrowed, keeping the request `Copy`).
    pub fn with_config(mut self, config: &'a SolverConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// The text knob under `key`, when a config is attached and carries one.
    pub fn config_text(&self, key: &str) -> Option<&'a str> {
        self.config.and_then(|c| c.text(key))
    }
}

/// What a solver can do, for callers that adapt their behaviour to the
/// algorithm behind the trait object (the online re-planner only threads its
/// warm state into solvers that will use it; reports only print guarantees
/// that exist).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverCapabilities {
    /// The lower bound in the outcome is search-certified (refined by
    /// infeasibility certificates), not just the static bound.
    pub certified_lower_bound: bool,
    /// Solution quality improves with a larger probe budget
    /// ([`SolveRequest::probe_budget`] is honoured).
    pub anytime: bool,
    /// [`SolveRequest::warm_start_hint`] and the workspace of
    /// [`Solver::solve_with_workspace`] speed up repeated solves.
    pub supports_warm_start: bool,
    /// The worst-case approximation guarantee ρ, when one is proven
    /// (`√3` for the MRT scheduler, 2 for the two-phase method with
    /// Steinberg's packer); `None` for heuristics without a bound.
    pub guarantee: Option<f64>,
}

impl SolverCapabilities {
    /// Capabilities of a one-shot heuristic: no certificate, no warm start,
    /// no proven guarantee.
    pub fn heuristic() -> Self {
        SolverCapabilities {
            certified_lower_bound: false,
            anytime: false,
            supports_warm_start: false,
            guarantee: None,
        }
    }
}

/// The uniform result of a solve: the schedule plus the quality and cost
/// diagnostics every consumer layer needs (the CLI report, the online
/// competitive analysis, the benchmark tables).
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// Name of the solver that produced this outcome.
    pub solver: &'static str,
    /// The constructed schedule.
    pub schedule: Schedule,
    /// A valid lower bound on the optimum makespan: the search-certified
    /// bound when [`SolveOutcome::certified`] is set, the static bound of
    /// [`bounds::lower_bound`] otherwise.
    pub lower_bound: f64,
    /// Whether [`SolveOutcome::lower_bound`] was refined by infeasibility
    /// certificates of a dual search.
    pub certified: bool,
    /// The smallest guess the dual search accepted (used to seed the next
    /// solve of an online re-planner); `None` for one-shot constructions.
    pub feasible_omega: Option<f64>,
    /// Number of oracle probes performed (0 for one-shot constructions).
    pub probes: usize,
    /// Wall time of the solve.
    pub wall_time: Duration,
    /// Whether [`SolveRequest::time_budget`] expired and truncated the dual
    /// search (always `false` for one-shot constructions and unbudgeted
    /// solves; a truncated solve still returns a valid schedule and a valid
    /// certified bound, just less refined).
    pub time_budget_exhausted: bool,
}

impl SolveOutcome {
    /// Makespan of the schedule.
    pub fn makespan(&self) -> f64 {
        self.schedule.makespan()
    }

    /// The a-posteriori approximation ratio `makespan / lower_bound`.
    pub fn ratio(&self) -> f64 {
        if self.lower_bound <= 0.0 {
            return 1.0;
        }
        self.makespan() / self.lower_bound
    }
}

/// A scheduling algorithm behind the unified solve pipeline.
///
/// Implementations are stateless values (per-solve state lives in the request
/// and the workspace), so one instance can serve concurrent solves.
pub trait Solver: Send + Sync {
    /// Stable canonical name (registry key, report label).
    fn name(&self) -> &'static str;

    /// What this solver can do — see [`SolverCapabilities`].
    fn capabilities(&self) -> SolverCapabilities;

    /// Solve the request end to end.
    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveOutcome>;

    /// Fast path: solve while reusing the buffers of `workspace` across
    /// probes and across repeated solves (the online epoch re-planner keeps
    /// one workspace alive for the whole run).  The default implementation
    /// ignores the workspace and delegates to [`Solver::solve`]; solvers with
    /// allocation-heavy probes override it.
    fn solve_with_workspace(
        &self,
        request: &SolveRequest<'_>,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SolveOutcome> {
        let _ = workspace;
        self.solve(request)
    }
}

/// The paper's combined √3 dual approximation behind the [`Solver`] trait:
/// [`MrtScheduler`] oracle + [`DualSearch`] driver, honouring every request
/// knob (search mode, branch set, λ, warm-start hint, probe budget, parallel
/// branches).
#[derive(Debug, Clone, Copy, Default)]
pub struct MrtSolver;

impl Solver for MrtSolver {
    fn name(&self) -> &'static str {
        "mrt"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities {
            certified_lower_bound: true,
            anytime: true,
            supports_warm_start: true,
            guarantee: Some(crate::SQRT3),
        }
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        self.solve_with_workspace(request, &mut ProbeWorkspace::new())
    }

    fn solve_with_workspace(
        &self,
        request: &SolveRequest<'_>,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SolveOutcome> {
        let mut scheduler = match request.lambda {
            Some(lambda) => MrtScheduler::with_lambda(lambda)?,
            None => MrtScheduler::default(),
        };
        if request.branches.is_empty() {
            return Err(Error::InvalidParameter {
                name: "branches",
                value: 0.0,
            });
        }
        scheduler.branches = request.branches;
        scheduler.parallel_branches = request.parallel_branches;
        let search = DualSearch {
            max_probes: request.probe_budget,
            time_budget: request.time_budget,
            ..Default::default()
        };
        let result = search.solve_guided(
            request.instance,
            &scheduler,
            request.mode,
            request.warm_start_hint,
            workspace,
        )?;
        Ok(SolveOutcome {
            solver: self.name(),
            schedule: result.schedule,
            lower_bound: result.certified_lower_bound,
            certified: true,
            feasible_omega: Some(result.feasible_omega),
            probes: result.probes,
            // The search measures its own span on the shared monotonic clock
            // (the same timer that enforces the time budget); re-timing it
            // here would double up clock sources.
            wall_time: result.wall_time,
            time_budget_exhausted: result.time_budget_exhausted,
        })
    }
}

/// Canonical allotment at the guaranteed-feasible upper bound + contiguous
/// list scheduling — the cheapest sensible construction, used as the `list`
/// solver of the online policies.
#[derive(Debug, Clone, Copy, Default)]
pub struct CanonicalListSolver;

impl Solver for CanonicalListSolver {
    fn name(&self) -> &'static str {
        "list"
    }

    fn capabilities(&self) -> SolverCapabilities {
        SolverCapabilities::heuristic()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        let timer = telemetry::SpanTimer::start();
        let instance = request.instance;
        let omega = bounds::upper_bound(instance);
        let allotment = Allotment::canonical(instance, omega)?;
        let schedule = schedule_rigid(instance, &allotment, ListOrder::DecreasingAllottedTime);
        Ok(SolveOutcome {
            solver: self.name(),
            schedule,
            lower_bound: bounds::lower_bound(instance),
            certified: false,
            feasible_omega: None,
            probes: 0,
            wall_time: timer.elapsed(),
            time_budget_exhausted: false,
        })
    }
}

/// One registry entry: a canonical name, its accepted aliases and the factory
/// producing the solver.
struct RegistryEntry {
    name: &'static str,
    aliases: &'static [&'static str],
    factory: Box<dyn Fn() -> SolverHandle + Send + Sync>,
}

/// A name → factory map of solvers with alias resolution.
///
/// Registration order is preserved: [`SolverRegistry::names`] and
/// [`SolverRegistry::solvers`] iterate in the order solvers were registered,
/// so reports and `--help` listings are deterministic.
///
/// ```rust
/// use malleable_core::solver::{core_registry, SolverRegistry};
///
/// let registry = core_registry();
/// assert!(registry.get("mrt").is_some());
/// assert_eq!(registry.resolve("sqrt3"), Some("mrt")); // alias
/// assert!(registry.get("unknown").is_none());
/// ```
#[derive(Default)]
pub struct SolverRegistry {
    entries: Vec<RegistryEntry>,
}

impl fmt::Debug for SolverRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolverRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl SolverRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a solver factory under a canonical name plus aliases.
    ///
    /// # Panics
    ///
    /// Panics if the name or any alias collides with an existing entry —
    /// registries are assembled once at startup, so a collision is a
    /// programming error, not a runtime condition.
    pub fn register(
        &mut self,
        name: &'static str,
        aliases: &'static [&'static str],
        factory: impl Fn() -> SolverHandle + Send + Sync + 'static,
    ) {
        for token in std::iter::once(&name).chain(aliases) {
            assert!(
                self.resolve(token).is_none(),
                "solver name or alias `{token}` is already registered"
            );
        }
        self.entries.push(RegistryEntry {
            name,
            aliases,
            factory: Box::new(factory),
        });
    }

    /// Resolve a name or alias to the canonical solver name.
    pub fn resolve(&self, name: &str) -> Option<&'static str> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.contains(&name))
            .map(|e| e.name)
    }

    /// Instantiate the solver registered under `name` (canonical or alias).
    pub fn get(&self, name: &str) -> Option<SolverHandle> {
        self.entries
            .iter()
            .find(|e| e.name == name || e.aliases.contains(&name))
            .map(|e| (e.factory)())
    }

    /// Canonical names, in registration order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.entries.iter().map(|e| e.name)
    }

    /// Aliases of a canonical name (empty for unknown names).
    pub fn aliases(&self, name: &str) -> &'static [&'static str] {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map_or(&[], |e| e.aliases)
    }

    /// Instantiate every registered solver, in registration order.
    pub fn solvers(&self) -> impl Iterator<Item = SolverHandle> + '_ {
        self.entries.iter().map(|e| (e.factory)())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The registry of the solvers this crate implements itself: the paper's
/// combined `mrt` scheduler and the `list` construction.  The workspace-level
/// `solver` crate starts from this and adds the baseline schedulers.
pub fn core_registry() -> SolverRegistry {
    let mut registry = SolverRegistry::new();
    registry.register("mrt", &["mrt-sqrt3", "sqrt3"], || Arc::new(MrtSolver));
    registry.register("list", &["canonical-list"], || {
        Arc::new(CanonicalListSolver)
    });
    registry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::SpeedupProfile;

    fn instance() -> Instance {
        Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![4.0, 2.2, 1.6, 1.4]).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.8]).unwrap(),
                SpeedupProfile::sequential(0.7).unwrap(),
                SpeedupProfile::linear(2.4, 4).unwrap(),
            ],
            4,
        )
        .unwrap()
    }

    #[test]
    fn request_builder_sets_every_knob() {
        let inst = instance();
        let config = SolverConfig::new().with_text("rigid", "ffdh");
        let req = SolveRequest::new(&inst)
            .with_mode(SearchMode::Exact)
            .with_branches(BranchSet::lists_only())
            .with_lambda(0.9)
            .with_warm_start_hint(3.0)
            .with_probe_budget(7)
            .with_time_budget(Duration::from_millis(250))
            .with_parallel_branches(true)
            .with_config(&config);
        assert_eq!(req.mode, SearchMode::Exact);
        assert_eq!(req.branches, BranchSet::lists_only());
        assert_eq!(req.lambda, Some(0.9));
        assert_eq!(req.warm_start_hint, Some(3.0));
        assert_eq!(req.probe_budget, Some(7));
        assert_eq!(req.time_budget, Some(Duration::from_millis(250)));
        assert!(req.parallel_branches);
        assert_eq!(req.config_text("rigid"), Some("ffdh"));
        assert_eq!(req.config_text("absent"), None);
        // The request stays `Copy` with a config attached.
        let copied = req;
        assert_eq!(copied.config_text("rigid"), req.config_text("rigid"));
    }

    #[test]
    fn solver_config_is_a_typed_last_write_wins_map() {
        let config = SolverConfig::new()
            .with_flag("strict", true)
            .with_int("pool", 3)
            .with_float("scale", 1.5)
            .with_text("rigid", "steinberg")
            .with_text("rigid", "ffdh"); // last write wins
        assert_eq!(config.len(), 4);
        assert!(!config.is_empty());
        assert_eq!(config.flag("strict"), Some(true));
        assert_eq!(config.int("pool"), Some(3));
        assert_eq!(config.float("scale"), Some(1.5));
        assert_eq!(config.float("pool"), Some(3.0), "ints widen to float");
        assert_eq!(config.text("rigid"), Some("ffdh"));
        // Type mismatches and absent keys read as None, never panic.
        assert_eq!(config.flag("pool"), None);
        assert_eq!(config.int("scale"), None);
        assert_eq!(config.text("strict"), None);
        assert_eq!(config.get("absent"), None);
        assert_eq!(
            config.keys().collect::<Vec<_>>(),
            vec!["strict", "pool", "scale", "rigid"]
        );
        assert!(SolverConfig::default().is_empty());
    }

    #[test]
    fn time_budget_is_enforced_and_reported() {
        let inst = instance();
        // A zero budget truncates right after the climb; the outcome still
        // carries a valid schedule and certified bound, and reports the
        // truncation.
        let truncated = MrtSolver
            .solve(&SolveRequest::new(&inst).with_time_budget(Duration::ZERO))
            .unwrap();
        assert!(truncated.time_budget_exhausted);
        assert!(truncated.schedule.validate(&inst).is_ok());
        assert!(truncated.makespan() >= truncated.lower_bound - 1e-9);
        // An unbudgeted solve probes more and reports no truncation.
        let full = MrtSolver.solve(&SolveRequest::new(&inst)).unwrap();
        assert!(!full.time_budget_exhausted);
        assert!(full.probes > truncated.probes);
        // One-shot solvers ignore the knob entirely.
        let one_shot = CanonicalListSolver
            .solve(&SolveRequest::new(&inst).with_time_budget(Duration::ZERO))
            .unwrap();
        assert!(!one_shot.time_budget_exhausted);
    }

    #[test]
    fn mrt_solver_matches_the_legacy_entry_point() {
        let inst = instance();
        let outcome = MrtSolver.solve(&SolveRequest::new(&inst)).unwrap();
        let legacy = MrtScheduler::default().schedule(&inst).unwrap();
        assert_eq!(outcome.schedule, legacy.schedule);
        assert!((outcome.lower_bound - legacy.certified_lower_bound).abs() < 1e-12);
        assert_eq!(outcome.probes, legacy.probes);
        assert!(outcome.certified);
        assert!(outcome.ratio() >= 1.0 - 1e-9);
    }

    #[test]
    fn mrt_solver_rejects_invalid_requests() {
        let inst = instance();
        let bad_lambda = SolveRequest::new(&inst).with_lambda(0.1);
        assert!(MrtSolver.solve(&bad_lambda).is_err());
        let no_branches = SolveRequest::new(&inst).with_branches(BranchSet {
            two_shelf: false,
            canonical_list: false,
            malleable_list: false,
            level_packing: false,
        });
        assert!(MrtSolver.solve(&no_branches).is_err());
    }

    #[test]
    fn probe_budget_caps_probes_in_both_search_modes() {
        let inst = instance();
        for mode in [SearchMode::Bisect, SearchMode::Exact] {
            let outcome = MrtSolver
                .solve(
                    &SolveRequest::new(&inst)
                        .with_mode(mode)
                        .with_probe_budget(2),
                )
                .unwrap();
            // Cap + the single climb probe that establishes feasibility.
            assert!(
                outcome.probes <= 3,
                "{mode:?}: {} probes exceed the budget",
                outcome.probes
            );
            assert!(outcome.schedule.validate(&inst).is_ok());
            // A truncated search still returns a valid certified bound.
            assert!(outcome.makespan() >= outcome.lower_bound - 1e-9);
        }
        // Without a budget the default search probes more.
        let unbounded = MrtSolver.solve(&SolveRequest::new(&inst)).unwrap();
        assert!(unbounded.probes > 3);
    }

    #[test]
    fn list_solver_is_a_one_shot_heuristic() {
        let inst = instance();
        let outcome = CanonicalListSolver
            .solve(&SolveRequest::new(&inst))
            .unwrap();
        assert!(outcome.schedule.validate(&inst).is_ok());
        assert_eq!(outcome.probes, 0);
        assert!(!outcome.certified);
        assert!(outcome.feasible_omega.is_none());
        assert!(!CanonicalListSolver.capabilities().supports_warm_start);
    }

    #[test]
    fn registry_resolves_names_and_aliases() {
        let registry = core_registry();
        assert_eq!(registry.len(), 2);
        assert_eq!(registry.names().collect::<Vec<_>>(), vec!["mrt", "list"]);
        for alias in ["mrt", "mrt-sqrt3", "sqrt3"] {
            assert_eq!(registry.resolve(alias), Some("mrt"), "{alias}");
            assert_eq!(registry.get(alias).unwrap().name(), "mrt");
        }
        assert_eq!(registry.resolve("canonical-list"), Some("list"));
        assert!(registry.get("nope").is_none());
        assert_eq!(registry.aliases("mrt"), &["mrt-sqrt3", "sqrt3"]);
        assert!(registry.aliases("nope").is_empty());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_duplicate_names() {
        let mut registry = core_registry();
        registry.register("sqrt3", &[], || Arc::new(MrtSolver));
    }

    #[test]
    fn workspace_fast_path_matches_the_plain_path() {
        let inst = instance();
        let req = SolveRequest::new(&inst).with_mode(SearchMode::Exact);
        let plain = MrtSolver.solve(&req).unwrap();
        let mut ws = ProbeWorkspace::new();
        let warm = MrtSolver.solve_with_workspace(&req, &mut ws).unwrap();
        assert_eq!(plain.schedule, warm.schedule);
        assert!(ws.probes() > 0, "probes must be served by the workspace");
    }
}
