//! Malleable tasks and monotone speed-up profiles.
//!
//! A malleable task is "a computational unit which may be executed on any
//! arbitrary number of processors, its execution time depending on the amount
//! of resources allotted to it" (§1 of the paper).  The paper's *monotonic*
//! assumption (§2.1) requires that allocating more processors never increases
//! the execution time and never decreases the work (the time × processors
//! product) — this is Brent's lemma ruling out super-linear speed-ups.
//!
//! [`SpeedupProfile`] stores the discrete execution-time function `t(p)` for
//! `p = 1..=p_max` and enforces both monotonicity conditions at construction
//! time, so every downstream algorithm can rely on them.

use crate::error::{Error, Result};

/// Identifier of a task inside an [`crate::Instance`]: simply its index.
pub type TaskId = usize;

/// A validated, monotone execution-time function `p ↦ t(p)`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpeedupProfile {
    /// `times[p-1]` is the execution time on `p` processors.
    times: Vec<f64>,
}

impl SpeedupProfile {
    /// Build a profile from the execution times on `1..=times.len()`
    /// processors, validating positivity and both monotonicity conditions.
    pub fn new(times: Vec<f64>) -> Result<Self> {
        if times.is_empty() {
            return Err(Error::EmptyProfile);
        }
        for (i, &t) in times.iter().enumerate() {
            if !(t.is_finite() && t > 0.0) {
                return Err(Error::InvalidTime {
                    processors: i + 1,
                    time: t,
                });
            }
        }
        for p in 2..=times.len() {
            let prev = times[p - 2];
            let cur = times[p - 1];
            if cur > prev + 1e-12 {
                return Err(Error::NonMonotonicTime { processors: p });
            }
            let prev_work = (p as f64 - 1.0) * prev;
            let cur_work = p as f64 * cur;
            if cur_work < prev_work - 1e-9 {
                return Err(Error::NonMonotonicWork { processors: p });
            }
        }
        Ok(SpeedupProfile { times })
    }

    /// Build a profile by evaluating `f(p)` for `p = 1..=max_processors`.
    ///
    /// The raw values are *repaired* into a monotone profile rather than
    /// rejected: times are clamped to be non-increasing and works to be
    /// non-decreasing, which is the standard way of feeding measured (noisy)
    /// timings to monotone-malleable schedulers.
    pub fn from_fn<F: FnMut(usize) -> f64>(max_processors: usize, mut f: F) -> Result<Self> {
        if max_processors == 0 {
            return Err(Error::EmptyProfile);
        }
        let mut times = Vec::with_capacity(max_processors);
        for p in 1..=max_processors {
            let raw = f(p);
            if !(raw.is_finite() && raw > 0.0) {
                return Err(Error::InvalidTime {
                    processors: p,
                    time: raw,
                });
            }
            times.push(raw);
        }
        Ok(Self::repair(times))
    }

    /// Repair an arbitrary positive time vector into a monotone profile:
    /// enforce non-increasing times, then non-decreasing work, in that order.
    pub fn repair(mut times: Vec<f64>) -> Self {
        assert!(!times.is_empty(), "cannot repair an empty profile");
        // Non-increasing execution times.
        for p in 1..times.len() {
            if times[p] > times[p - 1] {
                times[p] = times[p - 1];
            }
        }
        // Non-decreasing work: t(p) >= (p-1)/p * t(p-1).
        for p in 1..times.len() {
            let floor = (p as f64) / (p as f64 + 1.0) * times[p - 1];
            if times[p] < floor {
                times[p] = floor;
            }
        }
        SpeedupProfile { times }
    }

    /// A purely sequential task: the same time on any number of processors is
    /// not monotone in work, so a sequential task is modelled as a profile
    /// defined only for one processor.
    pub fn sequential(time: f64) -> Result<Self> {
        Self::new(vec![time])
    }

    /// A perfectly parallel (linear speed-up) task of the given total work,
    /// defined up to `max_processors`.
    pub fn linear(work: f64, max_processors: usize) -> Result<Self> {
        if max_processors == 0 {
            return Err(Error::EmptyProfile);
        }
        Self::new(
            (1..=max_processors)
                .map(|p| work / p as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Largest processor count the profile is defined for.
    pub fn max_processors(&self) -> usize {
        self.times.len()
    }

    /// Execution time on `p` processors.
    ///
    /// For `p` beyond the profile's range the time of the largest defined
    /// count is returned (allotting extra processors brings no benefit).
    pub fn time(&self, p: usize) -> f64 {
        assert!(p >= 1, "processor count must be at least 1");
        let idx = p.min(self.times.len());
        self.times[idx - 1]
    }

    /// Work (processors × time) on `p` processors.
    ///
    /// Beyond the defined range the work keeps growing linearly with the idle
    /// extra processors, which is consistent with `time()` being flat there.
    pub fn work(&self, p: usize) -> f64 {
        p as f64 * self.time(p)
    }

    /// Sequential execution time `t(1)`.
    pub fn sequential_time(&self) -> f64 {
        self.times[0]
    }

    /// Minimal work over all processor counts.  Under the monotone assumption
    /// this is always the sequential work `t(1)`.
    pub fn min_work(&self) -> f64 {
        self.times[0]
    }

    /// The *canonical number of processors* for a deadline `d`: the minimal
    /// `p` with `t(p) ≤ d`, or `None` when even the full profile is too slow.
    ///
    /// This is the quantity written `γ(j, d)` / `q_j` in the paper; the
    /// monotonicity of `t` lets us binary-search for it.
    pub fn canonical_processors(&self, deadline: f64) -> Option<usize> {
        if self.times[self.times.len() - 1] > deadline + 1e-12 {
            return None;
        }
        // Binary search for the first index with time <= deadline.
        let mut lo = 0usize; // invariant: times[lo] might be <= deadline
        let mut hi = self.times.len() - 1; // invariant: times[hi] <= deadline
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.times[mid] <= deadline + 1e-12 {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        Some(lo + 1)
    }

    /// The minimum achievable execution time (on the largest defined count).
    pub fn min_time(&self) -> f64 {
        self.times[self.times.len() - 1]
    }

    /// Raw access to the underlying time table.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Return a copy of the profile with every execution time multiplied by
    /// `factor` (finite and positive).
    ///
    /// Scaling by a constant preserves both monotonicity conditions, which is
    /// what makes the *residual-task* model of mid-execution re-allotment
    /// sound: a task that has `factor` of its work left behaves exactly like
    /// a fresh task whose profile is the original scaled by `factor`.
    pub fn scaled(&self, factor: f64) -> Result<Self> {
        if !(factor.is_finite() && factor > 0.0) {
            return Err(Error::InvalidParameter {
                name: "scale",
                value: factor,
            });
        }
        Self::new(self.times.iter().map(|t| t * factor).collect())
    }

    /// Return a copy of the profile truncated to at most `max_processors`
    /// entries (used when an instance has fewer processors than the profile).
    pub fn truncated(&self, max_processors: usize) -> Self {
        let len = self.times.len().min(max_processors.max(1));
        SpeedupProfile {
            times: self.times[..len].to_vec(),
        }
    }
}

/// A malleable task: an identifier-friendly name plus its speed-up profile.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MalleableTask {
    /// Optional human-readable label (used by examples and traces).
    pub name: Option<String>,
    /// The task's validated execution-time function.
    pub profile: SpeedupProfile,
}

impl MalleableTask {
    /// Create an anonymous task from a profile.
    pub fn new(profile: SpeedupProfile) -> Self {
        MalleableTask {
            name: None,
            profile,
        }
    }

    /// Create a named task from a profile.
    pub fn named(name: impl Into<String>, profile: SpeedupProfile) -> Self {
        MalleableTask {
            name: Some(name.into()),
            profile,
        }
    }

    /// Execution time on `p` processors.
    pub fn time(&self, p: usize) -> f64 {
        self.profile.time(p)
    }

    /// Work on `p` processors.
    pub fn work(&self, p: usize) -> f64 {
        self.profile.work(p)
    }

    /// Canonical number of processors for a deadline.
    pub fn canonical_processors(&self, deadline: f64) -> Option<usize> {
        self.profile.canonical_processors(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn valid_profile_accepts_monotone_times() {
        let p = SpeedupProfile::new(vec![4.0, 2.5, 2.0, 1.8]).unwrap();
        assert_eq!(p.max_processors(), 4);
        assert_eq!(p.time(1), 4.0);
        assert_eq!(p.time(3), 2.0);
        assert!((p.work(4) - 7.2).abs() < 1e-12);
    }

    #[test]
    fn rejects_increasing_time() {
        let err = SpeedupProfile::new(vec![2.0, 2.5]).unwrap_err();
        assert_eq!(err, Error::NonMonotonicTime { processors: 2 });
    }

    #[test]
    fn rejects_superlinear_speedup() {
        // t(2) = 0.4 would make work 0.8 < 1.0 = work(1).
        let err = SpeedupProfile::new(vec![1.0, 0.4]).unwrap_err();
        assert_eq!(err, Error::NonMonotonicWork { processors: 2 });
    }

    #[test]
    fn rejects_empty_and_invalid_times() {
        assert_eq!(
            SpeedupProfile::new(vec![]).unwrap_err(),
            Error::EmptyProfile
        );
        assert!(matches!(
            SpeedupProfile::new(vec![1.0, 0.0]).unwrap_err(),
            Error::InvalidTime { processors: 2, .. }
        ));
        assert!(matches!(
            SpeedupProfile::new(vec![f64::NAN]).unwrap_err(),
            Error::InvalidTime { processors: 1, .. }
        ));
    }

    #[test]
    fn linear_profile_is_monotone_and_exact() {
        let p = SpeedupProfile::linear(12.0, 6).unwrap();
        assert_eq!(p.time(1), 12.0);
        assert_eq!(p.time(4), 3.0);
        assert!((p.work(6) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn time_beyond_profile_is_flat() {
        let p = SpeedupProfile::new(vec![3.0, 2.0]).unwrap();
        assert_eq!(p.time(10), 2.0);
        assert!((p.work(10) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn canonical_processors_basic() {
        let p = SpeedupProfile::new(vec![4.0, 2.5, 2.0, 1.8]).unwrap();
        assert_eq!(p.canonical_processors(4.0), Some(1));
        assert_eq!(p.canonical_processors(2.5), Some(2));
        assert_eq!(p.canonical_processors(2.4), Some(3));
        assert_eq!(p.canonical_processors(1.8), Some(4));
        assert_eq!(p.canonical_processors(1.0), None);
    }

    #[test]
    fn canonical_processors_sequential_task() {
        let p = SpeedupProfile::sequential(0.5).unwrap();
        assert_eq!(p.canonical_processors(0.5), Some(1));
        assert_eq!(p.canonical_processors(0.4), None);
    }

    #[test]
    fn repair_produces_monotone_profile() {
        let p = SpeedupProfile::repair(vec![4.0, 5.0, 1.0]);
        // Times repaired to non-increasing, then work floor applied.
        assert!(SpeedupProfile::new(p.times().to_vec()).is_ok());
        assert!(p.time(2) <= 4.0 + 1e-12);
        assert!(p.work(3) >= p.work(2) - 1e-9);
    }

    #[test]
    fn from_fn_repairs_amdahl_like_curve() {
        let p = SpeedupProfile::from_fn(8, |p| 1.0 / (0.2 + 0.8 / p as f64)).unwrap();
        // Amdahl speed-up is sub-linear, so this inverse is a *speed-up*, not
        // a time — from_fn should still repair it into a monotone profile.
        assert!(SpeedupProfile::new(p.times().to_vec()).is_ok());
    }

    #[test]
    fn scaled_profile_multiplies_every_time() {
        let p = SpeedupProfile::new(vec![4.0, 2.5, 2.0, 1.8]).unwrap();
        let half = p.scaled(0.5).unwrap();
        assert_eq!(half.time(1), 2.0);
        assert_eq!(half.time(3), 1.0);
        assert!(SpeedupProfile::new(half.times().to_vec()).is_ok());
        assert!(p.scaled(0.0).is_err());
        assert!(p.scaled(-1.0).is_err());
        assert!(p.scaled(f64::NAN).is_err());
    }

    #[test]
    fn truncated_profile_keeps_prefix() {
        let p = SpeedupProfile::new(vec![4.0, 2.5, 2.0, 1.8]).unwrap();
        let t = p.truncated(2);
        assert_eq!(t.max_processors(), 2);
        assert_eq!(t.time(2), 2.5);
    }

    #[test]
    fn named_task_keeps_name() {
        let task = MalleableTask::named("fft", SpeedupProfile::linear(4.0, 4).unwrap());
        assert_eq!(task.name.as_deref(), Some("fft"));
        assert_eq!(task.canonical_processors(1.0), Some(4));
    }

    /// Property 1 of the paper: if the canonical number of processors `q`
    /// exists then `t(q) > (q − 1)/q · deadline` — a direct consequence of the
    /// two monotonicity conditions, checked here on arbitrary valid profiles.
    #[test]
    fn property_one_holds_on_crafted_profiles() {
        let p = SpeedupProfile::new(vec![10.0, 5.5, 4.0, 3.2, 2.7]).unwrap();
        for deadline in [2.7, 3.0, 4.0, 6.0, 10.0] {
            if let Some(q) = p.canonical_processors(deadline) {
                if q > 1 {
                    assert!(
                        p.time(q) > (q as f64 - 1.0) / q as f64 * deadline - 1e-9,
                        "property 1 violated at deadline {deadline}: q={q}, t={}",
                        p.time(q)
                    );
                }
            }
        }
    }

    proptest! {
        /// Repair always yields a profile accepted by the validating constructor.
        #[test]
        fn repair_always_validates(times in prop::collection::vec(0.01f64..100.0, 1..32)) {
            let repaired = SpeedupProfile::repair(times);
            prop_assert!(SpeedupProfile::new(repaired.times().to_vec()).is_ok());
        }

        /// Canonical processor counts are monotone in the deadline: a looser
        /// deadline never needs more processors.
        #[test]
        fn canonical_monotone_in_deadline(
            times in prop::collection::vec(0.1f64..10.0, 1..16),
            d1 in 0.05f64..12.0,
            d2 in 0.05f64..12.0,
        ) {
            let p = SpeedupProfile::repair(times);
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            match (p.canonical_processors(lo), p.canonical_processors(hi)) {
                (Some(a), Some(b)) => prop_assert!(a >= b),
                (Some(_), None) => prop_assert!(false, "loose deadline infeasible but tight feasible"),
                _ => {}
            }
        }

        /// Property 1 (paper §2.1) holds for every repaired profile: when the
        /// canonical number q > 1 exists, t(q) > (q-1)/q · d.
        #[test]
        fn property_one_generic(
            times in prop::collection::vec(0.1f64..10.0, 1..16),
            d in 0.05f64..12.0,
        ) {
            let p = SpeedupProfile::repair(times);
            if let Some(q) = p.canonical_processors(d) {
                if q > 1 {
                    prop_assert!(p.time(q) > (q as f64 - 1.0) / q as f64 * d - 1e-6);
                }
                // And the canonical allotment indeed meets the deadline.
                prop_assert!(p.time(q) <= d + 1e-9);
                if q > 1 {
                    prop_assert!(p.time(q - 1) > d - 1e-9);
                }
            }
        }

        /// Scaling a valid profile by any positive factor yields a profile
        /// the validating constructor accepts (the residual-task soundness
        /// condition).
        #[test]
        fn scaling_preserves_validity(
            times in prop::collection::vec(0.01f64..100.0, 1..32),
            factor in 1e-6f64..1.0,
        ) {
            let p = SpeedupProfile::repair(times);
            let scaled = p.scaled(factor).expect("positive factor scales");
            prop_assert!(SpeedupProfile::new(scaled.times().to_vec()).is_ok());
            for q in 1..=p.max_processors() {
                prop_assert!((scaled.time(q) - factor * p.time(q)).abs() <= 1e-12);
            }
        }

        /// Work is non-decreasing and time non-increasing across the whole
        /// defined range of any repaired profile.
        #[test]
        fn monotonicity_invariants(times in prop::collection::vec(0.01f64..50.0, 1..24)) {
            let p = SpeedupProfile::repair(times);
            for q in 2..=p.max_processors() {
                prop_assert!(p.time(q) <= p.time(q - 1) + 1e-9);
                prop_assert!(p.work(q) >= p.work(q - 1) - 1e-6);
            }
        }
    }
}
