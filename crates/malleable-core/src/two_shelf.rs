//! The knapsack-based two-shelf construction of §4 of the paper.
//!
//! When the canonical λ-area is large, the paper abandons general list
//! scheduling and *imposes* the schedule structure: two consecutive shelves,
//! the first of length `ω` and the second of length `λ·ω`.  Every task is
//! assigned to one of the shelves; the only non-trivial decision is which of
//! the "large" tasks (canonical execution time above `λ·ω`) are compressed
//! onto more processors so that they fit in the short second shelf.  That
//! selection is exactly a knapsack problem (`K(λ)` in the paper):
//!
//! * **items** — tasks of `T₁` (canonical time `> λ·ω`);
//! * **weight** — `d_j`, the minimal processor count running the task within
//!   `λ·ω`;
//! * **profit** — `q_j`, the canonical processor count freed in the first
//!   shelf when the task moves to the second one;
//! * **capacity** — the processors of the second shelf left over after the
//!   medium tasks (`T₂`) and the First-Fit-packed small tasks (`T₃`) are
//!   placed there;
//! * **target** — the selected profit must reach `p₁ = Σ_{T₁} q_j − m`, so
//!   that the tasks remaining in the first shelf fit on `m` processors.
//!
//! The module implements the full §4 pipeline: canonical partition, the
//! "trivial solution" scan (§4.5), the primal knapsack, the dual
//! (minimum-weight covering) knapsack used when an approximate primal
//! resolution misses the target, and the final schedule assembly.  The
//! resulting schedule has makespan at most `(1 + λ)·ω`, which for the paper's
//! choice `λ = √3 − 1` is `√3·ω`.

use crate::canonical::CanonicalAllotment;
use crate::error::{Error, Result};
use crate::instance::Instance;
use crate::schedule::{ProcessorRange, Schedule, ScheduledTask};
use crate::task::TaskId;
use crate::workspace::ProbeWorkspace;
use knapsack::{Item, Strategy};
use packing::bin_packing::first_fit_into;

/// Parameters of the two-shelf construction.
#[derive(Debug, Clone, Copy)]
pub struct TwoShelfParams {
    /// The second-shelf length as a fraction of `ω`.  The paper's choice is
    /// `λ = √3 − 1 ≈ 0.732`, giving the overall `√3` guarantee; any value in
    /// `(1/2, 1]` yields a structurally valid schedule of length `(1+λ)·ω`.
    pub lambda: f64,
    /// How the knapsack is solved (exact DP, FPTAS, or automatic switch).
    pub strategy: Strategy,
}

impl Default for TwoShelfParams {
    fn default() -> Self {
        TwoShelfParams {
            lambda: 3f64.sqrt() - 1.0,
            strategy: Strategy::default(),
        }
    }
}

impl TwoShelfParams {
    /// Validate the λ parameter.
    pub fn validated(self) -> Result<Self> {
        if !(self.lambda > 0.5 && self.lambda <= 1.0 + 1e-12) {
            return Err(Error::InvalidParameter {
                name: "lambda",
                value: self.lambda,
            });
        }
        Ok(self)
    }
}

/// How the feasible λ-schedule was obtained (reported for branch statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TwoShelfKind {
    /// `p₁ ≤ 0`: the first shelf holds all of `T₁` without any compression.
    EmptyGamma,
    /// A single large task moved to the second shelf unlocked everything
    /// (the "trivial solutions" of §4.5).
    Trivial,
    /// The primal knapsack `K(λ)` reached the profit target.
    Knapsack,
    /// The dual covering knapsack `K'(λ)` produced a fitting selection.
    DualKnapsack,
}

/// The canonical partition of §4.1 together with its aggregate quantities.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Partition {
    /// Tasks with canonical execution time `> λ·ω` (the knapsack items).
    pub t1: Vec<TaskId>,
    /// Tasks with canonical execution time in `(ω/2, λ·ω]`.
    pub t2: Vec<TaskId>,
    /// Small sequential tasks (canonical time `≤ ω/2`).
    pub t3: Vec<TaskId>,
    /// `Σ_{T₁} q_j − m`: the number of canonical processors of `T₁` exceeding
    /// the machine (the knapsack profit target when positive).
    pub p1: i64,
    /// `Σ_{T₂} q_j`: second-shelf processors consumed by the medium tasks.
    pub m2: usize,
    /// Processors needed to First-Fit-pack `T₃` under the deadline `λ·ω`.
    pub m3: usize,
    /// `m − m2 − m3`: second-shelf processors left for compressed `T₁` tasks
    /// (negative when the structure is impossible for this `λ` and `ω`).
    pub shelf2_capacity: i64,
}

impl Partition {
    /// Compute the partition for a canonical allotment and a given λ.
    pub fn compute(instance: &Instance, canonical: &CanonicalAllotment, lambda: f64) -> Partition {
        let mut partition = Partition::default();
        partition.recompute_in(
            instance,
            canonical,
            lambda,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
        );
        partition
    }

    /// Refill the partition in place, reusing the task-set buffers and the
    /// caller-provided First Fit scratch (cleared first).
    fn recompute_in(
        &mut self,
        instance: &Instance,
        canonical: &CanonicalAllotment,
        lambda: f64,
        t3_times: &mut Vec<f64>,
        ff_assignment: &mut Vec<usize>,
        ff_residual: &mut Vec<f64>,
    ) {
        let omega = canonical.omega;
        let m = instance.processors() as i64;
        self.t1.clear();
        self.t2.clear();
        self.t3.clear();
        for (id, &time) in canonical.times.iter().enumerate() {
            let q = canonical.allotment.processors(id);
            if time > lambda * omega + 1e-12 {
                self.t1.push(id);
            } else if time > 0.5 * omega + 1e-12 || q > 1 {
                self.t2.push(id);
            } else {
                self.t3.push(id);
            }
        }
        let q1: i64 = self
            .t1
            .iter()
            .map(|&id| canonical.allotment.processors(id) as i64)
            .sum();
        self.m2 = self
            .t2
            .iter()
            .map(|&id| canonical.allotment.processors(id))
            .sum();
        t3_times.clear();
        t3_times.extend(self.t3.iter().map(|&id| canonical.times[id]));
        self.m3 = if t3_times.is_empty() {
            0
        } else {
            first_fit_into(t3_times, lambda * omega, ff_assignment, ff_residual)
        };
        self.p1 = q1 - m;
        self.shelf2_capacity = m - self.m2 as i64 - self.m3 as i64;
    }

    /// Total capacity of the owned buffers (allocation-tracking telemetry).
    pub(crate) fn buffer_capacity(&self) -> usize {
        self.t1.capacity() + self.t2.capacity() + self.t3.capacity()
    }
}

/// The *inefficiency factor* of §4.2: the ratio between the work of a set of
/// tasks under a given allotment and its canonical work.  It measures how much
/// area is wasted by compressing tasks below their canonical execution time
/// and is the quantity the existence proofs (Lemmas 2–4) control.
pub fn inefficiency_factor(
    instance: &Instance,
    canonical: &CanonicalAllotment,
    tasks: &[TaskId],
    counts: &[usize],
) -> f64 {
    assert_eq!(tasks.len(), counts.len());
    let canonical_work: f64 = tasks
        .iter()
        .map(|&id| canonical.allotment.work(instance, id))
        .sum();
    if canonical_work <= 0.0 {
        return 1.0;
    }
    let actual_work: f64 = tasks
        .iter()
        .zip(counts)
        .map(|(&id, &p)| instance.work(id, p))
        .sum();
    actual_work / canonical_work
}

/// A constructed two-shelf schedule plus provenance information.
#[derive(Debug, Clone)]
pub struct TwoShelfSchedule {
    /// The schedule itself (makespan ≤ `(1 + λ)·ω`).
    pub schedule: Schedule,
    /// Which §4 mechanism produced it.
    pub kind: TwoShelfKind,
    /// The tasks moved from `T₁` to the second shelf (the set `Γ`).
    pub gamma: Vec<TaskId>,
}

/// Attempt to build a λ-schedule for the guess `ω`.
///
/// * `Err(_)` — the canonical allotment does not exist for `ω` (a certificate
///   that `OPT > ω`).
/// * `Ok(None)` — the two-shelf structure could not be realised (this is *not*
///   an infeasibility certificate; the caller falls back to list scheduling).
/// * `Ok(Some(result))` — a valid schedule of makespan at most `(1 + λ)·ω`.
pub fn build(
    instance: &Instance,
    omega: f64,
    params: TwoShelfParams,
) -> Result<Option<TwoShelfSchedule>> {
    let params = params.validated()?;
    let canonical = CanonicalAllotment::compute(instance, omega)?;
    Ok(build_with_canonical(instance, &canonical, params))
}

/// Same as [`build`], reusing an already computed canonical allotment.
pub fn build_with_canonical(
    instance: &Instance,
    canonical: &CanonicalAllotment,
    params: TwoShelfParams,
) -> Option<TwoShelfSchedule> {
    build_with_canonical_in(instance, canonical, params, &mut ProbeWorkspace::new())
}

/// First Fit / shelf-assembly scratch borrowed from a [`ProbeWorkspace`].
struct ShelfScratch<'a> {
    t3_times: &'a mut Vec<f64>,
    ff_assignment: &'a mut Vec<usize>,
    ff_residual: &'a mut Vec<f64>,
    column_offsets: &'a mut Vec<f64>,
}

/// Same as [`build_with_canonical`], with every recurring buffer — the
/// partition, the `d_j` table, the knapsack items and DP tables, the First
/// Fit scratch — borrowed from `workspace` so that repeated builds (one per
/// oracle probe) stop allocating once the buffers reach steady-state size.
pub fn build_with_canonical_in(
    instance: &Instance,
    canonical: &CanonicalAllotment,
    params: TwoShelfParams,
    workspace: &mut ProbeWorkspace,
) -> Option<TwoShelfSchedule> {
    let lambda = params.lambda;
    let omega = canonical.omega;
    let m = instance.processors();
    let ProbeWorkspace {
        partition,
        d,
        items,
        item_tasks,
        t3_times,
        ff_assignment,
        ff_residual,
        column_offsets,
        knapsack: dp,
        ..
    } = workspace;
    let mut scratch = ShelfScratch {
        t3_times,
        ff_assignment,
        ff_residual,
        column_offsets,
    };
    partition.recompute_in(
        instance,
        canonical,
        lambda,
        scratch.t3_times,
        scratch.ff_assignment,
        scratch.ff_residual,
    );
    let partition = &*partition;

    // The second shelf must at least hold the medium and small tasks.
    if partition.shelf2_capacity < 0 {
        return try_trivial(instance, canonical, partition, lambda, &mut scratch).map(
            |(schedule, gamma)| TwoShelfSchedule {
                schedule,
                kind: TwoShelfKind::Trivial,
                gamma,
            },
        );
    }

    // Minimal processor count running each T1 task within λ·ω (shelf 2 width).
    d.clear();
    d.extend(partition.t1.iter().map(|&id| {
        instance
            .task(id)
            .canonical_processors(lambda * omega)
            .filter(|&p| p <= m)
    }));
    let d = &*d;

    // Case 1: no compression needed at all.
    if partition.p1 <= 0 {
        let gamma = Vec::new();
        let schedule = assemble(
            instance,
            canonical,
            partition,
            &gamma,
            d,
            lambda,
            &mut scratch,
        )?;
        return Some(TwoShelfSchedule {
            schedule,
            kind: TwoShelfKind::EmptyGamma,
            gamma,
        });
    }

    // Case 2: the trivial single-task solutions of §4.5.
    if let Some((schedule, gamma)) =
        try_trivial(instance, canonical, partition, lambda, &mut scratch)
    {
        return Some(TwoShelfSchedule {
            schedule,
            kind: TwoShelfKind::Trivial,
            gamma,
        });
    }

    // Case 3: the knapsack K(λ).
    let capacity = partition.shelf2_capacity as u64;
    item_tasks.clear();
    items.clear();
    for (slot, &id) in partition.t1.iter().enumerate() {
        if let Some(dj) = d[slot] {
            item_tasks.push((slot, id));
            items.push(Item {
                weight: dj as u64,
                profit: canonical.allotment.processors(id) as u64,
            });
        }
    }
    let target = partition.p1 as u64;

    let primal = knapsack::solve_in(items, capacity, params.strategy, dp);
    if primal.profit >= target {
        let gamma: Vec<TaskId> = primal.selected.iter().map(|&i| item_tasks[i].1).collect();
        let schedule = assemble(
            instance,
            canonical,
            partition,
            &gamma,
            d,
            lambda,
            &mut scratch,
        )?;
        return Some(TwoShelfSchedule {
            schedule,
            kind: TwoShelfKind::Knapsack,
            gamma,
        });
    }

    // Case 4: the dual covering knapsack K'(λ) (§4.4, Lemma 2): reach the
    // profit target with minimal total width and check it still fits.
    if let Some(dual) = knapsack::solve_dual_min_weight_in(items, target, dp) {
        if dual.weight <= capacity {
            let gamma: Vec<TaskId> = dual.selected.iter().map(|&i| item_tasks[i].1).collect();
            let schedule = assemble(
                instance,
                canonical,
                partition,
                &gamma,
                d,
                lambda,
                &mut scratch,
            )?;
            return Some(TwoShelfSchedule {
                schedule,
                kind: TwoShelfKind::DualKnapsack,
                gamma,
            });
        }
    }

    None
}

/// The trivial solutions of §4.5: a single task `τ ∈ T₁` whose canonical
/// processor count is so large that moving it alone to the second shelf lets
/// *every* other task sit in the first shelf at its canonical allotment.
fn try_trivial(
    instance: &Instance,
    canonical: &CanonicalAllotment,
    partition: &Partition,
    lambda: f64,
    scratch: &mut ShelfScratch<'_>,
) -> Option<(Schedule, Vec<TaskId>)> {
    let omega = canonical.omega;
    let m = instance.processors();
    if partition.p1 <= 0 {
        return None;
    }
    let threshold = partition.p1 + partition.m2 as i64 + partition.m3 as i64;
    for &tau in &partition.t1 {
        let q_tau = canonical.allotment.processors(tau) as i64;
        if q_tau < threshold {
            continue;
        }
        let d_tau = match instance
            .task(tau)
            .canonical_processors(lambda * omega)
            .filter(|&p| p <= m)
        {
            Some(d) => d,
            None => continue,
        };
        // Shelf 1: everything except τ, at canonical counts; small tasks are
        // First-Fit packed under the full shelf length ω.
        let mut schedule = Schedule::new(m);
        let mut cursor = 0usize;
        for (id, _) in instance.iter() {
            if id == tau || partition.t3.contains(&id) {
                continue;
            }
            let q = canonical.allotment.processors(id);
            if cursor + q > m {
                return None; // should not happen given the threshold test
            }
            schedule.push(ScheduledTask {
                task: id,
                start: 0.0,
                duration: canonical.times[id],
                processors: ProcessorRange::new(cursor, q),
            });
            cursor += q;
        }
        if !partition.t3.is_empty() {
            scratch.t3_times.clear();
            scratch
                .t3_times
                .extend(partition.t3.iter().map(|&id| canonical.times[id]));
            let bins = first_fit_into(
                scratch.t3_times,
                omega,
                scratch.ff_assignment,
                scratch.ff_residual,
            );
            if cursor + bins > m {
                return None;
            }
            scratch.column_offsets.clear();
            scratch.column_offsets.resize(bins, 0.0);
            for (pos, &id) in partition.t3.iter().enumerate() {
                let bin = scratch.ff_assignment[pos];
                schedule.push(ScheduledTask {
                    task: id,
                    start: scratch.column_offsets[bin],
                    duration: canonical.times[id],
                    processors: ProcessorRange::new(cursor + bin, 1),
                });
                scratch.column_offsets[bin] += canonical.times[id];
            }
        }
        // Shelf 2: τ alone, compressed to d_τ processors.
        schedule.push(ScheduledTask {
            task: tau,
            start: omega,
            duration: instance.time(tau, d_tau),
            processors: ProcessorRange::new(0, d_tau),
        });
        return Some((schedule, vec![tau]));
    }
    None
}

/// Assemble the λ-schedule once the set `Γ` has been decided.
fn assemble(
    instance: &Instance,
    canonical: &CanonicalAllotment,
    partition: &Partition,
    gamma: &[TaskId],
    d: &[Option<usize>],
    lambda: f64,
    scratch: &mut ShelfScratch<'_>,
) -> Option<Schedule> {
    let omega = canonical.omega;
    let m = instance.processors();
    let in_gamma = |id: TaskId| gamma.contains(&id);
    let mut schedule = Schedule::new(m);

    // --- First shelf: T1 \ Γ at canonical counts, side by side from 0.
    let mut cursor1 = 0usize;
    for &id in &partition.t1 {
        if in_gamma(id) {
            continue;
        }
        let q = canonical.allotment.processors(id);
        if cursor1 + q > m {
            return None;
        }
        schedule.push(ScheduledTask {
            task: id,
            start: 0.0,
            duration: canonical.times[id],
            processors: ProcessorRange::new(cursor1, q),
        });
        cursor1 += q;
    }

    // --- Second shelf: Γ compressed to d_j, T2 at canonical counts, T3 packed
    //     by First Fit into single-processor columns of height λ·ω.
    let mut cursor2 = 0usize;
    for &id in gamma {
        let slot = partition.t1.iter().position(|&t| t == id)?;
        let dj = d[slot]?;
        if cursor2 + dj > m {
            return None;
        }
        schedule.push(ScheduledTask {
            task: id,
            start: omega,
            duration: instance.time(id, dj),
            processors: ProcessorRange::new(cursor2, dj),
        });
        cursor2 += dj;
    }
    for &id in &partition.t2 {
        let q = canonical.allotment.processors(id);
        if cursor2 + q > m {
            return None;
        }
        schedule.push(ScheduledTask {
            task: id,
            start: omega,
            duration: canonical.times[id],
            processors: ProcessorRange::new(cursor2, q),
        });
        cursor2 += q;
    }
    if !partition.t3.is_empty() {
        scratch.t3_times.clear();
        scratch
            .t3_times
            .extend(partition.t3.iter().map(|&id| canonical.times[id]));
        let bins = first_fit_into(
            scratch.t3_times,
            lambda * omega,
            scratch.ff_assignment,
            scratch.ff_residual,
        );
        if cursor2 + bins > m {
            return None;
        }
        scratch.column_offsets.clear();
        scratch.column_offsets.resize(bins, 0.0);
        for (pos, &id) in partition.t3.iter().enumerate() {
            let bin = scratch.ff_assignment[pos];
            schedule.push(ScheduledTask {
                task: id,
                start: omega + scratch.column_offsets[bin],
                duration: canonical.times[id],
                processors: ProcessorRange::new(cursor2 + bin, 1),
            });
            scratch.column_offsets[bin] += canonical.times[id];
        }
    }

    Some(schedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use crate::task::SpeedupProfile;
    use proptest::prelude::*;

    const LAMBDA: f64 = 0.7320508075688772; // √3 − 1

    fn params() -> TwoShelfParams {
        TwoShelfParams::default()
    }

    /// A machine-filling instance that needs compression: m = 6, three large
    /// tasks whose canonical counts add up to more than m.
    fn compression_instance() -> Instance {
        let wide = SpeedupProfile::new(vec![2.7, 1.4, 0.95, 0.72, 0.6, 0.55]).unwrap();
        Instance::from_profiles(
            vec![
                wide.clone(),
                wide.clone(),
                wide,
                SpeedupProfile::sequential(0.45).unwrap(),
                SpeedupProfile::sequential(0.4).unwrap(),
            ],
            6,
        )
        .unwrap()
    }

    #[test]
    fn params_validation() {
        assert!(TwoShelfParams {
            lambda: 0.4,
            strategy: knapsack::Strategy::Exact
        }
        .validated()
        .is_err());
        assert!(TwoShelfParams {
            lambda: 1.2,
            strategy: knapsack::Strategy::Exact
        }
        .validated()
        .is_err());
        assert!(params().validated().is_ok());
    }

    #[test]
    fn partition_classifies_by_canonical_time() {
        let inst = compression_instance();
        let omega = 1.0;
        let canonical = CanonicalAllotment::compute(&inst, omega).unwrap();
        let partition = Partition::compute(&inst, &canonical, LAMBDA);
        // Each wide task: canonical q = 3 (t = 0.95 ≤ 1), time 0.95 > λ → T1.
        assert_eq!(partition.t1, vec![0, 1, 2]);
        // Sequential 0.45 and 0.4 are ≤ ω/2 → T3.
        assert_eq!(partition.t3, vec![3, 4]);
        assert!(partition.t2.is_empty());
        assert_eq!(partition.p1, 9 - 6);
        assert_eq!(partition.m2, 0);
        // Two small tasks fit one λ-column (0.45 + 0.4 > λ? 0.85 > 0.732 → two bins).
        assert_eq!(partition.m3, 2);
        assert_eq!(partition.shelf2_capacity, 4);
    }

    #[test]
    fn knapsack_branch_builds_valid_two_shelf_schedule() {
        let inst = compression_instance();
        let omega = 1.0;
        let result = build(&inst, omega, params()).unwrap();
        let two_shelf = result.expect("a λ-schedule must exist for this instance");
        assert!(two_shelf.schedule.validate(&inst).is_ok());
        assert!(
            two_shelf.schedule.makespan() <= (1.0 + LAMBDA) * omega + 1e-9,
            "makespan {} exceeds (1+λ)ω",
            two_shelf.schedule.makespan()
        );
        assert!(!two_shelf.gamma.is_empty());
        assert!(matches!(
            two_shelf.kind,
            TwoShelfKind::Knapsack | TwoShelfKind::DualKnapsack | TwoShelfKind::Trivial
        ));
    }

    #[test]
    fn empty_gamma_when_everything_fits_in_shelf_one() {
        // Big-enough machine: all canonical tasks fit side by side in shelf 1.
        let inst = Instance::from_profiles(
            vec![
                SpeedupProfile::new(vec![1.9, 0.97]).unwrap(),
                SpeedupProfile::new(vec![1.8, 0.93]).unwrap(),
                SpeedupProfile::sequential(0.3).unwrap(),
            ],
            8,
        )
        .unwrap();
        let result = build(&inst, 1.0, params()).unwrap().unwrap();
        assert_eq!(result.kind, TwoShelfKind::EmptyGamma);
        assert!(result.gamma.is_empty());
        assert!(result.schedule.validate(&inst).is_ok());
        assert!(result.schedule.makespan() <= (1.0 + LAMBDA) + 1e-9);
    }

    #[test]
    fn infeasible_omega_is_an_error() {
        let inst = compression_instance();
        assert!(build(&inst, 0.3, params()).is_err());
    }

    #[test]
    fn inefficiency_factor_is_one_for_canonical_counts() {
        let inst = compression_instance();
        let canonical = CanonicalAllotment::compute(&inst, 1.0).unwrap();
        let tasks: Vec<TaskId> = (0..inst.task_count()).collect();
        let counts: Vec<usize> = tasks
            .iter()
            .map(|&t| canonical.allotment.processors(t))
            .collect();
        let rho = inefficiency_factor(&inst, &canonical, &tasks, &counts);
        assert!((rho - 1.0).abs() < 1e-12);
        // Compressing the wide tasks to more processors can only raise it.
        let compressed: Vec<usize> = tasks
            .iter()
            .map(|&t| {
                inst.task(t)
                    .canonical_processors(LAMBDA)
                    .unwrap_or(1)
                    .min(inst.processors())
            })
            .collect();
        let rho_c = inefficiency_factor(&inst, &canonical, &tasks, &compressed);
        assert!(rho_c >= rho - 1e-12);
    }

    #[test]
    fn trivial_solution_is_found_when_one_giant_task_blocks() {
        // One giant task taking the whole machine canonically plus tiny tasks:
        // moving the giant task to shelf 2 (still on all processors, compressed
        // in time) is the trivial solution.
        let giant =
            SpeedupProfile::new(vec![5.0, 2.55, 1.72, 1.3, 1.05, 0.88, 0.76, 0.67]).unwrap();
        let inst = Instance::from_profiles(
            vec![
                giant,
                SpeedupProfile::sequential(0.35).unwrap(),
                SpeedupProfile::sequential(0.3).unwrap(),
                SpeedupProfile::sequential(0.25).unwrap(),
            ],
            8,
        )
        .unwrap();
        // At ω = 1.05 the giant task needs 6 processors canonically; with the
        // small tasks it does not trigger p1 > 0, so pick a tighter ω where it
        // needs all 8 and p1 stays ≤ 0 … instead craft ω so that q_giant = 8.
        let omega = 0.70;
        let result = build(&inst, omega, params()).unwrap();
        // Either a trivial/knapsack schedule exists or none; when it exists it
        // must be valid and within (1+λ)ω.
        if let Some(ts) = result {
            assert!(ts.schedule.validate(&inst).is_ok());
            assert!(ts.schedule.makespan() <= (1.0 + LAMBDA) * omega + 1e-9);
        }
    }

    proptest! {
        /// Whenever the construction succeeds, the schedule is valid and its
        /// makespan is at most (1+λ)·ω — the structural guarantee of §4.
        #[test]
        fn two_shelf_schedules_respect_structure(
            seq_works in prop::collection::vec(0.05f64..0.95, 1..25),
            par_works in prop::collection::vec(1.0f64..6.0, 0..8),
            m in 4usize..16,
        ) {
            let mut profiles: Vec<SpeedupProfile> = seq_works
                .iter()
                .map(|&w| SpeedupProfile::sequential(w).unwrap())
                .collect();
            profiles.extend(
                par_works
                    .iter()
                    .map(|&w| SpeedupProfile::linear(w, m).unwrap()),
            );
            let inst = Instance::from_profiles(profiles, m).unwrap();
            let lb = bounds::lower_bound(&inst);
            for factor in [1.0, 1.1, 1.3] {
                let omega = lb * factor;
                if let Ok(Some(ts)) = build(&inst, omega, params()) {
                    prop_assert!(ts.schedule.validate(&inst).is_ok());
                    prop_assert!(
                        ts.schedule.makespan() <= (1.0 + LAMBDA) * omega + 1e-6,
                        "makespan {} > (1+λ)ω = {}",
                        ts.schedule.makespan(),
                        (1.0 + LAMBDA) * omega
                    );
                }
            }
        }

        /// The paper's dichotomy, engineering version: at a generous ω (above
        /// any feasible upper bound), either the two-shelf construction
        /// succeeds, or the instance is list-friendly — its canonical λ-area
        /// is far below the knapsack regime (small tasks dominate), which is
        /// exactly when §3's list branch applies instead.
        #[test]
        fn dichotomy_at_generous_omega(
            works in prop::collection::vec(0.2f64..4.0, 1..20),
            m in 4usize..12,
        ) {
            let profiles: Vec<SpeedupProfile> = works
                .iter()
                .map(|&w| SpeedupProfile::linear(w, m).unwrap())
                .collect();
            let inst = Instance::from_profiles(profiles, m).unwrap();
            let omega = bounds::upper_bound(&inst).max(bounds::lower_bound(&inst) * 1.5);
            let canonical = CanonicalAllotment::compute(&inst, omega).unwrap();
            let two_shelf = build(&inst, omega, params()).unwrap();
            let list_friendly = canonical.satisfies_area_condition(m, 1.0);
            prop_assert!(
                two_shelf.is_some() || list_friendly,
                "neither branch applies at generous ω = {omega}"
            );
        }
    }
}
