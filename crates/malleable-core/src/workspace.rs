//! Reusable scratch space for dual-approximation probes.
//!
//! A dichotomic search probes the MRT oracle dozens of times per solve, and
//! the online engine repeats whole solves every epoch.  Before this module,
//! every probe rebuilt the canonical allotment, re-sorted the tasks for the
//! λ-area, and allocated fresh buffers in all four branches of the combined
//! scheduler.  A [`ProbeWorkspace`] owns every recurring buffer — the
//! canonical-allotment cache (with its incrementally maintained sort order),
//! the rectangle and bin-packing scratch of the packing branches, and the
//! knapsack DP tables — so that in steady state a probe performs no heap
//! allocation beyond the schedule it returns.
//!
//! The workspace also carries two counters used by the benchmark/CI gates:
//! the number of probes served and the number of *growth events* (a probe
//! that had to enlarge at least one buffer).  After a warm-up probe at the
//! largest guess, the growth counter must stay flat — that invariant is
//! asserted by `tests/exact_search.rs` instead of a wall-clock threshold.

use crate::canonical::CanonicalAllotment;
use crate::error::Result;
use crate::instance::Instance;
use crate::task::TaskId;
use crate::two_shelf::Partition;
use packing::rect::Rect;

/// Reusable buffers threaded through [`DualApproximation::probe_with_workspace`]
/// and the [`DualSearch`] drivers.
///
/// [`DualApproximation::probe_with_workspace`]: crate::dual::DualApproximation::probe_with_workspace
/// [`DualSearch`]: crate::dual::DualSearch
#[derive(Debug, Clone, Default)]
pub struct ProbeWorkspace {
    /// Canonical allotment of the previous probe, recomputed in place as the
    /// guess moves (the sorted-id permutation is repaired incrementally).
    pub(crate) canonical: Option<CanonicalAllotment>,
    /// Rectangle scratch for the FFDH level-packing branch.
    pub(crate) rects: Vec<Rect>,
    /// Two-shelf partition of §4.1, refilled in place on every probe.
    pub(crate) partition: Partition,
    /// Minimal second-shelf processor counts `d_j` of the `T₁` tasks.
    pub(crate) d: Vec<Option<usize>>,
    /// Knapsack items of `K(λ)`.
    pub(crate) items: Vec<knapsack::Item>,
    /// `(slot in T₁, task id)` of every knapsack item.
    pub(crate) item_tasks: Vec<(usize, TaskId)>,
    /// Canonical times of the `T₃` tasks, input to First Fit.
    pub(crate) t3_times: Vec<f64>,
    /// First Fit bin assignment scratch.
    pub(crate) ff_assignment: Vec<usize>,
    /// First Fit residual-capacity scratch.
    pub(crate) ff_residual: Vec<f64>,
    /// Per-column time offsets when stacking `T₃` tasks onto a shelf.
    pub(crate) column_offsets: Vec<f64>,
    /// DP tables of the primal and dual knapsack solvers.
    pub(crate) knapsack: knapsack::DpWorkspace,
    probes: usize,
    grow_events: usize,
}

impl ProbeWorkspace {
    /// An empty workspace; buffers are sized lazily by the first probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of probes served through this workspace.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Number of probes that had to grow at least one internal buffer.  In
    /// steady state (after a warm-up probe at the largest instance/guess) this
    /// stays flat: the allocation-free probe invariant.
    pub fn grow_events(&self) -> usize {
        self.grow_events
    }

    /// Reset the probe and growth counters (the buffers are kept).
    pub fn reset_counters(&mut self) {
        self.probes = 0;
        self.grow_events = 0;
    }

    /// Drop every cached buffer and the canonical-allotment cache, keeping
    /// the telemetry counters: the next probe behaves like a cold one (used
    /// by benchmark baselines that must not benefit from reuse).
    pub fn clear(&mut self) {
        let probes = self.probes;
        let grow_events = self.grow_events;
        *self = ProbeWorkspace::new();
        self.probes = probes;
        self.grow_events = grow_events;
    }

    /// Sum of the capacities of every managed buffer; an unchanged signature
    /// across a probe proves the probe did not grow any of them.
    pub(crate) fn capacity_signature(&self) -> usize {
        let canonical = self
            .canonical
            .as_ref()
            .map_or(0, CanonicalAllotment::buffer_capacity);
        canonical
            + self.rects.capacity()
            + self.partition.buffer_capacity()
            + self.d.capacity()
            + self.items.capacity()
            + self.item_tasks.capacity()
            + self.t3_times.capacity()
            + self.ff_assignment.capacity()
            + self.ff_residual.capacity()
            + self.column_offsets.capacity()
            + self.knapsack.capacity_signature()
    }

    /// Record one served probe, comparing the capacity signature against the
    /// value captured before the probe ran.
    pub(crate) fn note_probe(&mut self, signature_before: usize) {
        self.probes += 1;
        if self.capacity_signature() > signature_before {
            self.grow_events += 1;
        }
    }

    /// Take the cached canonical allotment, recomputed in place for `omega`
    /// (or computed fresh on first use).  The caller returns it with
    /// [`ProbeWorkspace::store_canonical`] once the probe is done; on `Err`
    /// (the guess is unreachable) the cache is kept for the next probe.
    pub(crate) fn take_canonical(
        &mut self,
        instance: &Instance,
        omega: f64,
    ) -> Result<CanonicalAllotment> {
        match self.canonical.take() {
            Some(mut cached) => match cached.recompute(instance, omega) {
                Ok(()) => Ok(cached),
                Err(e) => {
                    self.canonical = Some(cached);
                    Err(e)
                }
            },
            None => CanonicalAllotment::compute(instance, omega),
        }
    }

    /// Return the canonical allotment taken by [`ProbeWorkspace::take_canonical`].
    pub(crate) fn store_canonical(&mut self, canonical: CanonicalAllotment) {
        self.canonical = Some(canonical);
    }
}
