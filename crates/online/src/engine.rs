//! The event-driven online scheduling engine.
//!
//! The engine replays an [`ArrivalTrace`] against a policy: arrivals enter a
//! pending queue, the policy decides when the queue is planned and commits
//! placements into the [`MachineState`], and every commitment schedules a
//! completion event.  Epoch-driven policies additionally receive tick events
//! on their epoch grid (ticks are only scheduled while work is pending, so
//! the event loop always terminates).
//!
//! Commitments are backed by revocable reservations, which is what powers
//! the three dynamic behaviours of the engine:
//!
//! * **departures** — a task whose [`workload::Arrival::departs_at`] deadline
//!   fires before it started leaves the system; if it was already committed
//!   (but still queued) its reservation is revoked and the space freed.  A
//!   task completing *exactly* at its deadline counts as completed, never
//!   departed (completions order before departures at equal timestamps), and
//!   a task that executed any work is immune to its deadline.
//! * **preemptive re-allotment of queued commitments** — when the policy
//!   opts in ([`OnlinePolicy::preempt_queued`]), every epoch tick first
//!   revokes all queued commitments and hands their tasks back to the policy
//!   together with the new arrivals, so the whole backlog is re-solved as
//!   one instance.
//! * **mid-execution re-allotment of running tasks** — when the policy opts
//!   in ([`OnlinePolicy::preempt_running`]), an epoch tick with fresh work
//!   additionally *truncates* every running commitment at the clock: the
//!   executed segment stays on the books, the unexecuted tail is revoked,
//!   and the task re-enters the pending set as a **residual task** — its
//!   profile scaled by the remaining work fraction
//!   ([`workload::residual`]) — so the policy re-solves running and pending
//!   work jointly and may shrink, widen or move the tail.  Work executed at
//!   the old allotment is conserved by construction.
//!
//! The output is a single [`Schedule`] over the executed tasks on the global
//! timeline.  Without running re-allotment every task is one contiguous
//! placement, checkable by `simulator::validate` against the trace's offline
//! instance (via `validate_schedule_subset` when tasks departed).  With it,
//! a task may appear as several piecewise-constant allotment segments;
//! `simulator::validate_piecewise_subset` checks per-segment feasibility and
//! per-task work conservation, and [`validate_against_trace`] accepts both
//! shapes plus the release-date and departure conditions specific to the
//! online setting.
//!
//! # Fault tolerance
//!
//! [`run_with_faults`] replays the same trace under a deterministic
//! [`workload::FaultPlan`]:
//!
//! * **processor crashes** — a `ProcessorDown` event takes the processor
//!   offline in the reservation timeline.  Every commitment still using it
//!   is displaced: queued reservations are revoked whole, running ones are
//!   truncated at the clock so the executed head stays on the books as a
//!   *conserved* segment, and the task re-enters the pending set as a
//!   residual (work is conserved, exactly as in mid-execution
//!   re-allotment).  `ProcessorUp` brings the processor back for future
//!   placements.
//! * **task failures** — a fault plan may kill a specific `(task, attempt)`
//!   pair a fraction of the way through its segment.  Unlike a crash the
//!   segment's work is *lost*: the executed head moves to the run's wasted
//!   list, the task's remaining fraction reverts to what it was when the
//!   segment started, and the task retries after a capped exponential
//!   backoff ([`workload::RetryPolicy`]) until its attempts budget is
//!   exhausted and it is abandoned.  Per-attempt accounting keeps work
//!   conserved: every attempt's processor-time lands either in the executed
//!   schedule or in the wasted list.  A failed task whose departure deadline
//!   already passed (the deadline event had found it protected by the
//!   in-flight commitment) departs instead of retrying — with the attempt's
//!   work lost nothing is conserved, and a retry could only start late.
//! * **stale-event filtering** — each commit bumps the task's generation
//!   counter and failure events carry the generation they were scheduled
//!   against, so failures aimed at revoked or re-planned commitments are
//!   ignored.
//!
//! [`validate_fault_run`] extends [`validate_against_trace`] with the
//! fault-specific conditions (abandoned tasks may be unscheduled, executed
//! and wasted segments must not overlap each other or any outage), and the
//! goodput split ([`OnlineResult::wasted_integral`] vs
//! [`OnlineResult::busy_integral`] over [`OnlineResult::capacity_integral`])
//! quantifies graceful degradation.

use crate::event::{EventKind, EventQueue};
use crate::machine::MachineState;
use crate::policy::{Commitment, OnlinePolicy, PendingTask, Trigger};
use ::telemetry::{names, Recorder, SpanTimer, TelemetryEvent};
use malleable_core::prelude::*;
use workload::{ArrivalTrace, FaultPlan, Outage, RetryPolicy};

/// The outcome of one engine run.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// Name of the policy that produced the run.
    pub policy: String,
    /// The committed schedule on the global timeline (task `j` = arrival `j`;
    /// departed tasks are absent).
    pub schedule: Schedule,
    /// Completion time of the last task.
    pub makespan: f64,
    /// Mean flow time (completion − arrival) over the executed tasks.
    pub mean_flow_time: f64,
    /// Largest flow time over the executed tasks.
    pub max_flow_time: f64,
    /// Number of events processed.
    pub events: usize,
    /// Number of planning rounds (policy `plan` invocations).
    pub replans: usize,
    /// Number of tasks that departed before starting.
    pub departed: usize,
    /// Number of queued commitments revoked by preemptive re-planning.
    pub preempted: usize,
    /// Number of running commitments truncated for mid-execution
    /// re-allotment (each adds one executed segment to the schedule).
    pub reallotted: usize,
    /// Integral of busy processors over the horizon: the sum of
    /// `duration × allotment` over every executed segment.  Divides by
    /// [`OnlineResult::capacity_integral`] to give
    /// [`OnlineResult::time_weighted_utilization`].
    pub busy_integral: f64,
    /// Injected task-attempt failures observed during the run.
    pub failures: usize,
    /// Tasks abandoned after exhausting their retry budget.
    pub retries_exhausted: usize,
    /// Ids of the abandoned tasks (their lost segments are in
    /// [`OnlineResult::wasted`], never in the schedule).
    pub abandoned: Vec<usize>,
    /// Processor crashes applied during the run.
    pub crashes: usize,
    /// Processor repairs applied during the run.
    pub repairs: usize,
    /// Executed-but-lost segments: the heads of failed attempts plus the
    /// conserved segments of abandoned tasks.  Disjoint from the schedule.
    pub wasted: Vec<ScheduledTask>,
    /// Integral of `duration × allotment` over [`OnlineResult::wasted`] —
    /// processor-time burned without contributing to any completed task.
    pub wasted_integral: f64,
    /// Integral of *online* processors over `[0, makespan]`:
    /// `m × makespan` minus the outage overlaps.  Equal to `m × makespan`
    /// in a fault-free run.
    pub capacity_integral: f64,
    /// Outage intervals applied during the run, with open-ended outages
    /// left at `end = f64::INFINITY`.
    pub outages: Vec<Outage>,
}

impl OnlineResult {
    /// Machine utilisation over the makespan horizon.
    pub fn utilization(&self) -> f64 {
        self.schedule.utilization()
    }

    /// Time-weighted utilisation against the capacity that actually
    /// existed: the busy-processor integral divided by the *online*
    /// processor integral ([`OnlineResult::capacity_integral`]).  Unlike a
    /// sampled end-of-run scalar this weights every interval by its length,
    /// so idle stretches between epochs count against the figure — but time
    /// a crashed processor spent offline does not (the scheduler could not
    /// have used it).  In a fault-free run the capacity integral is exactly
    /// `m × makespan` and this equals
    /// [`OnlineResult::nominal_utilization`].
    pub fn time_weighted_utilization(&self) -> f64 {
        if self.capacity_integral <= 0.0 {
            return 0.0;
        }
        self.busy_integral / self.capacity_integral
    }

    /// The historical utilisation figure: the busy-processor integral over
    /// `m × makespan`, as if every processor had been online for the whole
    /// horizon.  Under faults this under-reports the scheduler (offline
    /// time it could never use counts against it); kept for comparability
    /// across fault-free reports.
    pub fn nominal_utilization(&self) -> f64 {
        let horizon = self.schedule.makespan();
        if horizon <= 0.0 {
            return 0.0;
        }
        self.busy_integral / (self.schedule.processors() as f64 * horizon)
    }

    /// Fraction of all executed processor-time that landed in completed
    /// tasks: `busy / (busy + wasted)`.  `1.0` when nothing was wasted
    /// (including the degenerate empty run).
    pub fn goodput_fraction(&self) -> f64 {
        let total = self.busy_integral + self.wasted_integral;
        if total <= 0.0 {
            return 1.0;
        }
        self.busy_integral / total
    }
}

/// The shipped **queued-reallotment scenario**: two sequential tasks fill a
/// two-processor machine, a malleable task is committed *queued* at a single
/// processor behind them, and a tiny straggler arrives — a preemptive epoch
/// re-planner ([`crate::policy::EpochReplan::with_preempt_queued`]) revokes
/// the queued task, widens it to the whole machine and strictly beats the
/// non-preemptive run (makespan 7.5 vs 9 with `EpochReplan::mrt(1.0)`).
///
/// Shared by the engine's hand-computed unit test and the `online_report`
/// benchmark gate so the two can never drift apart.  The profiles are
/// hand-written constants, but the builder still returns the constructor
/// errors instead of panicking — the engine crate's non-test paths stay
/// panic-free.
pub fn queued_reallotment_scenario() -> Result<ArrivalTrace> {
    use workload::Arrival;
    ArrivalTrace::new(
        2,
        vec![
            Arrival::new(0.1, MalleableTask::new(SpeedupProfile::sequential(4.0)?)),
            Arrival::new(0.1, MalleableTask::new(SpeedupProfile::sequential(4.0)?)),
            Arrival::new(
                0.1,
                MalleableTask::new(SpeedupProfile::new(vec![4.0, 2.0])?),
            ),
            Arrival::new(1.5, MalleableTask::new(SpeedupProfile::sequential(0.5)?)),
        ],
    )
}

/// The shipped **running-reallotment scenario**: a malleable task is planned
/// alone and allotted the whole two-processor machine; a long sequential
/// task then arrives while it runs.  A mid-execution re-allotter
/// ([`crate::policy::EpochReplan::with_preempt_running`]) truncates the
/// running task at the next tick, re-solves its residual jointly with the
/// newcomer, *narrows* the malleable task to one processor and runs the
/// sequential task beside it (makespan ≈ 8.22 vs 11.5 when started tasks
/// are frozen — queued-only preemption cannot help because nothing is
/// queued).
///
/// Shared by the engine's hand-computed unit test and the `online_report`
/// benchmark gate so the two can never drift apart.  Returns the
/// constructor errors instead of panicking, like
/// [`queued_reallotment_scenario`].
pub fn running_reallotment_scenario() -> Result<ArrivalTrace> {
    use workload::Arrival;
    ArrivalTrace::new(
        2,
        vec![
            Arrival::new(
                0.1,
                MalleableTask::new(SpeedupProfile::new(vec![8.0, 4.5])?),
            ),
            Arrival::new(1.5, MalleableTask::new(SpeedupProfile::sequential(6.0)?)),
        ],
    )
}

/// Per-task lifecycle state tracked by the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TaskState {
    /// Not yet arrived, or waiting in the pending queue — possibly as a
    /// *residual* with executed segments already behind it, after a running
    /// preemption.
    Waiting,
    /// Committed into the machine, not yet observed running.
    Committed(Commitment),
    /// Observed running: the current segment's start has passed.  Running
    /// tasks complete normally; under
    /// [`OnlinePolicy::preempt_running`] they may instead be truncated at a
    /// tick and re-planned as residuals.
    Running(RunningTask),
    /// Finished executing.
    Done {
        /// Completion time of the final segment.
        finished_at: f64,
    },
    /// Left the system without executing any work.
    Departed,
    /// Gave up after exhausting its retry budget (fault runs only); its
    /// lost segments are accounted in the wasted list.
    Abandoned,
}

/// The in-flight segment of a running task.
#[derive(Debug, Clone, Copy, PartialEq)]
struct RunningTask {
    /// The commitment backing the segment.
    commitment: Commitment,
    /// When the segment started executing (= its commitment's start).
    started_at: f64,
    /// Fraction of the whole task still unexecuted when the segment started
    /// (1.0 unless earlier segments were preempted); the segment's
    /// remaining-work bookkeeping anchor.
    remaining_at_start: f64,
}

/// The fault model of one engine run: the deterministic plan plus the
/// retry discipline.
struct FaultContext<'a> {
    plan: &'a FaultPlan,
    retry: RetryPolicy,
}

/// Run a policy over a trace.
pub fn run(trace: &ArrivalTrace, policy: &mut dyn OnlinePolicy) -> Result<OnlineResult> {
    run_inner(trace, policy, None, None)
}

/// Run a policy over a trace under a deterministic fault plan.
///
/// Processor outages and per-attempt task failures from `plan` are injected
/// as first-class events (see the module docs for the recovery semantics);
/// `retry` governs the backoff and attempts budget of failed tasks.  Pass a
/// recorder to capture the fault telemetry stream
/// (`processor_down`/`processor_up`/`task_failure`/`retry_scheduled`
/// events and the matching counters).
///
/// The plan must target the trace's machine (`plan.processors() ==
/// trace.processors()`) and `retry` must be valid; a quiet plan
/// ([`FaultPlan::is_quiet`]) reproduces [`run`] exactly.
pub fn run_with_faults(
    trace: &ArrivalTrace,
    policy: &mut dyn OnlinePolicy,
    plan: &FaultPlan,
    retry: RetryPolicy,
    recorder: Option<&dyn Recorder>,
) -> Result<OnlineResult> {
    if plan.processors() != trace.processors() {
        return Err(Error::InvalidParameter {
            name: "fault-plan-processors",
            value: plan.processors() as f64,
        });
    }
    retry.validate()?;
    run_inner(trace, policy, recorder, Some(FaultContext { plan, retry }))
}

/// Run a policy over a trace with telemetry.
///
/// Every engine decision is recorded: per-event-loop decision latency and
/// hole-scan histograms, per-epoch solve spans (solver name, probe count,
/// warm-start flag), structured placement/revocation/truncation/completion/
/// departure events, reservation-timeline operation counts, and a per-epoch
/// time-weighted utilisation timeline.  Pass a `NoopRecorder` to measure
/// instrumentation overhead against [`run`] (the `probe_report` bench gates
/// the difference at ≤ 2%); pass a
/// [`CollectingRecorder`](::telemetry::CollectingRecorder) — with a clone of
/// the same handle in
/// [`crate::policy::PolicyOptions::recorder`] so the policy's workspace
/// counters land in the same sink — to collect the stream.
pub fn run_recorded(
    trace: &ArrivalTrace,
    policy: &mut dyn OnlinePolicy,
    recorder: &dyn Recorder,
) -> Result<OnlineResult> {
    run_inner(trace, policy, Some(recorder), None)
}

fn run_inner(
    trace: &ArrivalTrace,
    policy: &mut dyn OnlinePolicy,
    recorder: Option<&dyn Recorder>,
    faults: Option<FaultContext<'_>>,
) -> Result<OnlineResult> {
    let run_timer = recorder.map(|_| SpanTimer::start());
    let instance = trace.instance()?;
    let n = trace.len();
    let mut machine = if policy.backfill() {
        MachineState::with_backfill(instance.processors())
    } else {
        MachineState::new(instance.processors())
    };
    let mut queue = EventQueue::new();
    for (index, arrival) in trace.arrivals().iter().enumerate() {
        queue.push(arrival.at, EventKind::Arrival(index));
        if let Some(departs_at) = arrival.departs_at {
            queue.push(departs_at, EventKind::Departure(index));
        }
    }
    if let Some(ctx) = &faults {
        // Outages are known up-front (the plan is deterministic): both edges
        // enter the heap now, interleaving with task events by the
        // documented equal-timestamp order.
        for outage in ctx.plan.outages() {
            queue.push(outage.start, EventKind::ProcessorDown(outage.processor));
            if outage.end.is_finite() {
                queue.push(outage.end, EventKind::ProcessorUp(outage.processor));
            }
        }
    }

    let mut pending: Vec<PendingTask> = Vec::new();
    let mut states: Vec<TaskState> = vec![TaskState::Waiting; n];
    // Fraction of each task still unexecuted (1.0 until its first segment
    // closes, 0.0 once completed) — the residual-task bookkeeping.
    let mut remaining: Vec<f64> = vec![1.0; n];
    // Closed (executed) segments per task; the final schedule is their
    // concatenation.  One entry per task unless running re-allotment split
    // its execution into several piecewise-constant allotments.
    let mut segments: Vec<Vec<ScheduledTask>> = vec![Vec::new(); n];
    let mut events = 0usize;
    let mut replans = 0usize;
    let mut departed = 0usize;
    let mut preempted = 0usize;
    let mut reallotted = 0usize;
    // Fault-run bookkeeping (all quiescent without a fault context).
    // Failed attempts per task; indexes the plan's per-attempt failure table.
    let mut attempts: Vec<usize> = vec![0; n];
    // Commitment generation per task: bumped on every commit, carried by
    // failure events so stale ones (aimed at revoked or re-planned
    // commitments) are filtered.
    let mut generation: Vec<u64> = vec![0; n];
    // Executed-but-lost segments: failed attempts' heads and the conserved
    // segments of abandoned tasks.
    let mut wasted: Vec<ScheduledTask> = Vec::new();
    let mut abandoned: Vec<usize> = Vec::new();
    let mut failures = 0usize;
    let mut retries_exhausted = 0usize;
    let mut crashes = 0usize;
    let mut repairs = 0usize;
    // Applied outages; an entry stays open (`end = INFINITY`) until its
    // repair event fires.
    let mut outage_log: Vec<Outage> = Vec::new();
    let mut tick_scheduled = false;
    // Structural delta-planning bookkeeping (policies opting in via
    // `OnlinePolicy::delta_planning`): set on departures and fault events,
    // cleared after a planned epoch tick.  While clean, epoch boundaries
    // skip the preemptive revocation pass and plan only fresh arrivals
    // against the surviving schedule.
    let mut structural_dirty = false;
    // Running maximum of committed start times, for the backfill telemetry
    // flag: a placement beginning strictly before it filled an earlier hole.
    let mut latest_committed_start = 0.0f64;

    while let Some(event) = queue.pop() {
        events += 1;
        let decision_timer = recorder.map(|_| SpanTimer::start());
        let holes_before = recorder.map(|_| machine.timeline_stats().holes_scanned);
        machine.advance_to(event.time);
        let trigger = match event.kind {
            EventKind::Arrival(index) => {
                // Retries re-enter through a fresh arrival event; one queued
                // mid-backoff when the task departed or was abandoned is
                // stale and must be dropped here.
                if matches!(states[index], TaskState::Departed | TaskState::Abandoned) {
                    None
                } else {
                    pending.push(PendingTask {
                        id: index,
                        arrived_at: event.time,
                        // 1.0 for a first arrival; a retry resumes at the
                        // task's conserved remaining fraction.
                        remaining: remaining[index],
                    });
                    Some(Trigger::Arrival)
                }
            }
            EventKind::Completion(task) => {
                // A completion is only real when it matches the task's
                // *current* commitment: events of revoked commitments stay in
                // the heap and are skipped here.
                let current = match states[task] {
                    TaskState::Committed(c) => Some(c),
                    TaskState::Running(r) => Some(r.commitment),
                    _ => None,
                };
                match current {
                    Some(c) if (c.start + c.duration - event.time).abs() <= 1e-6 => {
                        segments[task].push(ScheduledTask {
                            task,
                            start: c.start,
                            duration: c.duration,
                            processors: ProcessorRange::new(c.first, c.count),
                        });
                        remaining[task] = 0.0;
                        states[task] = TaskState::Done {
                            finished_at: c.start + c.duration,
                        };
                        machine.complete_one();
                        if let Some(rec) = recorder {
                            rec.add(names::COMPLETIONS, 1);
                            if rec.enabled() {
                                rec.event(TelemetryEvent::Complete {
                                    time: event.time,
                                    task: task as u64,
                                });
                            }
                        }
                        Some(Trigger::Completion)
                    }
                    _ => None,
                }
            }
            EventKind::Departure(index) => match states[index] {
                // A task that executed any work is immune to its deadline:
                // work is conserved, so tearing it down would strand
                // executed segments.  (A completion at exactly `departs_at`
                // popped before this event — completions order before
                // departures — so the task is already `Done` here.)
                TaskState::Waiting if segments[index].is_empty() => {
                    // Still queued (or never planned): the task leaves.
                    if let Some(pos) = pending.iter().position(|p| p.id == index) {
                        pending.remove(pos);
                        states[index] = TaskState::Departed;
                        departed += 1;
                        if let Some(rec) = recorder {
                            rec.add(names::DEPARTURES, 1);
                            if rec.enabled() {
                                rec.event(TelemetryEvent::Depart {
                                    time: event.time,
                                    task: index as u64,
                                    completed: false,
                                });
                            }
                        }
                        Some(Trigger::Departure)
                    } else if faults.is_some() && attempts[index] > 0 {
                        // Waiting out a retry backoff (its re-arrival is
                        // still in the heap): no conserved work exists, so
                        // the deadline takes it.  The queued retry arrival
                        // goes stale via the arrival-handler guard.
                        states[index] = TaskState::Departed;
                        departed += 1;
                        if let Some(rec) = recorder {
                            rec.add(names::DEPARTURES, 1);
                            if rec.enabled() {
                                rec.event(TelemetryEvent::Depart {
                                    time: event.time,
                                    task: index as u64,
                                    completed: false,
                                });
                            }
                        }
                        Some(Trigger::Departure)
                    } else {
                        // Departure before arrival cannot happen (validated
                        // by the trace); a fault-free Waiting task is always
                        // pending.
                        None
                    }
                }
                TaskState::Committed(c)
                    if segments[index].is_empty() && c.start > event.time + 1e-9 =>
                {
                    // Committed but not started: revoke the reservation.
                    machine.revoke(c.reservation).map_err(|e| {
                        invariant_error(
                            recorder,
                            event.time,
                            "revoke-queued-departure",
                            format!("task {index}: {e}"),
                        )
                    })?;
                    states[index] = TaskState::Departed;
                    departed += 1;
                    if let Some(rec) = recorder {
                        rec.add(names::REVOCATIONS, 1);
                        rec.add(names::DEPARTURES, 1);
                        if rec.enabled() {
                            rec.event(TelemetryEvent::Revoke {
                                time: event.time,
                                task: index as u64,
                            });
                            rec.event(TelemetryEvent::Depart {
                                time: event.time,
                                task: index as u64,
                                completed: false,
                            });
                        }
                    }
                    Some(Trigger::Departure)
                }
                // Running, finished, already departed, or a residual that
                // already executed work: nothing to do.
                _ => None,
            },
            EventKind::TaskFailure {
                task,
                generation: scheduled_generation,
            } => {
                let Some(ctx) = faults.as_ref() else {
                    return Err(invariant_error(
                        recorder,
                        event.time,
                        "fault-context",
                        format!("failure event for task {task} in a fault-free run"),
                    ));
                };
                // Only the commitment the failure was scheduled against may
                // die: every commit bumps the generation, so failures aimed
                // at revoked or re-planned commitments are stale.
                let current = match states[task] {
                    TaskState::Committed(c) => Some((c, remaining[task])),
                    TaskState::Running(r) => Some((r.commitment, r.remaining_at_start)),
                    _ => None,
                };
                match current {
                    Some((c, remaining_at_start)) if generation[task] == scheduled_generation => {
                        let now = event.time;
                        let elapsed = now - c.start;
                        if elapsed > 1e-9 {
                            machine.truncate_at(c.reservation, now).map_err(|e| {
                                invariant_error(
                                    recorder,
                                    now,
                                    "truncate-failed-segment",
                                    format!("task {task}: {e}"),
                                )
                            })?;
                            // Unlike a crash the head is *lost* work: the
                            // processors were burned but the task must redo
                            // it, so the segment lands in the wasted list
                            // and `remaining` reverts below.
                            wasted.push(ScheduledTask {
                                task,
                                start: c.start,
                                duration: elapsed,
                                processors: ProcessorRange::new(c.first, c.count),
                            });
                        } else {
                            machine.revoke(c.reservation).map_err(|e| {
                                invariant_error(
                                    recorder,
                                    now,
                                    "revoke-failed-commitment",
                                    format!("task {task}: {e}"),
                                )
                            })?;
                        }
                        remaining[task] = remaining_at_start;
                        attempts[task] += 1;
                        failures += 1;
                        if let Some(rec) = recorder {
                            rec.add(names::TASK_FAILURES, 1);
                            if rec.enabled() {
                                rec.event(TelemetryEvent::TaskFailure {
                                    time: now,
                                    task: task as u64,
                                    attempt: attempts[task] - 1,
                                    lost_work: elapsed.max(0.0) * c.count as f64,
                                });
                            }
                        }
                        if attempts[task] >= ctx.retry.max_attempts {
                            // Retry budget exhausted: abandon the task and
                            // move its conserved segments to the wasted list
                            // (they can no longer sum to a whole task).
                            wasted.append(&mut segments[task]);
                            states[task] = TaskState::Abandoned;
                            abandoned.push(task);
                            retries_exhausted += 1;
                            if let Some(rec) = recorder {
                                rec.add(names::RETRIES_EXHAUSTED, 1);
                            }
                        } else if segments[task].is_empty()
                            && trace.arrivals()[task]
                                .departs_at
                                .is_some_and(|d| d <= now + 1e-9)
                        {
                            // The deadline passed while the attempt ran (its
                            // departure event found the task protected by the
                            // in-flight commitment and left it alone).  The
                            // failure lost that work, so nothing is conserved
                            // any more and the expired deadline takes the
                            // task: a retry could only ever start late.
                            states[task] = TaskState::Departed;
                            departed += 1;
                            if let Some(rec) = recorder {
                                rec.add(names::DEPARTURES, 1);
                                if rec.enabled() {
                                    rec.event(TelemetryEvent::Depart {
                                        time: now,
                                        task: task as u64,
                                        completed: false,
                                    });
                                }
                            }
                        } else {
                            states[task] = TaskState::Waiting;
                            let at = now + ctx.retry.backoff(attempts[task]);
                            queue.push(at, EventKind::Arrival(task));
                            if let Some(rec) = recorder {
                                rec.add(names::RETRIES_SCHEDULED, 1);
                                if rec.enabled() {
                                    rec.event(TelemetryEvent::RetryScheduled {
                                        time: now,
                                        task: task as u64,
                                        attempt: attempts[task],
                                        at,
                                    });
                                }
                            }
                        }
                        Some(Trigger::Fault)
                    }
                    _ => None,
                }
            }
            EventKind::ProcessorDown(processor) => {
                if !machine.is_online(processor) {
                    // Overlapping outage edges in a hand-built plan: the
                    // processor is already down.
                    None
                } else {
                    let now = event.time;
                    let displaced = machine.set_offline(processor, now).map_err(|e| {
                        invariant_error(
                            recorder,
                            now,
                            "crash-displacement",
                            format!("processor {processor}: {e}"),
                        )
                    })?;
                    crashes += 1;
                    outage_log.push(Outage {
                        processor,
                        start: now,
                        end: f64::INFINITY,
                    });
                    let displaced_count = displaced.len();
                    for reservation in displaced {
                        let Some(task) = states.iter().position(|state| match state {
                            TaskState::Committed(c) => c.reservation == reservation,
                            TaskState::Running(r) => r.commitment.reservation == reservation,
                            _ => false,
                        }) else {
                            return Err(invariant_error(
                                recorder,
                                now,
                                "crash-displacement",
                                format!(
                                    "displaced reservation {reservation:?} backs no live                                      commitment"
                                ),
                            ));
                        };
                        let (c, remaining_at_start) = match states[task] {
                            TaskState::Committed(c) => (c, remaining[task]),
                            TaskState::Running(r) => (r.commitment, r.remaining_at_start),
                            _ => unreachable!(),
                        };
                        let elapsed = now - c.start;
                        if elapsed > 1e-9 {
                            // Running when the processor died: `set_offline`
                            // already truncated the reservation at the
                            // clock, so the executed head is *conserved* —
                            // close it as a segment and requeue the
                            // residual, exactly as mid-execution
                            // re-allotment does.
                            segments[task].push(ScheduledTask {
                                task,
                                start: c.start,
                                duration: elapsed,
                                processors: ProcessorRange::new(c.first, c.count),
                            });
                            remaining[task] = (remaining_at_start
                                - workload::executed_fraction(
                                    &instance.task(task).profile,
                                    c.count,
                                    elapsed,
                                ))
                            .max(1e-12);
                        }
                        states[task] = TaskState::Waiting;
                        pending.push(PendingTask {
                            id: task,
                            arrived_at: trace.arrivals()[task].at,
                            remaining: remaining[task],
                        });
                    }
                    if let Some(rec) = recorder {
                        rec.add(names::PROCESSOR_DOWNS, 1);
                        if rec.enabled() {
                            rec.event(TelemetryEvent::ProcessorDown {
                                time: now,
                                processor,
                                displaced: displaced_count,
                            });
                        }
                    }
                    Some(Trigger::Fault)
                }
            }
            EventKind::ProcessorUp(processor) => {
                if machine.is_online(processor) {
                    // Matching guard for the overlapping-edges case above.
                    None
                } else {
                    machine.set_online(processor, event.time);
                    repairs += 1;
                    if let Some(open) = outage_log
                        .iter_mut()
                        .rev()
                        .find(|o| o.processor == processor && o.end.is_infinite())
                    {
                        open.end = event.time;
                    }
                    if let Some(rec) = recorder {
                        rec.add(names::PROCESSOR_UPS, 1);
                        if rec.enabled() {
                            rec.event(TelemetryEvent::ProcessorUp {
                                time: event.time,
                                processor,
                            });
                        }
                    }
                    Some(Trigger::Fault)
                }
            }
            EventKind::EpochTick => {
                tick_scheduled = false;
                Some(Trigger::EpochTick)
            }
        };

        if matches!(trigger, Some(Trigger::Departure | Trigger::Fault)) {
            // The committed schedule lost structure (a departure or fault
            // disturbed it): the next epoch tick must re-solve in full.
            structural_dirty = true;
        }

        if let Some(trigger) = trigger {
            if trigger == Trigger::EpochTick {
                let now = machine.now();
                // Promote commitments whose start has passed into the
                // `Running` lifecycle state, capturing the remaining-work
                // anchor of the in-flight segment.
                for (task, state) in states.iter_mut().enumerate() {
                    if let TaskState::Committed(c) = *state {
                        if c.start <= now + 1e-9 {
                            *state = TaskState::Running(RunningTask {
                                commitment: c,
                                started_at: c.start,
                                remaining_at_start: remaining[task],
                            });
                        }
                    }
                }
                // Preemptive re-allotment of queued commitments: pull every
                // not-yet-started commitment back into the pending set
                // before planning, so the policy re-solves the whole
                // backlog as one instance.  Running re-allotment subsumes
                // this — a frozen queued placement would defeat the joint
                // re-solve.
                // Structural delta-planning: while no departure or fault has
                // disturbed the committed schedule since the last planned
                // tick, an opted-in policy keeps every surviving commitment
                // and plans only the fresh arrivals — the whole preemptive
                // pass below is skipped for this epoch.
                let delta_epoch = policy.delta_planning()
                    && !structural_dirty
                    && (policy.preempt_queued() || policy.preempt_running());
                if delta_epoch && !pending.is_empty() {
                    if let Some(rec) = recorder {
                        rec.add(names::DELTA_PLANS, 1);
                    }
                }
                if !delta_epoch && (policy.preempt_queued() || policy.preempt_running()) {
                    for (task, state) in states.iter_mut().enumerate() {
                        if let TaskState::Committed(c) = *state {
                            machine.revoke(c.reservation).map_err(|e| {
                                invariant_error(
                                    recorder,
                                    now,
                                    "preempt-queued",
                                    format!("task {task}: {e}"),
                                )
                            })?;
                            *state = TaskState::Waiting;
                            pending.push(PendingTask {
                                id: task,
                                arrived_at: trace.arrivals()[task].at,
                                remaining: remaining[task],
                            });
                            preempted += 1;
                            if let Some(rec) = recorder {
                                rec.add(names::REVOCATIONS, 1);
                                if rec.enabled() {
                                    rec.event(TelemetryEvent::Revoke {
                                        time: now,
                                        task: task as u64,
                                    });
                                }
                            }
                        }
                    }
                }
                // Mid-execution re-allotment: truncate every running
                // commitment at the clock — the executed head becomes a
                // closed segment, the tail is freed — and hand the task
                // back as a residual (profile scaled by the remaining
                // fraction).  Only worthwhile when there is fresh or
                // re-queued work to co-schedule: with an empty pending set
                // the re-solve could only replay the same tails.
                if !delta_epoch && policy.preempt_running() && !pending.is_empty() {
                    for (task, state) in states.iter_mut().enumerate() {
                        if let TaskState::Running(r) = *state {
                            let c = r.commitment;
                            if c.start + c.duration <= now + 1e-6 {
                                // About to finish (its completion event is
                                // due this instant): let it.
                                continue;
                            }
                            let elapsed = now - r.started_at;
                            let truncated = elapsed > 1e-9;
                            if !truncated {
                                // Started exactly now — nothing executed
                                // yet, a plain revocation.
                                machine.revoke(c.reservation).map_err(|e| {
                                    invariant_error(
                                        recorder,
                                        now,
                                        "preempt-running-zero-elapsed",
                                        format!("task {task}: {e}"),
                                    )
                                })?;
                            } else {
                                let freed =
                                    machine.truncate_at(c.reservation, now).map_err(|e| {
                                        invariant_error(
                                            recorder,
                                            now,
                                            "preempt-running-truncate",
                                            format!("task {task}: {e}"),
                                        )
                                    })?;
                                // The about-to-finish guard above ensures the
                                // cut lands strictly inside the reservation.
                                assert!(freed, "truncation at the clock freed no tail");
                                segments[task].push(ScheduledTask {
                                    task,
                                    start: c.start,
                                    duration: elapsed,
                                    processors: ProcessorRange::new(c.first, c.count),
                                });
                                remaining[task] = (r.remaining_at_start
                                    - workload::executed_fraction(
                                        &instance.task(task).profile,
                                        c.count,
                                        elapsed,
                                    ))
                                .max(1e-12);
                            }
                            *state = TaskState::Waiting;
                            pending.push(PendingTask {
                                id: task,
                                arrived_at: trace.arrivals()[task].at,
                                remaining: remaining[task],
                            });
                            if truncated {
                                reallotted += 1;
                            } else {
                                preempted += 1;
                            }
                            if let Some(rec) = recorder {
                                if truncated {
                                    rec.add(names::TRUNCATIONS, 1);
                                } else {
                                    rec.add(names::REVOCATIONS, 1);
                                }
                                if rec.enabled() {
                                    rec.event(if truncated {
                                        TelemetryEvent::Truncate {
                                            time: now,
                                            task: task as u64,
                                            at: now,
                                        }
                                    } else {
                                        TelemetryEvent::Revoke {
                                            time: now,
                                            task: task as u64,
                                        }
                                    });
                                }
                            }
                        }
                    }
                }
                // Deterministic plan input regardless of revocation order.
                pending.sort_by_key(|p| p.id);
            }

            if !pending.is_empty() && policy.should_plan(trigger, &machine) {
                let probes_before = policy.probes_issued();
                let warm_start = policy.warm_start();
                if let Some(rec) = recorder {
                    if rec.enabled() {
                        rec.event(TelemetryEvent::SolveStart {
                            time: machine.now(),
                            solver: policy.solver_name(),
                            pending: pending.len(),
                            warm_start,
                        });
                    }
                }
                let solve_timer = recorder.map(|_| SpanTimer::start());
                let commitments = policy.plan(&instance, &pending, &mut machine)?;
                if let Some(rec) = recorder {
                    let wall_ns = solve_timer.as_ref().map_or(0, SpanTimer::elapsed_ns);
                    let probes = policy.probes_issued().saturating_sub(probes_before) as u64;
                    rec.sample(names::SOLVE_NS, wall_ns);
                    rec.sample(names::SOLVE_PROBES, probes);
                    rec.add(names::REPLANS, 1);
                    if rec.enabled() {
                        rec.event(TelemetryEvent::SolveEnd {
                            time: machine.now(),
                            solver: policy.solver_name(),
                            probes,
                            wall_ns,
                            scheduled: commitments.len(),
                            warm_start,
                        });
                    }
                }
                replans += 1;
                pending.clear();
                for c in commitments {
                    let arrived_at = trace.arrivals()[c.task].at;
                    if c.start < arrived_at - 1e-9 {
                        // A correct policy can never commit into a task's
                        // past; treat it as a hard model violation rather
                        // than a bad schedule.
                        if let Some(rec) = recorder {
                            rec.add(names::INVARIANT_VIOLATIONS, 1);
                            if rec.enabled() {
                                rec.event(TelemetryEvent::InvariantViolation {
                                    time: machine.now(),
                                    detail: format!(
                                        "task {} committed at {} before its arrival at {arrived_at}",
                                        c.task, c.start
                                    ),
                                });
                            }
                        }
                        return Err(Error::InvalidParameter {
                            name: "start-before-arrival",
                            value: c.start,
                        });
                    }
                    if !(c.start.is_finite() && c.duration.is_finite()) {
                        // A window query against a machine with too few
                        // online processors reports an infinite start; a
                        // policy that commits it anyway (instead of
                        // clamping its width by `max_contiguous_online`)
                        // violated the capacity model.
                        record_violation(
                            recorder,
                            machine.now(),
                            format!(
                                "task {} committed with non-finite placement [{}, {} + {})",
                                c.task, c.start, c.start, c.duration
                            ),
                        );
                        return Err(Error::InvalidParameter {
                            name: "non-finite-commitment",
                            value: c.start,
                        });
                    }
                    queue.push(c.start + c.duration, EventKind::Completion(c.task));
                    states[c.task] = TaskState::Committed(c);
                    generation[c.task] = generation[c.task].wrapping_add(1);
                    if let Some(ctx) = &faults {
                        // The plan may kill this (task, attempt) pair a
                        // fraction of the way through the segment; the
                        // event carries the generation so it goes stale if
                        // the commitment is revoked or re-planned first.
                        if let Some(fraction) = ctx.plan.failure_fraction(c.task, attempts[c.task])
                        {
                            queue.push(
                                c.start + fraction * c.duration,
                                EventKind::TaskFailure {
                                    task: c.task,
                                    generation: generation[c.task],
                                },
                            );
                        }
                    }
                    if let Some(rec) = recorder {
                        let backfilled = c.start + 1e-9 < latest_committed_start;
                        rec.add(names::PLACEMENTS, 1);
                        if backfilled {
                            rec.add(names::BACKFILLS, 1);
                        }
                        if rec.enabled() {
                            rec.event(TelemetryEvent::Place {
                                time: machine.now(),
                                task: c.task as u64,
                                start: c.start,
                                duration: c.duration,
                                processors: c.count,
                                backfilled,
                            });
                        }
                    }
                    latest_committed_start = latest_committed_start.max(c.start);
                }
                if trigger == Trigger::EpochTick {
                    // The tick was planned (in full or as an arrival-only
                    // delta): the surviving schedule is fresh again.
                    structural_dirty = false;
                }
            }

            // Keep the epoch clock running only while there is work left to
            // plan: a tick fires on the first grid point after `now`.
            if let Some(period) = policy.epoch() {
                if !pending.is_empty() && !tick_scheduled {
                    let now = machine.now();
                    let next = (now / period).floor() * period + period;
                    queue.push(next, EventKind::EpochTick);
                    tick_scheduled = true;
                }
            }
        }

        if let Some(rec) = recorder {
            if let Some(timer) = &decision_timer {
                rec.sample(names::DECISION_NS, timer.elapsed_ns());
            }
            rec.add(names::EVENTS, 1);
            let scanned = machine.timeline_stats().holes_scanned - holes_before.unwrap_or(0);
            if scanned > 0 {
                rec.sample(names::HOLE_SCAN, scanned);
            }
        }
    }

    // Defensive: a policy that never planned its last tasks would leave the
    // queue non-empty here (no such policy ships, but fail loudly if one
    // appears).
    if !pending.is_empty() {
        record_violation(
            recorder,
            machine.now(),
            format!(
                "{} task(s) still pending after the heap drained",
                pending.len()
            ),
        );
        return Err(Error::NoFeasibleSchedule);
    }

    let mut schedule = Schedule::new(instance.processors());
    let mut flow_sum = 0.0f64;
    let mut flow_max = 0.0f64;
    let mut busy_integral = 0.0f64;
    let mut executed = 0usize;
    for (task, state) in states.iter().enumerate() {
        let finished_at = match state {
            TaskState::Done { finished_at } => *finished_at,
            TaskState::Departed => continue,
            // Its lost segments are already in the wasted list.
            TaskState::Abandoned => continue,
            // A policy that commits only part of the pending set it was
            // handed (the `plan` contract requires all of it) leaves tasks
            // waiting forever; surface that as an error, not a panic.
            TaskState::Waiting => {
                record_violation(
                    recorder,
                    machine.now(),
                    format!("task {task} ended the run still waiting"),
                );
                return Err(Error::NoFeasibleSchedule);
            }
            // Every commitment has a completion event, and the loop only
            // ends once the heap drained.
            other => unreachable!("task {task} ended the run as {other:?}"),
        };
        // The task's executed segments, in chronological order (one unless
        // running re-allotment split it).
        for segment in &segments[task] {
            schedule.push(*segment);
            busy_integral += segment.duration * segment.processors.count as f64;
        }
        let flow = finished_at - trace.arrivals()[task].at;
        flow_sum += flow;
        flow_max = flow_max.max(flow);
        executed += 1;
    }

    let makespan = schedule.makespan();
    let wasted_integral: f64 = wasted
        .iter()
        .map(|segment| segment.duration * segment.processors.count as f64)
        .sum();
    // Online capacity over [0, makespan]: the full machine minus every
    // outage's overlap with the horizon (`m × makespan` exactly when the
    // run saw no crash).
    let mut capacity_integral = instance.processors() as f64 * makespan;
    for outage in &outage_log {
        let overlap = outage.end.min(makespan) - outage.start.min(makespan);
        if overlap > 0.0 {
            capacity_integral -= overlap;
        }
    }
    capacity_integral = capacity_integral.max(0.0);

    let result = OnlineResult {
        policy: policy.name(),
        makespan,
        mean_flow_time: flow_sum / executed.max(1) as f64,
        max_flow_time: flow_max,
        events,
        replans,
        departed,
        preempted,
        reallotted,
        busy_integral,
        failures,
        retries_exhausted,
        abandoned,
        crashes,
        repairs,
        wasted,
        wasted_integral,
        capacity_integral,
        outages: outage_log,
        schedule,
    };

    if let Some(rec) = recorder {
        if rec.enabled() {
            // Per-epoch utilisation: re-bin the executed schedule on the
            // policy's epoch grid (whole horizon for epoch-free policies).
            let period = policy.epoch().unwrap_or(result.makespan);
            for sample in crate::telemetry::utilization_timeline(&result.schedule, period) {
                rec.event(TelemetryEvent::EpochUtilization {
                    start: sample.start,
                    end: sample.end,
                    busy: sample.busy,
                });
            }
        }
        let stats = machine.timeline_stats();
        rec.add(names::TIMELINE_RESERVATIONS, stats.reservations);
        rec.add(names::TIMELINE_CANCELS, stats.cancels);
        rec.add(names::TIMELINE_TRUNCATIONS, stats.truncations);
        rec.add(names::TIMELINE_HOLES_SCANNED, stats.holes_scanned);
        if let Some(timer) = &run_timer {
            rec.add(names::RUN_NS, timer.elapsed_ns());
        }
    }

    Ok(result)
}

/// Record an engine invariant violation and build the typed error carrying
/// it — the panic-free engine idiom: observe, count, and surface a broken
/// internal invariant as [`Error::InvariantViolated`] instead of tearing
/// the process down.
fn invariant_error(
    recorder: Option<&dyn Recorder>,
    time: f64,
    context: &'static str,
    message: String,
) -> Error {
    record_violation(recorder, time, format!("{context}: {message}"));
    Error::InvariantViolated { context, message }
}

/// Record an engine invariant violation (the quantity CI gates to zero) on
/// the way out of an error path.
fn record_violation(recorder: Option<&dyn Recorder>, time: f64, detail: String) {
    if let Some(rec) = recorder {
        rec.add(names::INVARIANT_VIOLATIONS, 1);
        if rec.enabled() {
            rec.event(TelemetryEvent::InvariantViolation { time, detail });
        }
    }
}

/// Validate an online schedule against its trace: the structural checks of
/// `simulator::validate` on the offline instance, plus the conditions
/// specific to the online setting — no task may *first* start before it
/// arrived or after its departure deadline, and only tasks with a departure
/// deadline may be absent from the schedule.  Returns human-readable
/// violation messages (empty = valid).
///
/// A task may appear as several **piecewise-constant allotment segments**
/// (the output of mid-execution re-allotment): its segments must be
/// chronologically disjoint and their executed fractions — segment duration
/// over the profile time at the segment's allotment — must sum to one
/// (work conservation under the speed-up model, tolerance `1e-6`).  For a
/// single-segment task that degenerates to the classical "duration matches
/// the profile" check.
///
/// Unlike the simulator's all-pairs overlap check this runs in
/// `O(n·m + n·m·log n)` (a per-processor interval sweep), so it stays usable
/// on traces with tens of thousands of tasks; on small schedules both
/// validators agree (cross-checked in the integration tests).
pub fn validate_against_trace(trace: &ArrivalTrace, schedule: &Schedule) -> Vec<String> {
    let mut messages = Vec::new();
    let instance = match trace.instance() {
        Ok(instance) => instance,
        Err(error) => {
            messages.push(format!("trace has no offline instance: {error}"));
            return messages;
        }
    };

    let m = instance.processors();
    if schedule.processors() != m {
        messages.push(format!(
            "schedule targets {} processors, the trace machine has {m}",
            schedule.processors()
        ));
    }
    let n = instance.task_count();
    // Per-task segment lists for the piecewise checks.
    let mut segments: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); n];
    // (start, finish, task) intervals per processor for the overlap sweep.
    let mut per_processor: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); m];

    for entry in schedule.entries() {
        if entry.task >= n {
            messages.push(format!("task {} does not exist", entry.task));
            continue;
        }
        if entry.processors.end() > m {
            messages.push(format!(
                "task {} uses processors [{}, {}) beyond the machine",
                entry.task,
                entry.processors.first,
                entry.processors.end()
            ));
            continue;
        }
        if !(entry.start.is_finite() && entry.start >= -1e-12) {
            messages.push(format!(
                "task {} has invalid start time {}",
                entry.task, entry.start
            ));
        }
        if !(entry.duration.is_finite() && entry.duration > 1e-12) {
            messages.push(format!(
                "task {} has a degenerate segment duration {}",
                entry.task, entry.duration
            ));
            // A degenerate duration would poison the per-task conservation
            // sum (NaN compares false against every threshold) and the
            // overlap sweep, so the segment is excluded from both.
            continue;
        }
        segments[entry.task].push((entry.start, entry.duration, entry.processors.count));
        for intervals in &mut per_processor[entry.processors.first..entry.processors.end()] {
            intervals.push((entry.start, entry.finish(), entry.task));
        }
    }

    for (task, segs) in segments.iter_mut().enumerate() {
        if segs.is_empty() {
            if trace.arrivals()[task].departs_at.is_none() {
                // Only tasks with a departure deadline may legitimately be
                // dropped by the engine.
                messages.push(format!("task {task} is not scheduled"));
            }
            continue;
        }
        segs.sort_by(|a, b| a.0.total_cmp(&b.0));
        // The *first* segment is bound by arrival and departure; later
        // segments are re-allotted continuations of already-started work.
        let first_start = segs[0].0;
        if first_start < trace.arrivals()[task].at - 1e-9 {
            messages.push(format!(
                "task {task} starts at {first_start} before its arrival at {}",
                trace.arrivals()[task].at
            ));
        }
        if let Some(departs_at) = trace.arrivals()[task].departs_at {
            if first_start > departs_at + 1e-9 {
                messages.push(format!(
                    "task {task} starts at {first_start} after its departure at {departs_at}"
                ));
            }
        }
        // A task runs at one allotment at a time: segments must be
        // chronologically disjoint.
        for pair in segs.windows(2) {
            let (prev_start, prev_duration, _) = pair[0];
            let (next_start, _, _) = pair[1];
            if next_start < prev_start + prev_duration - 1e-9 {
                messages.push(format!(
                    "task {task} runs two segments concurrently (at {next_start})"
                ));
            }
        }
        // Work conservation under the speed-up model: the executed
        // fractions of the segments sum to the whole task.
        let executed: f64 = segs
            .iter()
            .map(|&(_, duration, count)| duration / instance.time(task, count))
            .sum();
        if (executed - 1.0).abs() > 1e-6 {
            messages.push(format!(
                "task {task} executes fraction {executed} of its work across {} segment(s)",
                segs.len()
            ));
        }
    }

    for (processor, intervals) in per_processor.iter_mut().enumerate() {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in intervals.windows(2) {
            let (_, finish, first_task) = pair[0];
            let (start, _, second_task) = pair[1];
            if start < finish - 1e-9 {
                messages.push(format!(
                    "tasks {first_task} and {second_task} overlap on processor {processor}"
                ));
            }
        }
    }

    messages
}

/// Validate a fault run: [`validate_against_trace`] with the
/// fault-specific conditions layered on.
///
/// * Abandoned tasks (retry budget exhausted) may legitimately be absent
///   from the schedule — their "not scheduled" messages are filtered.
/// * Executed **and** wasted segments together must be disjoint per
///   processor: a failed attempt's head really occupied its processors, so
///   nothing else may have run there at the time.
/// * No executed or wasted segment may overlap an outage on any of its
///   processors — offline capacity must never be used.
///
/// Returns human-readable violation messages (empty = valid).
pub fn validate_fault_run(trace: &ArrivalTrace, result: &OnlineResult) -> Vec<String> {
    let mut messages: Vec<String> = validate_against_trace(trace, &result.schedule)
        .into_iter()
        .filter(|message| {
            !result
                .abandoned
                .iter()
                .any(|&task| message == &format!("task {task} is not scheduled"))
        })
        .collect();

    let m = trace.processors();
    let all_segments = || result.schedule.entries().iter().chain(result.wasted.iter());

    // Per-processor interval sweep over executed ∪ wasted segments.
    let mut per_processor: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); m];
    for entry in all_segments() {
        for intervals in &mut per_processor[entry.processors.first..entry.processors.end().min(m)] {
            intervals.push((entry.start, entry.finish(), entry.task));
        }
    }
    for (processor, intervals) in per_processor.iter_mut().enumerate() {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in intervals.windows(2) {
            let (_, finish, first_task) = pair[0];
            let (start, _, second_task) = pair[1];
            if start < finish - 1e-9 {
                messages.push(format!(
                    "tasks {first_task} and {second_task} overlap on processor {processor} \
                     (executed or wasted segments)"
                ));
            }
        }
    }

    // No segment may use a processor while it was offline.
    for entry in all_segments() {
        for outage in &result.outages {
            if outage.processor >= entry.processors.first
                && outage.processor < entry.processors.end()
                && outage.overlaps(entry.start, entry.finish())
            {
                messages.push(format!(
                    "task {} runs on processor {} during its outage [{}, {})",
                    entry.task, outage.processor, outage.start, outage.end
                ));
            }
        }
    }

    messages
}

/// Validate a fault run on a classed cluster: [`validate_fault_run`] with
/// per-class capacity accounting layered on.
///
/// `class_counts` gives the processor count of each contiguous machine
/// class in global processor order — class `c` owns processors
/// `[offset_c, offset_c + count_c)`, matching the layout of
/// `hetero::ClassedCluster`.  On top of the fault-run checks:
///
/// * The counts must partition the trace's machine exactly.
/// * No executed or wasted segment may straddle a class boundary — a
///   classed engine never co-allocates processors from two classes.
/// * Per class, the busy integral (executed + wasted processor-time inside
///   the class range) must fit in the class's capacity integral:
///   `count_c × makespan` minus the outage time charged to the class.
///
/// Returns human-readable violation messages (empty = valid).
pub fn validate_fault_run_classed(
    trace: &ArrivalTrace,
    result: &OnlineResult,
    class_counts: &[usize],
) -> Vec<String> {
    let mut messages = validate_fault_run(trace, result);

    let total: usize = class_counts.iter().sum();
    if total != trace.processors() {
        messages.push(format!(
            "class counts sum to {total} processors but the trace has {}",
            trace.processors()
        ));
        return messages;
    }

    // Contiguous class ranges in declaration order.
    let mut ranges: Vec<(usize, usize)> = Vec::with_capacity(class_counts.len());
    let mut offset = 0;
    for &count in class_counts {
        ranges.push((offset, offset + count));
        offset += count;
    }
    let class_of = |processor: usize| {
        ranges
            .iter()
            .position(|&(first, end)| first <= processor && processor < end)
    };

    // Segments must stay inside one class, and their processor-time
    // accumulates into that class's busy integral.
    let mut busy = vec![0.0_f64; class_counts.len()];
    for entry in result.schedule.entries().iter().chain(result.wasted.iter()) {
        let Some(class) = class_of(entry.processors.first) else {
            messages.push(format!(
                "task {} starts on processor {} outside the classed machine [0, {total})",
                entry.task, entry.processors.first
            ));
            continue;
        };
        let (_, end) = ranges[class];
        if entry.processors.end() > end {
            messages.push(format!(
                "task {} spans processors [{}, {}) across the class boundary at {}",
                entry.task,
                entry.processors.first,
                entry.processors.end(),
                end
            ));
            continue;
        }
        busy[class] += entry.duration * entry.processors.count as f64;
    }

    // Capacity integral per class: count × makespan, less outage time on
    // the class's processors (open-ended outages clamp at the makespan).
    let makespan = result.makespan;
    let mut lost = vec![0.0_f64; class_counts.len()];
    for outage in &result.outages {
        let end = outage.end.min(makespan);
        if end > outage.start {
            match class_of(outage.processor) {
                Some(class) => lost[class] += end - outage.start,
                None => messages.push(format!(
                    "outage on processor {} outside the classed machine [0, {total})",
                    outage.processor
                )),
            }
        }
    }
    for (class, ((&count, &used), &down)) in class_counts
        .iter()
        .zip(busy.iter())
        .zip(lost.iter())
        .enumerate()
    {
        let capacity = count as f64 * makespan - down;
        if used > capacity + 1e-6 {
            messages.push(format!(
                "class {class} executes {used} processor-time but only {capacity} was available"
            ));
        }
    }

    messages
}

/// Offline-vs-online comparison for one run: the competitive-ratio surface
/// the benchmark suite tracks.
#[derive(Debug, Clone)]
pub struct CompetitiveReport {
    /// Makespan of the online run.
    pub online_makespan: f64,
    /// Makespan of the offline MRT scheduler on the same task set, all tasks
    /// released at time 0 (a clairvoyant √3-approximate baseline).
    pub offline_makespan: f64,
    /// Certified lower bound on the offline optimum (dual-search
    /// certificate); every online makespan is ≥ this value.
    pub certified_lower_bound: f64,
    /// Arrival time of the last task (no online schedule can beat it plus
    /// the task's best execution time).
    pub last_arrival: f64,
    /// `online_makespan / offline_makespan`, or `None` when every task
    /// departed before starting — an empty executed subset has no offline
    /// baseline, so there is no ratio to report (serialised as `null`, and
    /// excluded from benchmark gates).
    pub ratio_vs_offline: Option<f64>,
    /// `online_makespan / certified_lower_bound`, or `None` when the
    /// executed subset is empty (see
    /// [`CompetitiveReport::ratio_vs_offline`]).
    pub ratio_vs_lower_bound: Option<f64>,
}

/// Compare an online result against the offline MRT run on the same tasks.
///
/// When tasks departed during the run, the clairvoyant baseline is the
/// offline solve of the *executed* task set (the departed tasks consumed no
/// machine time online either), so the ratio compares like with like.  When
/// *every* task departed the executed subset is empty: dividing by its
/// offline makespan would produce `NaN`, so both ratios are `None` instead
/// and callers (JSON reports, CI gates) skip the scenario.
pub fn competitive_report(
    trace: &ArrivalTrace,
    result: &OnlineResult,
) -> Result<CompetitiveReport> {
    if result.schedule.is_empty() {
        return Ok(CompetitiveReport {
            online_makespan: 0.0,
            offline_makespan: 0.0,
            certified_lower_bound: 0.0,
            last_arrival: trace.last_arrival(),
            ratio_vs_offline: None,
            ratio_vs_lower_bound: None,
        });
    }
    // The executed task set: piecewise re-allotted tasks appear once per
    // segment in the schedule, so deduplicate by task id.
    let mut executed: Vec<usize> = result.schedule.entries().iter().map(|e| e.task).collect();
    executed.sort_unstable();
    executed.dedup();
    let instance = if executed.len() == trace.len() {
        trace.instance()?
    } else {
        // Sub-instance of the executed tasks.  The comparison needs only the
        // makespan and the certified bound, so the re-indexing is harmless.
        let tasks: Vec<MalleableTask> = executed
            .iter()
            .map(|&task| trace.arrivals()[task].task.clone())
            .collect();
        Instance::new(tasks, trace.processors())?
    };
    let offline = malleable_core::mrt::schedule(&instance)?;
    let offline_makespan = offline.schedule.makespan();
    let lb = offline.certified_lower_bound;
    Ok(CompetitiveReport {
        online_makespan: result.makespan,
        offline_makespan,
        certified_lower_bound: lb,
        last_arrival: trace.last_arrival(),
        ratio_vs_offline: Some(result.makespan / offline_makespan),
        ratio_vs_lower_bound: Some(result.makespan / lb),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatchUntilIdle, EpochReplan, GreedyList, PolicyKind};
    use workload::{Arrival, ArrivalPattern, ArrivalTrace, TraceConfig, WorkloadConfig};

    fn sequential_trace(times: &[(f64, f64)], processors: usize) -> ArrivalTrace {
        let arrivals = times
            .iter()
            .map(|&(at, duration)| {
                Arrival::new(
                    at,
                    MalleableTask::new(SpeedupProfile::sequential(duration).unwrap()),
                )
            })
            .collect();
        ArrivalTrace::new(processors, arrivals).unwrap()
    }

    fn poisson_trace(tasks: usize, processors: usize, rate: f64, seed: u64) -> ArrivalTrace {
        ArrivalTrace::generate(&TraceConfig {
            workload: WorkloadConfig::mixed(tasks, processors, seed),
            pattern: ArrivalPattern::Poisson { rate },
        })
        .unwrap()
    }

    #[test]
    fn greedy_schedules_each_arrival_immediately() {
        // Two unit tasks on two processors arriving together: both start on
        // arrival, in parallel.
        let trace = sequential_trace(&[(1.0, 2.0), (1.0, 2.0)], 2);
        let result = run(&trace, &mut GreedyList::new()).unwrap();
        assert!((result.makespan - 3.0).abs() < 1e-9);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
        assert_eq!(result.replans, 2);
        assert!((result.mean_flow_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_policy_batches_on_the_grid() {
        // Arrivals at 0.2 and 0.4; epoch period 1.0 → both planned at t=1.
        let trace = sequential_trace(&[(0.2, 1.0), (0.4, 1.0)], 2);
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.replans, 1);
        // Both run in parallel starting at the epoch boundary.
        assert!((result.makespan - 2.0).abs() < 1e-9);
        for entry in result.schedule.entries() {
            assert!(entry.start >= 1.0 - 1e-9);
        }
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn batch_policy_waits_for_the_machine_to_drain() {
        // Task A arrives at 0 (runs 4s); B and C arrive at 1 and must wait
        // until A completes, then run as one batch.
        let trace = sequential_trace(&[(0.0, 4.0), (1.0, 1.0), (1.0, 1.0)], 2);
        let mut policy = BatchUntilIdle::default();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.replans, 2);
        let entries = result.schedule.entries();
        assert!((entries[0].start - 0.0).abs() < 1e-9);
        for entry in &entries[1..] {
            assert!((entry.start - 4.0).abs() < 1e-9, "batch starts when idle");
        }
        assert!((result.makespan - 5.0).abs() < 1e-9);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn all_policies_produce_valid_schedules_on_random_traces() {
        let trace = poisson_trace(60, 8, 4.0, 17);
        let offline = malleable_core::mrt::schedule(&trace.instance().unwrap()).unwrap();
        let registry = solver::default_registry();
        for kind in [
            PolicyKind::Greedy,
            PolicyKind::Epoch {
                period: 1.0,
                solver: registry.get("mrt").unwrap(),
            },
            PolicyKind::Epoch {
                period: 0.5,
                solver: registry.get("ludwig").unwrap(),
            },
            PolicyKind::Batch {
                solver: registry.get("list").unwrap(),
            },
        ] {
            let mut policy = kind.build().unwrap();
            let result = run(&trace, policy.as_mut()).unwrap();
            let violations = validate_against_trace(&trace, &result.schedule);
            assert!(violations.is_empty(), "{}: {violations:?}", result.policy);
            // The sweep validator must agree with the simulator's strict
            // all-pairs validator.
            let report =
                simulator::validate_schedule(&trace.instance().unwrap(), &result.schedule, None);
            assert!(
                report.is_valid(),
                "{}: {:?}",
                result.policy,
                report.violations
            );
            // No online schedule can beat the certified offline lower bound.
            assert!(
                result.makespan >= offline.certified_lower_bound - 1e-9,
                "{} beat the offline lower bound",
                result.policy
            );
            assert_eq!(result.schedule.len(), trace.len());
        }
    }

    #[test]
    fn competitive_report_is_consistent() {
        let trace = poisson_trace(40, 8, 2.0, 3);
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        let report = competitive_report(&trace, &result).unwrap();
        assert!(report.ratio_vs_lower_bound.unwrap() >= 1.0 - 1e-9);
        assert!(report.ratio_vs_offline.unwrap().is_finite());
        assert!(report.online_makespan >= report.certified_lower_bound - 1e-9);
        assert!(report.last_arrival > 0.0);
    }

    #[test]
    fn pending_tasks_depart_before_being_planned() {
        // The departing task leaves the queue before the first epoch tick and
        // is never scheduled; the other task runs normally.
        let trace = ArrivalTrace::new(
            1,
            vec![
                Arrival::new(
                    0.2,
                    MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
                )
                .departing_at(0.5),
                Arrival::new(
                    0.2,
                    MalleableTask::new(SpeedupProfile::sequential(2.0).unwrap()),
                ),
            ],
        )
        .unwrap();
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.departed, 1);
        assert_eq!(result.schedule.len(), 1);
        assert_eq!(result.schedule.entries()[0].task, 1);
        assert!((result.makespan - 3.0).abs() < 1e-9);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn queued_commitments_are_revoked_on_departure() {
        // Greedy commits B behind the running A ([4, 6], queued); B departs
        // at t=3 before starting, freeing the machine for C at t=4.
        let trace = ArrivalTrace::new(
            1,
            vec![
                Arrival::new(
                    0.0,
                    MalleableTask::new(SpeedupProfile::sequential(4.0).unwrap()),
                ),
                Arrival::new(
                    1.0,
                    MalleableTask::new(SpeedupProfile::sequential(2.0).unwrap()),
                )
                .departing_at(3.0),
                Arrival::new(
                    3.5,
                    MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
                ),
            ],
        )
        .unwrap();
        let result = run(&trace, &mut GreedyList::new()).unwrap();
        assert_eq!(result.departed, 1);
        assert_eq!(result.schedule.len(), 2);
        assert!(
            (result.makespan - 5.0).abs() < 1e-9,
            "C reclaims B's revoked slot: got {}",
            result.makespan
        );
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
        // A started task is never interrupted by its departure deadline.
        let trace = ArrivalTrace::new(
            1,
            vec![Arrival::new(
                0.0,
                MalleableTask::new(SpeedupProfile::sequential(4.0).unwrap()),
            )
            .departing_at(2.0)],
        )
        .unwrap();
        let result = run(&trace, &mut GreedyList::new()).unwrap();
        assert_eq!(result.departed, 0);
        assert!((result.makespan - 4.0).abs() < 1e-9);
    }

    #[test]
    fn backfill_reuses_holes_the_frontier_engine_wastes() {
        // A [0,1) on p0, then the wide B takes both processors over [1,3)
        // leaving the hole [0,1) on p1; the final unit task C fits the hole
        // only when backfilling.
        let trace = ArrivalTrace::new(
            2,
            vec![
                Arrival::new(
                    0.0,
                    MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
                ),
                Arrival::new(
                    0.0,
                    MalleableTask::new(SpeedupProfile::new(vec![4.0, 2.0]).unwrap()),
                ),
                Arrival::new(
                    0.0,
                    MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
                ),
            ],
        )
        .unwrap();
        let frontier = run(&trace, &mut GreedyList::new()).unwrap();
        assert!(
            (frontier.makespan - 4.0).abs() < 1e-9,
            "{}",
            frontier.makespan
        );
        let backfill = run(&trace, &mut GreedyList::backfilling()).unwrap();
        assert!(
            (backfill.makespan - 3.0).abs() < 1e-9,
            "{}",
            backfill.makespan
        );
        for result in [&frontier, &backfill] {
            assert!(validate_against_trace(&trace, &result.schedule).is_empty());
            let report =
                simulator::validate_schedule(&trace.instance().unwrap(), &result.schedule, None);
            assert!(report.is_valid(), "{:?}", report.violations);
        }
    }

    #[test]
    fn preemptive_replanning_corrects_queued_placements() {
        // The shipped scenario (see [`queued_reallotment_scenario`]): epoch 1
        // plans {A, B, C} — the sequential A and B dominate the guess
        // (ω ≥ 4), so the malleable C is allotted a single processor and
        // committed *queued* over [5, 9).  When the tiny E arrives, the
        // preemptive re-planner revokes the queued C and re-solves {C, E}
        // jointly — on that pending set the bound drops to ~2.25, C widens
        // to both processors ([5, 7)) and E rides behind it ([7, 7.5)),
        // beating the non-preemptive makespan of 9.
        let trace = queued_reallotment_scenario().expect("valid scenario");
        let run_with = |preempt: bool| {
            let mut policy = EpochReplan::mrt(1.0).unwrap().with_preempt_queued(preempt);
            run(&trace, &mut policy).unwrap()
        };
        let plain = run_with(false);
        let preemptive = run_with(true);
        assert_eq!(plain.preempted, 0);
        assert!(preemptive.preempted >= 1, "no commitment was preempted");
        assert!(
            preemptive.makespan < plain.makespan - 1e-9,
            "preemption did not help: {} vs {}",
            preemptive.makespan,
            plain.makespan
        );
        for result in [&plain, &preemptive] {
            assert!(validate_against_trace(&trace, &result.schedule).is_empty());
            let report =
                simulator::validate_schedule(&trace.instance().unwrap(), &result.schedule, None);
            assert!(report.is_valid(), "{:?}", report.violations);
            assert_eq!(result.schedule.len(), trace.len());
        }
    }

    #[test]
    fn delta_planning_skips_revocations_on_arrival_only_epochs() {
        // Same scenario as above, but with structural delta-planning on: the
        // trace has no departures or faults, so *every* epoch is
        // arrival-only, the revocation sweep is skipped wholesale and the
        // run degrades to the non-preemptive outcome (makespan 9, nothing
        // preempted) while counting its delta plans.
        let trace = queued_reallotment_scenario().expect("valid scenario");
        let recorder = ::telemetry::CollectingRecorder::shared();
        let mut policy = EpochReplan::mrt(1.0)
            .unwrap()
            .with_preempt_queued(true)
            .with_delta_planning(true);
        assert!(policy.name().ends_with("+delta"), "{}", policy.name());
        let result = run_recorded(&trace, &mut policy, recorder.as_ref()).unwrap();
        assert_eq!(result.preempted, 0, "delta epochs must not revoke");
        assert!((result.makespan - 9.0).abs() < 1e-9, "{}", result.makespan);
        // Both planning ticks (the {A, B, C} epoch and the {E} epoch) were
        // arrival-only deltas.
        assert_eq!(recorder.counter(::telemetry::names::DELTA_PLANS), 2);
        assert_eq!(recorder.counter(::telemetry::names::REVOCATIONS), 0);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn delta_planning_falls_back_to_full_resolve_after_a_departure() {
        // The queued-reallotment scenario plus a doomed task that arrives
        // between the two epochs (t = 1.1) and departs while queued
        // (t = 1.4).  The departure marks the plan structurally dirty, so
        // the {E} epoch at t = 2 falls back to the full preemptive
        // re-solve — revoking the queued C and recovering the preemptive
        // makespan of 7.5 — even though delta-planning is on.  Only the
        // first (clean) epoch counts as a delta plan.
        let mut arrivals = queued_reallotment_scenario()
            .expect("valid scenario")
            .arrivals()
            .to_vec();
        arrivals.push(
            Arrival::new(
                1.1,
                MalleableTask::new(SpeedupProfile::sequential(3.0).unwrap()),
            )
            .departing_at(1.4),
        );
        let trace = ArrivalTrace::new(2, arrivals).unwrap();
        let recorder = ::telemetry::CollectingRecorder::shared();
        let mut policy = EpochReplan::mrt(1.0)
            .unwrap()
            .with_preempt_queued(true)
            .with_delta_planning(true);
        let result = run_recorded(&trace, &mut policy, recorder.as_ref()).unwrap();
        assert_eq!(result.departed, 1);
        assert!(result.preempted >= 1, "the dirty epoch must re-solve fully");
        assert!((result.makespan - 7.5).abs() < 1e-9, "{}", result.makespan);
        assert_eq!(recorder.counter(::telemetry::names::DELTA_PLANS), 1);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn running_reallotment_narrows_the_running_task() {
        // The shipped scenario (see [`running_reallotment_scenario`]): the
        // malleable A ([8, 4.5]) is planned alone at tick 1 and takes the
        // whole machine ([1, 5.5) at 2 processors).  The sequential B (6.0)
        // arrives at 1.5; with running tasks frozen it must queue behind A
        // (makespan 11.5).  The mid-execution re-allotter truncates A at
        // tick 2 (elapsed 1.0 of 4.5 → remaining 7/9), re-solves
        // {A' = [8, 4.5]·7/9, B} and runs them side by side at one
        // processor each: A' finishes at 2 + 8·7/9 ≈ 8.22.
        let trace = running_reallotment_scenario().expect("valid scenario");
        let run_with = |running: bool| {
            let mut policy = EpochReplan::mrt(1.0)
                .unwrap()
                .with_preempt_queued(true)
                .with_preempt_running(running);
            run(&trace, &mut policy).unwrap()
        };
        let frozen = run_with(false);
        let reallotted = run_with(true);
        assert_eq!(frozen.reallotted, 0);
        assert!((frozen.makespan - 11.5).abs() < 1e-9, "{}", frozen.makespan);
        assert!(reallotted.reallotted >= 1, "no running task was truncated");
        let expected = 2.0 + 8.0 * (7.0 / 9.0);
        assert!(
            (reallotted.makespan - expected).abs() < 1e-6,
            "re-allotment makespan {} (expected {expected})",
            reallotted.makespan
        );
        // Task A appears as two piecewise segments: [1, 2) at 2 processors
        // and [2, 8.22) at 1 processor; work is conserved.
        let a_segments: Vec<_> = reallotted
            .schedule
            .entries()
            .iter()
            .filter(|e| e.task == 0)
            .collect();
        assert_eq!(a_segments.len(), 2);
        assert_eq!(a_segments[0].processors.count, 2);
        assert_eq!(a_segments[1].processors.count, 1);
        for result in [&frozen, &reallotted] {
            assert!(
                validate_against_trace(&trace, &result.schedule).is_empty(),
                "{:?}",
                validate_against_trace(&trace, &result.schedule)
            );
            let report = simulator::validate_piecewise_subset(
                &trace.instance().unwrap(),
                &result.schedule,
                None,
            );
            assert!(report.is_valid(), "{:?}", report.violations);
        }
    }

    #[test]
    fn reallotment_skips_ticks_without_fresh_work() {
        // A single task, nothing else ever arrives: ticks with an empty
        // pending set must leave the running task alone (re-solving it in
        // isolation could only replay the same tail).
        let trace = sequential_trace(&[(0.3, 4.0)], 1);
        let mut policy = EpochReplan::mrt(1.0)
            .unwrap()
            .with_preempt_queued(true)
            .with_preempt_running(true);
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.reallotted, 0);
        assert_eq!(result.schedule.len(), 1);
        assert!((result.makespan - 5.0).abs() < 1e-9);
    }

    #[test]
    fn completion_exactly_at_departure_counts_as_completed() {
        // Satellite bugfix pin: a task completing at t == departs_at is
        // completed, never departed — completions order before departures
        // at equal timestamps, exactly.
        let trace = ArrivalTrace::new(
            1,
            vec![Arrival::new(
                0.0,
                MalleableTask::new(SpeedupProfile::sequential(2.0).unwrap()),
            )
            .departing_at(2.0)],
        )
        .unwrap();
        let result = run(&trace, &mut GreedyList::new()).unwrap();
        assert_eq!(result.departed, 0, "the exact tie must complete");
        assert_eq!(result.schedule.len(), 1);
        assert!((result.makespan - 2.0).abs() < 1e-9);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());

        // Same tie through an epoch policy, where the deadline coincides
        // with an epoch tick as well: planned at t=1, runs [1, 2), departs
        // at 2 — completion still wins the tie (tick order is last).
        let trace = ArrivalTrace::new(
            1,
            vec![Arrival::new(
                0.5,
                MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
            )
            .departing_at(2.0)],
        )
        .unwrap();
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.departed, 0);
        assert_eq!(result.schedule.len(), 1);
        assert!((result.makespan - 2.0).abs() < 1e-9);

        // And the contrasting case: starting exactly at the deadline is
        // allowed (only strictly-later starts are revoked), so the task
        // runs rather than departing.
        let trace = ArrivalTrace::new(
            1,
            vec![
                Arrival::new(
                    0.0,
                    MalleableTask::new(SpeedupProfile::sequential(2.0).unwrap()),
                ),
                Arrival::new(
                    0.0,
                    MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
                )
                .departing_at(2.0),
            ],
        )
        .unwrap();
        let result = run(&trace, &mut GreedyList::new()).unwrap();
        assert_eq!(result.departed, 0, "a start at t == departs_at counts");
        assert_eq!(result.schedule.len(), 2);
        assert!((result.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn preempted_residuals_are_immune_to_departure() {
        // A task with a deadline *starts*, is then preempted back into the
        // pending set as a residual, and its departure fires while it waits:
        // started work is conserved, so the task must not depart.  Machine
        // with 1 processor: A starts at tick 1; B (tiny) arrives at 1.5
        // forcing a re-allotment at tick 2; A's departure at 2.5 hits the
        // waiting residual and must be ignored.
        let trace = ArrivalTrace::new(
            1,
            vec![
                Arrival::new(
                    0.5,
                    MalleableTask::new(SpeedupProfile::sequential(4.0).unwrap()),
                )
                .departing_at(2.5),
                Arrival::new(
                    1.5,
                    MalleableTask::new(SpeedupProfile::sequential(0.5).unwrap()),
                ),
            ],
        )
        .unwrap();
        let mut policy = EpochReplan::mrt(1.0)
            .unwrap()
            .with_preempt_queued(true)
            .with_preempt_running(true);
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.departed, 0, "started residuals never depart");
        // Both tasks executed; A's segments conserve its 4.0 of work.
        let report = simulator::validate_piecewise_subset(
            &trace.instance().unwrap(),
            &result.schedule,
            None,
        );
        assert!(report.is_valid(), "{:?}", report.violations);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn all_departed_runs_report_gracefully() {
        // Nothing ever starts (the only tick is after every deadline): the
        // run succeeds with an empty schedule and the competitive report
        // degenerates to the identity instead of erroring.
        let trace = ArrivalTrace::new(
            1,
            vec![
                Arrival::new(
                    0.1,
                    MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
                )
                .departing_at(0.2),
                Arrival::new(
                    0.1,
                    MalleableTask::new(SpeedupProfile::sequential(1.0).unwrap()),
                )
                .departing_at(0.3),
            ],
        )
        .unwrap();
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.departed, 2);
        assert!(result.schedule.is_empty());
        assert_eq!(result.makespan, 0.0);
        let report = competitive_report(&trace, &result).unwrap();
        assert_eq!(report.ratio_vs_offline, None, "empty subset has no ratio");
        assert_eq!(report.ratio_vs_lower_bound, None);
    }

    #[test]
    fn partial_planning_policies_error_instead_of_panicking() {
        // A broken policy that commits only the first pending task: the
        // engine must refuse the run with an error, not crash.
        struct FirstOnly;
        impl OnlinePolicy for FirstOnly {
            fn name(&self) -> String {
                "first-only".into()
            }
            fn epoch(&self) -> Option<f64> {
                Some(1.0)
            }
            fn should_plan(&self, trigger: Trigger, _machine: &MachineState) -> bool {
                trigger == Trigger::EpochTick
            }
            fn plan(
                &mut self,
                instance: &Instance,
                pending: &[PendingTask],
                machine: &mut MachineState,
            ) -> Result<Vec<Commitment>> {
                let task = pending[0].id;
                let duration = instance.time(task, 1);
                let placement = machine.place_earliest(1, duration);
                Ok(vec![Commitment {
                    task,
                    start: placement.start,
                    duration,
                    first: placement.first,
                    count: 1,
                    reservation: placement.reservation,
                }])
            }
        }
        let trace = sequential_trace(&[(0.0, 1.0), (0.0, 1.0)], 2);
        assert!(run(&trace, &mut FirstOnly).is_err());
    }

    #[test]
    fn crash_conserves_executed_work_and_restarts_narrower() {
        // Hand-computed: the malleable task ([8, 4.5]) takes both processors
        // over [0, 4.5).  Processor 1 crashes at t=2: the head [0, 2) × 2 is
        // conserved (executed fraction 2/4.5 = 4/9, remaining 5/9) and the
        // residual restarts *narrower* on the surviving processor —
        // [2, 2 + 8·5/9) × 1 — for a makespan of 58/9.
        let trace = ArrivalTrace::new(
            2,
            vec![Arrival::new(
                0.0,
                MalleableTask::new(SpeedupProfile::new(vec![8.0, 4.5]).unwrap()),
            )],
        )
        .unwrap();
        let plan = FaultPlan::empty(2, 16.0).with_outage(1, 2.0, 10.0);
        let recorder = ::telemetry::CollectingRecorder::new();
        let result = run_with_faults(
            &trace,
            &mut GreedyList::new(),
            &plan,
            RetryPolicy::default(),
            Some(&recorder),
        )
        .unwrap();
        assert_eq!((result.crashes, result.repairs), (1, 1));
        assert_eq!(result.failures, 0);
        let expected = 2.0 + 8.0 * (5.0 / 9.0);
        assert!(
            (result.makespan - expected).abs() < 1e-9,
            "makespan {} (expected {expected})",
            result.makespan
        );
        let entries = result.schedule.entries();
        assert_eq!(entries.len(), 2, "conserved head + residual restart");
        assert_eq!(entries[0].processors.count, 2);
        assert!((entries[0].duration - 2.0).abs() < 1e-9);
        assert_eq!(entries[1].processors.count, 1, "residual restarts narrower");
        assert!((entries[1].start - 2.0).abs() < 1e-9);
        // Capacity integral: 2·(58/9) − (58/9 − 2) = 76/9, which is exactly
        // the busy integral — the scheduler never idled online capacity.
        assert!((result.capacity_integral - 76.0 / 9.0).abs() < 1e-9);
        assert!((result.time_weighted_utilization() - 1.0).abs() < 1e-9);
        assert!((result.nominal_utilization() - 76.0 / 116.0).abs() < 1e-9);
        assert_eq!(result.goodput_fraction(), 1.0, "crashes waste nothing");
        assert!(
            validate_fault_run(&trace, &result).is_empty(),
            "{:?}",
            validate_fault_run(&trace, &result)
        );
        assert_eq!(recorder.counter(::telemetry::names::PROCESSOR_DOWNS), 1);
        assert_eq!(recorder.counter(::telemetry::names::PROCESSOR_UPS), 1);
        assert_eq!(recorder.invariant_violations(), 0);
    }

    #[test]
    fn classed_validator_accepts_a_fault_run_partitioned_by_class() {
        // Two sequential tasks on a [1, 1] class split; the outage is
        // confined to the second class's only processor, so its lost
        // capacity is charged to class 1 and the run still validates.
        let trace = sequential_trace(&[(0.0, 1.0), (0.0, 1.0)], 2);
        let plan = FaultPlan::empty(2, 16.0).with_outage(1, 0.5, 10.0);
        let result = run_with_faults(
            &trace,
            &mut GreedyList::new(),
            &plan,
            RetryPolicy::default(),
            None,
        )
        .unwrap();
        assert!(
            validate_fault_run_classed(&trace, &result, &[1, 1]).is_empty(),
            "{:?}",
            validate_fault_run_classed(&trace, &result, &[1, 1])
        );
        assert!(
            validate_fault_run_classed(&trace, &result, &[2]).is_empty(),
            "the single-class split is the plain fault validation"
        );
        // Counts that do not partition the machine are rejected outright.
        let messages = validate_fault_run_classed(&trace, &result, &[1, 2]);
        assert_eq!(messages.len(), 1, "{messages:?}");
        assert!(messages[0].contains("sum to 3"), "{messages:?}");
    }

    #[test]
    fn classed_validator_flags_boundary_straddles_and_capacity_overruns() {
        // The two-processor malleable task occupies [0, 2) × 2: under a
        // [1, 1] split it straddles the class boundary at processor 1.
        let trace = ArrivalTrace::new(
            2,
            vec![Arrival::new(
                0.0,
                MalleableTask::new(SpeedupProfile::new(vec![8.0, 4.5]).unwrap()),
            )],
        )
        .unwrap();
        let plan = FaultPlan::empty(2, 16.0);
        let mut result = run_with_faults(
            &trace,
            &mut GreedyList::new(),
            &plan,
            RetryPolicy::default(),
            None,
        )
        .unwrap();
        assert!(validate_fault_run_classed(&trace, &result, &[2]).is_empty());
        let messages = validate_fault_run_classed(&trace, &result, &[1, 1]);
        assert!(
            messages.iter().any(|m| m.contains("class boundary")),
            "{messages:?}"
        );
        // Shrinking the reported makespan leaves more busy integral than the
        // single class could have supplied — the capacity sweep catches it.
        result.makespan /= 2.0;
        let messages = validate_fault_run_classed(&trace, &result, &[2]);
        assert!(
            messages.iter().any(|m| m.contains("was available")),
            "{messages:?}"
        );
    }

    #[test]
    fn task_failures_lose_the_segment_and_retry_with_backoff() {
        // Hand-computed: the sequential 4.0 task starts at 0 and is killed
        // halfway (t=2).  Unlike a crash the head [0, 2) is *lost*: it lands
        // in the wasted list, the retry fires after the 1.0 backoff at t=3,
        // and the full task re-runs over [3, 7).
        let trace = sequential_trace(&[(0.0, 4.0)], 1);
        let plan = FaultPlan::empty(1, 16.0).with_task_failure(0, 0, 0.5);
        let retry = RetryPolicy {
            max_attempts: 4,
            base_backoff: 1.0,
            multiplier: 2.0,
            max_backoff: 8.0,
        };
        let recorder = ::telemetry::CollectingRecorder::new();
        let result = run_with_faults(
            &trace,
            &mut GreedyList::new(),
            &plan,
            retry,
            Some(&recorder),
        )
        .unwrap();
        assert_eq!(result.failures, 1);
        assert_eq!(result.retries_exhausted, 0);
        assert!((result.makespan - 7.0).abs() < 1e-9, "{}", result.makespan);
        assert_eq!(result.schedule.len(), 1, "only the successful attempt");
        assert!((result.schedule.entries()[0].start - 3.0).abs() < 1e-9);
        assert_eq!(result.wasted.len(), 1);
        assert!((result.wasted[0].duration - 2.0).abs() < 1e-9);
        assert!((result.wasted_integral - 2.0).abs() < 1e-9);
        assert!((result.goodput_fraction() - 4.0 / 6.0).abs() < 1e-9);
        assert!(
            validate_fault_run(&trace, &result).is_empty(),
            "{:?}",
            validate_fault_run(&trace, &result)
        );
        assert_eq!(recorder.counter(::telemetry::names::TASK_FAILURES), 1);
        assert_eq!(recorder.counter(::telemetry::names::RETRIES_SCHEDULED), 1);
        assert_eq!(recorder.invariant_violations(), 0);
    }

    #[test]
    fn exhausted_retries_abandon_the_task() {
        // Both attempts die halfway under a 2-attempt budget: the task is
        // abandoned, every segment it burned is wasted, and the run still
        // validates (abandoned tasks may be unscheduled).
        let trace = sequential_trace(&[(0.0, 2.0)], 1);
        let plan = FaultPlan::empty(1, 16.0)
            .with_task_failure(0, 0, 0.5)
            .with_task_failure(0, 1, 0.5);
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let result = run_with_faults(&trace, &mut GreedyList::new(), &plan, retry, None).unwrap();
        assert_eq!(result.failures, 2);
        assert_eq!(result.retries_exhausted, 1);
        assert_eq!(result.abandoned, vec![0]);
        assert!(result.schedule.is_empty());
        assert_eq!(result.wasted.len(), 2);
        assert_eq!(result.goodput_fraction(), 0.0);
        assert!(
            validate_fault_run(&trace, &result).is_empty(),
            "{:?}",
            validate_fault_run(&trace, &result)
        );
    }

    #[test]
    fn quiet_fault_plans_reproduce_the_fault_free_run() {
        let trace = poisson_trace(40, 8, 3.0, 11);
        let baseline = run(&trace, &mut EpochReplan::mrt(1.0).unwrap()).unwrap();
        let plan = FaultPlan::empty(8, trace.last_arrival() + 100.0);
        assert!(plan.is_quiet());
        let faulted = run_with_faults(
            &trace,
            &mut EpochReplan::mrt(1.0).unwrap(),
            &plan,
            RetryPolicy::default(),
            None,
        )
        .unwrap();
        assert_eq!(faulted.makespan, baseline.makespan);
        assert_eq!(faulted.schedule.len(), baseline.schedule.len());
        assert_eq!(faulted.crashes + faulted.failures, 0);
        // Satellite pin: with nothing offline the capacity integral is
        // exactly m × makespan, so the corrected utilisation equals the
        // nominal one.
        assert!(
            (faulted.capacity_integral - 8.0 * faulted.makespan).abs() < 1e-9,
            "{} vs {}",
            faulted.capacity_integral,
            8.0 * faulted.makespan
        );
        assert!(
            (faulted.time_weighted_utilization() - faulted.nominal_utilization()).abs() < 1e-12
        );
        assert!(
            (baseline.time_weighted_utilization() - baseline.nominal_utilization()).abs() < 1e-12
        );
    }

    #[test]
    fn mid_backoff_departures_retire_the_task() {
        // The task fails at t=1, waits out its 4.0 backoff, and its deadline
        // (t=2) fires mid-backoff: it departs, and the queued retry arrival
        // goes stale instead of resurrecting it.
        let trace = ArrivalTrace::new(
            1,
            vec![Arrival::new(
                0.0,
                MalleableTask::new(SpeedupProfile::sequential(2.0).unwrap()),
            )
            .departing_at(2.0)],
        )
        .unwrap();
        let plan = FaultPlan::empty(1, 16.0).with_task_failure(0, 0, 0.5);
        let retry = RetryPolicy {
            max_attempts: 4,
            base_backoff: 4.0,
            multiplier: 2.0,
            max_backoff: 8.0,
        };
        let result = run_with_faults(&trace, &mut GreedyList::new(), &plan, retry, None).unwrap();
        assert_eq!(result.failures, 1);
        assert_eq!(result.departed, 1);
        assert!(result.schedule.is_empty());
        assert_eq!(result.wasted.len(), 1);
    }

    #[test]
    fn expired_deadlines_take_failed_tasks_instead_of_retrying() {
        // The task starts at t=0 (before its t=1 deadline, so the departure
        // event finds it protected by the running commitment), then fails at
        // t=2 losing all its work.  With nothing conserved and the deadline
        // already past, the failure retires the task instead of scheduling a
        // retry that could only start late.
        let trace = ArrivalTrace::new(
            1,
            vec![Arrival::new(
                0.0,
                MalleableTask::new(SpeedupProfile::sequential(4.0).unwrap()),
            )
            .departing_at(1.0)],
        )
        .unwrap();
        let plan = FaultPlan::empty(1, 16.0).with_task_failure(0, 0, 0.5);
        let result = run_with_faults(
            &trace,
            &mut GreedyList::new(),
            &plan,
            RetryPolicy::default(),
            None,
        )
        .unwrap();
        assert_eq!(result.failures, 1);
        assert_eq!(result.departed, 1);
        assert!(result.abandoned.is_empty());
        assert!(result.schedule.is_empty());
        // The lost attempt [0, 2) is the only processor time spent.
        assert_eq!(result.wasted.len(), 1);
        assert!((result.wasted_integral - 2.0).abs() < 1e-9);
        assert!(result.goodput_fraction().abs() < 1e-9);
        assert!(validate_fault_run(&trace, &result).is_empty());
    }

    #[test]
    fn ticks_do_not_leak_beyond_the_horizon() {
        // A single arrival: the epoch policy must fire exactly one tick and
        // terminate (no unbounded tick chain).
        let trace = sequential_trace(&[(0.3, 1.0)], 1);
        let mut policy = EpochReplan::mrt(0.25).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.replans, 1);
        // arrival + one tick + one completion
        assert_eq!(result.events, 3);
        assert!((result.makespan - 1.5).abs() < 1e-9);
    }
}
