//! The event-driven online scheduling engine.
//!
//! The engine replays an [`ArrivalTrace`] against a policy: arrivals enter a
//! pending queue, the policy decides when the queue is planned and commits
//! placements into the [`MachineState`], and every commitment schedules a
//! completion event.  Epoch-driven policies additionally receive tick events
//! on their epoch grid (ticks are only scheduled while work is pending, so
//! the event loop always terminates).
//!
//! The output is a single [`Schedule`] over the whole trace on the global
//! timeline — directly checkable by `simulator::validate` against the
//! trace's offline instance, plus the release-date condition specific to the
//! online setting ([`validate_against_trace`]).

use crate::event::{EventKind, EventQueue};
use crate::machine::MachineState;
use crate::policy::{Commitment, OnlinePolicy, PendingTask, Trigger};
use malleable_core::prelude::*;
use workload::ArrivalTrace;

/// The outcome of one engine run.
#[derive(Debug, Clone)]
pub struct OnlineResult {
    /// Name of the policy that produced the run.
    pub policy: String,
    /// The committed schedule on the global timeline (task `j` = arrival `j`).
    pub schedule: Schedule,
    /// Completion time of the last task.
    pub makespan: f64,
    /// Mean flow time (completion − arrival) over all tasks.
    pub mean_flow_time: f64,
    /// Largest flow time over all tasks.
    pub max_flow_time: f64,
    /// Number of events processed.
    pub events: usize,
    /// Number of planning rounds (policy `plan` invocations).
    pub replans: usize,
}

impl OnlineResult {
    /// Machine utilisation over the makespan horizon.
    pub fn utilization(&self) -> f64 {
        self.schedule.utilization()
    }
}

/// Run a policy over a trace.
pub fn run(trace: &ArrivalTrace, policy: &mut dyn OnlinePolicy) -> Result<OnlineResult> {
    let instance = trace.instance()?;
    let mut machine = MachineState::new(instance.processors());
    let mut queue = EventQueue::new();
    for (index, arrival) in trace.arrivals().iter().enumerate() {
        queue.push(arrival.at, EventKind::Arrival(index));
    }

    let mut pending: Vec<PendingTask> = Vec::new();
    let mut schedule = Schedule::new(instance.processors());
    let mut flow_sum = 0.0f64;
    let mut flow_max = 0.0f64;
    let mut events = 0usize;
    let mut replans = 0usize;
    let mut tick_scheduled = false;

    let mut record = |commitments: Vec<Commitment>,
                      schedule: &mut Schedule,
                      trace: &ArrivalTrace|
     -> Result<()> {
        for c in commitments {
            let arrived_at = trace.arrivals()[c.task].at;
            if c.start < arrived_at - 1e-9 {
                // A correct policy can never commit into a task's past; treat
                // it as a hard model violation rather than a bad schedule.
                return Err(Error::InvalidParameter {
                    name: "start-before-arrival",
                    value: c.start,
                });
            }
            schedule.push(ScheduledTask {
                task: c.task,
                start: c.start,
                duration: c.duration,
                processors: ProcessorRange::new(c.first, c.count),
            });
            let flow = c.start + c.duration - arrived_at;
            flow_sum += flow;
            flow_max = flow_max.max(flow);
        }
        Ok(())
    };

    while let Some(event) = queue.pop() {
        events += 1;
        machine.advance_to(event.time);
        let trigger = match event.kind {
            EventKind::Arrival(index) => {
                pending.push(PendingTask {
                    id: index,
                    arrived_at: event.time,
                });
                Trigger::Arrival
            }
            EventKind::Completion(_) => {
                machine.complete_one();
                Trigger::Completion
            }
            EventKind::EpochTick => {
                tick_scheduled = false;
                Trigger::EpochTick
            }
        };

        if !pending.is_empty() && policy.should_plan(trigger, &machine) {
            let commitments = policy.plan(&instance, &pending, &mut machine)?;
            replans += 1;
            pending.clear();
            for c in &commitments {
                queue.push(c.start + c.duration, EventKind::Completion(c.task));
            }
            record(commitments, &mut schedule, trace)?;
        }

        // Keep the epoch clock running only while there is work left to plan:
        // a tick fires on the first grid point after `now`.
        if let Some(period) = policy.epoch() {
            if !pending.is_empty() && !tick_scheduled {
                let now = machine.now();
                let next = (now / period).floor() * period + period;
                queue.push(next, EventKind::EpochTick);
                tick_scheduled = true;
            }
        }
    }

    // Defensive: a policy that never planned its last tasks would leave the
    // queue non-empty here (no such policy ships, but fail loudly if one
    // appears).
    if !pending.is_empty() {
        return Err(Error::NoFeasibleSchedule);
    }

    let task_count = trace.len() as f64;
    Ok(OnlineResult {
        policy: policy.name(),
        makespan: schedule.makespan(),
        mean_flow_time: flow_sum / task_count,
        max_flow_time: flow_max,
        events,
        replans,
        schedule,
    })
}

/// Validate an online schedule against its trace: the structural checks of
/// `simulator::validate` on the offline instance, plus the release-date
/// condition (no task may start before it arrived).  Returns human-readable
/// violation messages (empty = valid).
///
/// Unlike the simulator's all-pairs overlap check this runs in
/// `O(n·m + n·m·log n)` (a per-processor interval sweep), so it stays usable
/// on traces with tens of thousands of tasks; on small schedules both
/// validators agree (cross-checked in the integration tests).
pub fn validate_against_trace(trace: &ArrivalTrace, schedule: &Schedule) -> Vec<String> {
    let mut messages = Vec::new();
    let instance = match trace.instance() {
        Ok(instance) => instance,
        Err(error) => {
            messages.push(format!("trace has no offline instance: {error}"));
            return messages;
        }
    };

    let m = instance.processors();
    if schedule.processors() != m {
        messages.push(format!(
            "schedule targets {} processors, the trace machine has {m}",
            schedule.processors()
        ));
    }
    let n = instance.task_count();
    let mut seen = vec![0usize; n];
    // (start, finish, task) intervals per processor for the overlap sweep.
    let mut per_processor: Vec<Vec<(f64, f64, usize)>> = vec![Vec::new(); m];

    for entry in schedule.entries() {
        if entry.task >= n {
            messages.push(format!("task {} does not exist", entry.task));
            continue;
        }
        seen[entry.task] += 1;
        if entry.processors.end() > m {
            messages.push(format!(
                "task {} uses processors [{}, {}) beyond the machine",
                entry.task,
                entry.processors.first,
                entry.processors.end()
            ));
            continue;
        }
        if !(entry.start.is_finite() && entry.start >= -1e-12) {
            messages.push(format!(
                "task {} has invalid start time {}",
                entry.task, entry.start
            ));
        }
        let expected = instance.time(entry.task, entry.processors.count);
        if (expected - entry.duration).abs() > 1e-6 {
            messages.push(format!(
                "task {} records duration {} but its profile gives {expected}",
                entry.task, entry.duration
            ));
        }
        if entry.start < trace.arrivals()[entry.task].at - 1e-9 {
            messages.push(format!(
                "task {} starts at {} before its arrival at {}",
                entry.task,
                entry.start,
                trace.arrivals()[entry.task].at
            ));
        }
        for intervals in &mut per_processor[entry.processors.first..entry.processors.end()] {
            intervals.push((entry.start, entry.finish(), entry.task));
        }
    }

    for (task, &count) in seen.iter().enumerate() {
        if count == 0 {
            messages.push(format!("task {task} is not scheduled"));
        } else if count > 1 {
            messages.push(format!("task {task} is scheduled {count} times"));
        }
    }

    for (processor, intervals) in per_processor.iter_mut().enumerate() {
        intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
        for pair in intervals.windows(2) {
            let (_, finish, first_task) = pair[0];
            let (start, _, second_task) = pair[1];
            if start < finish - 1e-9 {
                messages.push(format!(
                    "tasks {first_task} and {second_task} overlap on processor {processor}"
                ));
            }
        }
    }

    messages
}

/// Offline-vs-online comparison for one run: the competitive-ratio surface
/// the benchmark suite tracks.
#[derive(Debug, Clone)]
pub struct CompetitiveReport {
    /// Makespan of the online run.
    pub online_makespan: f64,
    /// Makespan of the offline MRT scheduler on the same task set, all tasks
    /// released at time 0 (a clairvoyant √3-approximate baseline).
    pub offline_makespan: f64,
    /// Certified lower bound on the offline optimum (dual-search
    /// certificate); every online makespan is ≥ this value.
    pub certified_lower_bound: f64,
    /// Arrival time of the last task (no online schedule can beat it plus
    /// the task's best execution time).
    pub last_arrival: f64,
    /// `online_makespan / offline_makespan`.
    pub ratio_vs_offline: f64,
    /// `online_makespan / certified_lower_bound`.
    pub ratio_vs_lower_bound: f64,
}

/// Compare an online result against the offline MRT run on the same tasks.
pub fn competitive_report(
    trace: &ArrivalTrace,
    result: &OnlineResult,
) -> Result<CompetitiveReport> {
    let instance = trace.instance()?;
    let offline = malleable_core::mrt::schedule(&instance)?;
    let offline_makespan = offline.schedule.makespan();
    let lb = offline.certified_lower_bound;
    Ok(CompetitiveReport {
        online_makespan: result.makespan,
        offline_makespan,
        certified_lower_bound: lb,
        last_arrival: trace.last_arrival(),
        ratio_vs_offline: result.makespan / offline_makespan,
        ratio_vs_lower_bound: result.makespan / lb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{BatchUntilIdle, EpochReplan, GreedyList, PolicyKind};
    use workload::{Arrival, ArrivalPattern, ArrivalTrace, TraceConfig, WorkloadConfig};

    fn sequential_trace(times: &[(f64, f64)], processors: usize) -> ArrivalTrace {
        let arrivals = times
            .iter()
            .map(|&(at, duration)| Arrival {
                at,
                task: MalleableTask::new(SpeedupProfile::sequential(duration).unwrap()),
            })
            .collect();
        ArrivalTrace::new(processors, arrivals).unwrap()
    }

    fn poisson_trace(tasks: usize, processors: usize, rate: f64, seed: u64) -> ArrivalTrace {
        ArrivalTrace::generate(&TraceConfig {
            workload: WorkloadConfig::mixed(tasks, processors, seed),
            pattern: ArrivalPattern::Poisson { rate },
        })
        .unwrap()
    }

    #[test]
    fn greedy_schedules_each_arrival_immediately() {
        // Two unit tasks on two processors arriving together: both start on
        // arrival, in parallel.
        let trace = sequential_trace(&[(1.0, 2.0), (1.0, 2.0)], 2);
        let result = run(&trace, &mut GreedyList).unwrap();
        assert!((result.makespan - 3.0).abs() < 1e-9);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
        assert_eq!(result.replans, 2);
        assert!((result.mean_flow_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_policy_batches_on_the_grid() {
        // Arrivals at 0.2 and 0.4; epoch period 1.0 → both planned at t=1.
        let trace = sequential_trace(&[(0.2, 1.0), (0.4, 1.0)], 2);
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.replans, 1);
        // Both run in parallel starting at the epoch boundary.
        assert!((result.makespan - 2.0).abs() < 1e-9);
        for entry in result.schedule.entries() {
            assert!(entry.start >= 1.0 - 1e-9);
        }
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn batch_policy_waits_for_the_machine_to_drain() {
        // Task A arrives at 0 (runs 4s); B and C arrive at 1 and must wait
        // until A completes, then run as one batch.
        let trace = sequential_trace(&[(0.0, 4.0), (1.0, 1.0), (1.0, 1.0)], 2);
        let mut policy = BatchUntilIdle::default();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.replans, 2);
        let entries = result.schedule.entries();
        assert!((entries[0].start - 0.0).abs() < 1e-9);
        for entry in &entries[1..] {
            assert!((entry.start - 4.0).abs() < 1e-9, "batch starts when idle");
        }
        assert!((result.makespan - 5.0).abs() < 1e-9);
        assert!(validate_against_trace(&trace, &result.schedule).is_empty());
    }

    #[test]
    fn all_policies_produce_valid_schedules_on_random_traces() {
        let trace = poisson_trace(60, 8, 4.0, 17);
        let offline = malleable_core::mrt::schedule(&trace.instance().unwrap()).unwrap();
        let registry = solver::default_registry();
        for kind in [
            PolicyKind::Greedy,
            PolicyKind::Epoch {
                period: 1.0,
                solver: registry.get("mrt").unwrap(),
            },
            PolicyKind::Epoch {
                period: 0.5,
                solver: registry.get("ludwig").unwrap(),
            },
            PolicyKind::Batch {
                solver: registry.get("list").unwrap(),
            },
        ] {
            let mut policy = kind.build().unwrap();
            let result = run(&trace, policy.as_mut()).unwrap();
            let violations = validate_against_trace(&trace, &result.schedule);
            assert!(violations.is_empty(), "{}: {violations:?}", result.policy);
            // The sweep validator must agree with the simulator's strict
            // all-pairs validator.
            let report =
                simulator::validate_schedule(&trace.instance().unwrap(), &result.schedule, None);
            assert!(
                report.is_valid(),
                "{}: {:?}",
                result.policy,
                report.violations
            );
            // No online schedule can beat the certified offline lower bound.
            assert!(
                result.makespan >= offline.certified_lower_bound - 1e-9,
                "{} beat the offline lower bound",
                result.policy
            );
            assert_eq!(result.schedule.len(), trace.len());
        }
    }

    #[test]
    fn competitive_report_is_consistent() {
        let trace = poisson_trace(40, 8, 2.0, 3);
        let mut policy = EpochReplan::mrt(1.0).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        let report = competitive_report(&trace, &result).unwrap();
        assert!(report.ratio_vs_lower_bound >= 1.0 - 1e-9);
        assert!(report.ratio_vs_offline.is_finite());
        assert!(report.online_makespan >= report.certified_lower_bound - 1e-9);
        assert!(report.last_arrival > 0.0);
    }

    #[test]
    fn ticks_do_not_leak_beyond_the_horizon() {
        // A single arrival: the epoch policy must fire exactly one tick and
        // terminate (no unbounded tick chain).
        let trace = sequential_trace(&[(0.3, 1.0)], 1);
        let mut policy = EpochReplan::mrt(0.25).unwrap();
        let result = run(&trace, &mut policy).unwrap();
        assert_eq!(result.replans, 1);
        // arrival + one tick + one completion
        assert_eq!(result.events, 3);
        assert!((result.makespan - 1.5).abs() < 1e-9);
    }
}
