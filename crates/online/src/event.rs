//! The engine's event queue: a binary min-heap over timestamped events.
//!
//! Seven event kinds drive the engine: task arrivals, task completions, task
//! failures, task departures, processor crashes/repairs and epoch ticks.
//! Events at the same timestamp pop in a deterministic, documented order —
//! **arrival → completion → failure → departure → down → up → tick** — so
//! traces replay identically across runs:
//!
//! * *arrivals first*, so any planning round triggered at time `t` sees every
//!   task that is available at `t`;
//! * *completions before failures*, so a task finishing exactly when its
//!   injected fault would fire counts as completed, not failed;
//! * *failures before departures*, so the retry decision for a failed
//!   attempt is made before any same-instant deadline processing;
//! * *processor crashes and repairs after the task-level events*, so
//!   displacement acts on the settled task states, and *down before up*, so
//!   a zero-length outage is a crash followed by a repair, not the reverse;
//! * *epoch ticks last*, so a tick observes the fully updated machine state
//!   (simultaneous arrivals enqueued, finished tasks released, departed tasks
//!   withdrawn, capacity changes applied);
//! * ties beyond the kind are broken by insertion order.

use malleable_core::TaskId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Arrival `index` of the trace became available.
    Arrival(usize),
    /// A committed task finished (payload: its global task id).
    Completion(TaskId),
    /// An injected fault kills the current attempt of a task (fault runs
    /// only).  `generation` snapshots the task's commitment generation at
    /// scheduling time, so a failure aimed at a commitment that was since
    /// revoked or re-planned is recognised as stale and ignored.
    TaskFailure {
        /// Global id of the failing task.
        task: TaskId,
        /// Commitment generation the failure belongs to.
        generation: u64,
    },
    /// Arrival `index` departs: if the task has not started yet it leaves the
    /// system (its queued reservation, if any, is revoked); a running task is
    /// unaffected (non-preemptive execution).
    Departure(usize),
    /// The processor crashes and goes offline (fault runs only).
    ProcessorDown(usize),
    /// The processor is repaired and comes back online (fault runs only).
    ProcessorUp(usize),
    /// An epoch boundary of an epoch-driven policy.
    EpochTick,
}

impl EventKind {
    /// Rank applied among events with equal timestamps (see the module docs).
    fn rank(&self) -> u8 {
        match self {
            EventKind::Arrival(_) => 0,
            EventKind::Completion(_) => 1,
            EventKind::TaskFailure { .. } => 2,
            EventKind::Departure(_) => 3,
            EventKind::ProcessorDown(_) => 4,
            EventKind::ProcessorUp(_) => 5,
            EventKind::EpochTick => 6,
        }
    }
}

/// A timestamped event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// When the event fires.
    pub time: f64,
    /// What fires.
    pub kind: EventKind,
    /// Insertion sequence number (final tie-break).
    seq: u64,
}

impl Eq for Event {}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, the queue needs the earliest
        // event on top.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.kind.rank().cmp(&self.kind.rank()))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The min-heap of future events.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule an event.
    pub fn push(&mut self, time: f64, kind: EventKind) {
        assert!(time.is_finite() && time >= 0.0, "invalid event time {time}");
        self.heap.push(Event {
            time,
            kind,
            seq: self.next_seq,
        });
        self.next_seq += 1;
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Timestamp of the earliest event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.push(2.0, EventKind::Arrival(0));
        q.push(0.5, EventKind::Arrival(1));
        q.push(1.0, EventKind::Completion(7));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![0.5, 1.0, 2.0]);
    }

    #[test]
    fn equal_times_order_arrival_completion_failure_departure_down_up_tick() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::EpochTick);
        q.push(1.0, EventKind::ProcessorUp(2));
        q.push(1.0, EventKind::ProcessorDown(2));
        q.push(1.0, EventKind::Departure(4));
        q.push(
            1.0,
            EventKind::TaskFailure {
                task: 5,
                generation: 1,
            },
        );
        q.push(1.0, EventKind::Arrival(3));
        q.push(1.0, EventKind::Completion(9));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Arrival(3),
                EventKind::Completion(9),
                EventKind::TaskFailure {
                    task: 5,
                    generation: 1
                },
                EventKind::Departure(4),
                EventKind::ProcessorDown(2),
                EventKind::ProcessorUp(2),
                EventKind::EpochTick
            ]
        );
    }

    #[test]
    fn insertion_order_breaks_remaining_ties() {
        let mut q = EventQueue::new();
        q.push(1.0, EventKind::Arrival(0));
        q.push(1.0, EventKind::Arrival(1));
        q.push(1.0, EventKind::Arrival(2));
        let ids: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Arrival(i) => i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "invalid event time")]
    fn non_finite_times_are_rejected() {
        EventQueue::new().push(f64::NAN, EventKind::EpochTick);
    }
}
