//! # online
//!
//! An event-driven **online scheduling engine** for monotone malleable
//! tasks: tasks arrive over time (see [`workload::ArrivalTrace`]) and the
//! engine commits non-preemptive, contiguous placements as the trace
//! unfolds, re-using any offline solver behind the unified
//! `malleable_core::solver::Solver` trait as a planning oracle (resolve one
//! by name from the workspace `solver` crate's registry).
//!
//! The offline model of the paper (Mounié–Rapine–Trystram, SPAA 1999)
//! solves one fixed task set; a production scheduler instead faces a stream
//! of submissions.  The classical bridge is batch-mode scheduling: collect
//! what arrived, solve it offline, commit, repeat — each planning round
//! inherits the offline √3 guarantee on its own batch.  This crate
//! implements that bridge as an event loop with pluggable policies:
//!
//! * [`policy::GreedyList`] — immediate list scheduling on arrival;
//! * [`policy::EpochReplan`] — periodic offline re-planning with any
//!   registered solver (MRT, Ludwig two-phase, canonical list, …);
//! * [`policy::BatchUntilIdle`] — plan a whole batch whenever the machine
//!   drains.
//!
//! ## Quick start
//!
//! ```rust
//! use online::policy::EpochReplan;
//! use workload::{ArrivalPattern, ArrivalTrace, TraceConfig, WorkloadConfig};
//!
//! // 40 mixed tasks arriving as a Poisson stream on 8 processors.
//! let trace = ArrivalTrace::generate(&TraceConfig {
//!     workload: WorkloadConfig::mixed(40, 8, 7),
//!     pattern: ArrivalPattern::Poisson { rate: 4.0 },
//! })
//! .unwrap();
//!
//! // Re-plan with the offline √3 scheduler once per time unit.
//! let mut policy = EpochReplan::mrt(1.0).unwrap();
//! let result = online::run(&trace, &mut policy).unwrap();
//!
//! // The committed schedule is a plain offline schedule over all tasks …
//! assert!(online::validate_against_trace(&trace, &result.schedule).is_empty());
//! // … and can be compared against the clairvoyant offline run (the ratios
//! // are `None` only when every task departed before starting).
//! let report = online::competitive_report(&trace, &result).unwrap();
//! assert!(report.ratio_vs_lower_bound.unwrap() >= 1.0 - 1e-9);
//! ```
//!
//! ## Model and guarantees
//!
//! The machine is an **interval-reservation book**
//! ([`packing::reservations`]): every commitment is a revocable reservation,
//! and the clock never destroys idle holes.  Both *queued* and *running*
//! commitments are first-class citizens:
//!
//! * **departures** — arrivals may carry a `departs_at` deadline; a task
//!   that has not started by its deadline leaves the system, and its queued
//!   reservation (if any) is cancelled and the space reclaimed.  A task
//!   completing exactly at its deadline counts as completed, and a task
//!   that executed any work is immune to its deadline;
//! * **backfill** — with [`policy::PolicyOptions::backfill`] (CLI
//!   `--backfill`) placements first-fit into idle holes below the processor
//!   frontier instead of always queueing behind it;
//! * **preemptive re-allotment of queued work** — with
//!   [`policy::PolicyOptions::preempt_queued`] (CLI `--preempt-queued`) an
//!   epoch boundary revokes every not-yet-started commitment and re-solves
//!   it jointly with the new arrivals, so early placement mistakes are
//!   corrected while the machine state is still fluid;
//! * **mid-execution re-allotment of running tasks** — with
//!   [`policy::PolicyOptions::preempt_running`] (CLI `--preempt-running`)
//!   an epoch boundary with fresh work additionally *truncates* running
//!   commitments at the clock and re-solves their **residuals** (profiles
//!   scaled by the remaining work fraction, [`workload::residual`]) jointly
//!   with the pending set: the true malleable model, where a task's
//!   allotment may change while it runs.  Work executed at the old
//!   allotment is conserved by construction, and the output schedule
//!   records one segment per allotment
//!   (`simulator::validate_piecewise_subset` checks per-segment feasibility
//!   and per-task work conservation).
//!
//! By default all four are off and the engine reproduces the historical
//! frontier-only behaviour exactly (planning rounds keep the offline
//! schedule's allotments and priorities but replay them onto the live
//! processor frontier, so a batch interleaves with the tail of the previous
//! one instead of waiting behind a barrier).  The makespan of any run
//! without departures is at least the offline optimum of the full task set,
//! and the `ratio_vs_lower_bound` of [`CompetitiveReport`] measures the
//! price of online operation against the dual-search certificate (computed
//! over the executed task set when tasks departed; `None` when every task
//! departed — an empty subset has no baseline).
//!
//! ## Fault tolerance
//!
//! [`run_with_faults`] replays a trace under a deterministic
//! [`workload::FaultPlan`]: processor crashes take capacity offline and
//! displace the commitments using it (running work is conserved as
//! residuals, exactly like mid-execution re-allotment), per-attempt task
//! failures *lose* the attempt's work and retry under a capped exponential
//! backoff ([`workload::RetryPolicy`]) until abandoned, and
//! [`validate_fault_run`] checks the fault-specific invariants (no
//! executed or wasted segment overlaps another or any outage).  See
//! [`engine`]'s module docs for the full recovery semantics and
//! [`OnlineResult::goodput_fraction`] for the graceful-degradation figure.

pub mod engine;
pub mod event;
pub mod machine;
pub mod policy;
pub mod shard;
pub mod telemetry;

pub use engine::{
    competitive_report, queued_reallotment_scenario, run, run_recorded, run_with_faults,
    running_reallotment_scenario, validate_against_trace, validate_fault_run,
    validate_fault_run_classed, CompetitiveReport, OnlineResult,
};
pub use event::{Event, EventKind, EventQueue};
pub use machine::{MachineState, Placement, ReservationError, ReservationId};
pub use policy::{
    BatchUntilIdle, Commitment, EpochReplan, GreedyList, OnlinePolicy, PendingTask, PolicyKind,
    PolicyOptions, Trigger,
};
pub use shard::{
    run_sharded, run_sharded_stream, CollectingSink, NullSink, PlacementSink, ShardStats,
    ShardedConfig, ShardedResult, StreamedPlacement, TimedSolver,
};
pub use telemetry::{summarize, utilization_timeline, RunTelemetry, UtilizationSample};
