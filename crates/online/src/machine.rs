//! Incremental machine state: the committed frontier of every processor.
//!
//! The engine never revokes a commitment (non-preemptive model, like the
//! paper's), so the machine is fully described by a per-processor "busy
//! until" frontier — exactly the [`packing::ProcessorTimeline`] the offline
//! list algorithms use — plus the simulation clock and the number of
//! committed-but-unfinished tasks.  As the clock advances, the frontier of
//! idle processors is pulled up to *now*: the past cannot be scheduled into.
//!
//! The read-only accessors (`now`, `is_idle`, `unfinished`, `free_horizon`,
//! `earliest_start`) are the observability surface handed to
//! [`crate::policy::OnlinePolicy::should_plan`] implementations: the shipped
//! policies only need `is_idle`, but custom policies (e.g. "re-plan when the
//! backlog horizon exceeds a threshold") decide on the rest.

use packing::timeline::{ProcessorTimeline, TieBreak};

/// The machine as seen by an online policy at a decision point.
#[derive(Debug, Clone)]
pub struct MachineState {
    timeline: ProcessorTimeline,
    now: f64,
    unfinished: usize,
}

/// A placement chosen by [`MachineState::place_earliest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// First processor of the contiguous block.
    pub first: usize,
    /// Number of processors.
    pub count: usize,
    /// Start time (never before the current clock).
    pub start: f64,
}

impl MachineState {
    /// A fresh machine with `processors` idle processors at time 0.
    pub fn new(processors: usize) -> Self {
        MachineState {
            timeline: ProcessorTimeline::new(processors),
            now: 0.0,
            unfinished: 0,
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.timeline.processors()
    }

    /// The simulation clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Whether no committed task is still unfinished.
    pub fn is_idle(&self) -> bool {
        self.unfinished == 0
    }

    /// Number of committed-but-unfinished tasks.
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// The earliest time every current commitment is finished — the horizon
    /// after which the whole machine is free.
    pub fn free_horizon(&self) -> f64 {
        self.timeline.makespan().max(self.now)
    }

    /// Advance the clock (monotone).  Idle processors' frontiers are pulled
    /// up to the new time: schedules can never start in the past.
    pub fn advance_to(&mut self, time: f64) {
        assert!(
            time >= self.now - 1e-9,
            "clock must be monotone: now = {}, asked {time}",
            self.now
        );
        if time > self.now {
            self.now = time;
            self.timeline.advance_all_to(time);
        }
    }

    /// Earliest finish-time placement for a task needing `count` contiguous
    /// processors for `duration` time, committed immediately.
    pub fn place_earliest(&mut self, count: usize, duration: f64) -> Placement {
        let window = self
            .timeline
            .earliest_window(count, TieBreak::PaperConvention);
        self.timeline
            .commit(window.first, count, window.start, duration);
        self.unfinished += 1;
        Placement {
            first: window.first,
            count,
            start: window.start,
        }
    }

    /// The start time [`MachineState::place_earliest`] would choose for a
    /// `count`-processor task, without committing.
    pub fn earliest_start(&self, count: usize) -> f64 {
        self.timeline
            .earliest_window(count, TieBreak::PaperConvention)
            .start
    }

    /// Commit a task at an explicit position (used when mapping an offline
    /// shelf schedule onto the machine).  Panics if the placement would
    /// overlap an existing commitment or start in the past.
    pub fn commit_at(&mut self, first: usize, count: usize, start: f64, duration: f64) {
        assert!(
            start >= self.now - 1e-9,
            "commitment starts at {start}, before the clock {}",
            self.now
        );
        self.timeline.commit(first, count, start, duration);
        self.unfinished += 1;
    }

    /// Record the completion of one committed task.
    pub fn complete_one(&mut self) {
        assert!(self.unfinished > 0, "completion without a commitment");
        self.unfinished -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_blocks_the_past() {
        let mut machine = MachineState::new(4);
        machine.advance_to(2.0);
        assert_eq!(machine.now(), 2.0);
        let placement = machine.place_earliest(2, 1.0);
        assert!(placement.start >= 2.0);
        assert_eq!(machine.unfinished(), 1);
    }

    #[test]
    fn free_horizon_tracks_commitments() {
        let mut machine = MachineState::new(2);
        assert_eq!(machine.free_horizon(), 0.0);
        machine.commit_at(0, 2, 0.0, 3.0);
        assert_eq!(machine.free_horizon(), 3.0);
        machine.advance_to(1.0);
        assert_eq!(machine.free_horizon(), 3.0);
        machine.advance_to(5.0);
        assert_eq!(machine.free_horizon(), 5.0);
    }

    #[test]
    fn idle_flag_follows_completions() {
        let mut machine = MachineState::new(2);
        assert!(machine.is_idle());
        machine.place_earliest(1, 1.0);
        machine.place_earliest(1, 2.0);
        assert!(!machine.is_idle());
        machine.complete_one();
        assert!(!machine.is_idle());
        machine.complete_one();
        assert!(machine.is_idle());
    }

    #[test]
    #[should_panic(expected = "before the clock")]
    fn past_commitments_are_rejected() {
        let mut machine = MachineState::new(2);
        machine.advance_to(4.0);
        machine.commit_at(0, 1, 1.0, 1.0);
    }

    #[test]
    fn earliest_start_matches_place_earliest() {
        let mut machine = MachineState::new(3);
        machine.place_earliest(3, 2.0);
        let probe = machine.earliest_start(2);
        let placement = machine.place_earliest(2, 1.0);
        assert_eq!(probe, placement.start);
        assert_eq!(probe, 2.0);
    }
}
