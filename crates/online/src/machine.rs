//! Incremental machine state: the live reservation book of every processor.
//!
//! The machine is backed by an interval-reservation timeline
//! ([`packing::reservations::ReservationTimeline`]): every placement is a
//! first-class reservation identified by a revocable
//! [`ReservationId`] handle, and the clock ([`MachineState::advance_to`]) no
//! longer destroys idle holes.  Two resource models are offered:
//!
//! * **frontier mode** ([`MachineState::new`]) — placements start at or
//!   after the per-processor "busy until" frontier, idle holes below it are
//!   never reused.  This is exactly the schedule structure of the paper's §3
//!   list algorithms (the staircase idle areas of its Figure 2 are discarded
//!   on purpose) and the engine's historical behaviour.
//! * **backfill mode** ([`MachineState::with_backfill`]) — window queries
//!   are duration-aware and first-fit into existing holes below the
//!   frontier, the resource model of cloud-facing malleable schedulers.
//!
//! In both modes commitments *can* be revoked while still queued
//! ([`MachineState::revoke`]): task departures cancel reservations that have
//! not started, and preemptive epoch re-planning pulls queued reservations
//! back into the pending set.  Running commitments can additionally be
//! *preempted* ([`MachineState::truncate_at`]): the reservation is cut at
//! the current clock, the executed head stays on the books and the
//! unexecuted tail is freed — the machine-level primitive behind
//! mid-execution re-allotment of running tasks (the engine re-plans the
//! task's residual as a fresh commitment).
//!
//! The read-only accessors (`now`, `is_idle`, `unfinished`, `free_horizon`,
//! `earliest_start`) are the observability surface handed to
//! [`crate::policy::OnlinePolicy::should_plan`] implementations: the shipped
//! policies only need `is_idle`, but custom policies (e.g. "re-plan when the
//! backlog horizon exceeds a threshold") decide on the rest.

use packing::reservations::{HolePolicy, ReservationTimeline};
use packing::timeline::TieBreak;

pub use packing::reservations::{ReservationError, ReservationId};

/// The machine as seen by an online policy at a decision point.
#[derive(Debug, Clone)]
pub struct MachineState {
    timeline: ReservationTimeline,
    now: f64,
    unfinished: usize,
}

/// A placement chosen by [`MachineState::place_earliest`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// First processor of the contiguous block.
    pub first: usize,
    /// Number of processors.
    pub count: usize,
    /// Start time (never before the current clock).
    pub start: f64,
    /// Handle for revoking the commitment while it is still queued.
    pub reservation: ReservationId,
}

impl MachineState {
    /// A fresh frontier-mode machine with `processors` idle processors at
    /// time 0 (holes below the frontier are never reused).
    pub fn new(processors: usize) -> Self {
        Self::with_policy(processors, HolePolicy::FrontierOnly)
    }

    /// A fresh backfill-mode machine: placements first-fit into idle holes
    /// below the frontier.
    pub fn with_backfill(processors: usize) -> Self {
        Self::with_policy(processors, HolePolicy::Backfill)
    }

    /// A fresh machine with an explicit hole policy.
    pub fn with_policy(processors: usize, policy: HolePolicy) -> Self {
        MachineState {
            timeline: ReservationTimeline::new(processors, policy),
            now: 0.0,
            unfinished: 0,
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.timeline.processors()
    }

    /// Whether placements may backfill into holes below the frontier.
    pub fn backfills(&self) -> bool {
        self.timeline.policy() == HolePolicy::Backfill
    }

    /// The simulation clock.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Whether no committed task is still unfinished.
    pub fn is_idle(&self) -> bool {
        self.unfinished == 0
    }

    /// Number of committed-but-unfinished tasks.
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// Operation counters of the underlying reservation timeline (window
    /// queries, hole-scan steps, reservations, cancels, truncations) — the
    /// engine diffs snapshots to attribute work to individual decisions.
    pub fn timeline_stats(&self) -> packing::reservations::TimelineStats {
        self.timeline.stats()
    }

    /// The earliest time every current commitment is finished — the horizon
    /// after which the whole machine is free.
    pub fn free_horizon(&self) -> f64 {
        self.timeline.makespan().max(self.now)
    }

    /// Advance the clock (monotone).  Schedules can never start in the past;
    /// in frontier mode idle processors' frontiers are pulled up to the new
    /// time, in backfill mode holes after the new time stay usable.
    pub fn advance_to(&mut self, time: f64) {
        assert!(
            time >= self.now - 1e-9,
            "clock must be monotone: now = {}, asked {time}",
            self.now
        );
        if time > self.now {
            self.now = time;
            self.timeline.advance_to(time);
        }
    }

    /// Earliest finish-time placement for a task needing `count` contiguous
    /// processors for `duration` time, committed immediately.
    pub fn place_earliest(&mut self, count: usize, duration: f64) -> Placement {
        let window = self
            .timeline
            .earliest_window(count, duration, TieBreak::PaperConvention);
        let reservation = self
            .timeline
            .reserve(window.first, count, window.start, duration);
        self.unfinished += 1;
        Placement {
            first: window.first,
            count,
            start: window.start,
            reservation,
        }
    }

    /// The start time [`MachineState::place_earliest`] would choose for a
    /// `count`-processor, `duration`-long task, without committing.
    pub fn earliest_start(&self, count: usize, duration: f64) -> f64 {
        self.timeline
            .earliest_window(count, duration, TieBreak::PaperConvention)
            .start
    }

    /// Commit a task at an explicit position (used when mapping an offline
    /// shelf schedule onto the machine).  Panics if the placement would
    /// overlap an existing commitment or start in the past.
    pub fn commit_at(
        &mut self,
        first: usize,
        count: usize,
        start: f64,
        duration: f64,
    ) -> ReservationId {
        assert!(
            start >= self.now - 1e-9,
            "commitment starts at {start}, before the clock {}",
            self.now
        );
        let reservation = self.timeline.reserve(first, count, start, duration);
        self.unfinished += 1;
        reservation
    }

    /// Revoke a commitment that has not started yet, freeing its space.
    /// Fails with a typed [`ReservationError`] if the reservation is running
    /// or finished (revoke a running commitment's unexecuted tail with
    /// [`MachineState::truncate_at`] instead) or was already revoked; a
    /// failed request leaves the machine untouched.
    pub fn revoke(&mut self, reservation: ReservationId) -> Result<(), ReservationError> {
        self.timeline.cancel(reservation)?;
        assert!(self.unfinished > 0, "revocation without a commitment");
        self.unfinished -= 1;
        Ok(())
    }

    /// Preempt a *running* commitment: truncate its reservation at `time`
    /// (usually the current clock), freeing the unexecuted tail while the
    /// executed head stays on the books.  When a tail was actually freed
    /// (`Ok(true)`) the commitment no longer counts as unfinished — the
    /// caller re-plans the task's residual as a fresh commitment.  A cut at
    /// or after the commitment's end is a no-op (`Ok(false)`): the
    /// commitment stands and still completes normally.  Fails with a typed
    /// [`ReservationError`] when the cut would rewrite executed history (see
    /// [`packing::reservations::ReservationTimeline::truncate_at`]).
    pub fn truncate_at(
        &mut self,
        reservation: ReservationId,
        time: f64,
    ) -> Result<bool, ReservationError> {
        let truncated = self.timeline.truncate_at(reservation, time)?;
        if truncated {
            assert!(self.unfinished > 0, "truncation without a commitment");
            self.unfinished -= 1;
        }
        Ok(truncated)
    }

    /// Record the completion of one committed task.
    pub fn complete_one(&mut self) {
        assert!(self.unfinished > 0, "completion without a commitment");
        self.unfinished -= 1;
    }

    /// Whether one processor is currently online.
    pub fn is_online(&self, processor: usize) -> bool {
        self.timeline.is_online(processor)
    }

    /// Number of currently online processors.
    pub fn online_processors(&self) -> usize {
        self.timeline.online_processors()
    }

    /// Width of the largest run of consecutive online processors — the
    /// widest placement the machine can currently serve.  Equals
    /// [`MachineState::processors`] while nothing is offline.
    pub fn max_contiguous_online(&self) -> usize {
        self.timeline.max_contiguous_online()
    }

    /// Take `processor` offline as of `from` (a crash).  Every commitment
    /// still using it beyond `from` is displaced — queued reservations are
    /// cancelled whole, running ones are truncated at `from` so the executed
    /// head stays on the books — and no longer counts as unfinished.
    /// Returns the displaced reservation handles for the caller to
    /// re-queue, or the timeline's typed error when a displaced record is
    /// inconsistent (in which case the machine is left as the timeline left
    /// it and the engine reports the violation).
    pub fn set_offline(
        &mut self,
        processor: usize,
        from: f64,
    ) -> Result<Vec<ReservationId>, ReservationError> {
        let displaced = self.timeline.set_offline(processor, from)?;
        for _ in &displaced {
            assert!(self.unfinished > 0, "displacement without a commitment");
            self.unfinished -= 1;
        }
        Ok(displaced)
    }

    /// Bring `processor` back online as of `at` (a repair); placements may
    /// use it from `at` on.
    pub fn set_online(&mut self, processor: usize, at: f64) {
        self.timeline.set_online(processor, at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_and_blocks_the_past() {
        let mut machine = MachineState::new(4);
        machine.advance_to(2.0);
        assert_eq!(machine.now(), 2.0);
        let placement = machine.place_earliest(2, 1.0);
        assert!(placement.start >= 2.0);
        assert_eq!(machine.unfinished(), 1);
    }

    #[test]
    fn free_horizon_tracks_commitments() {
        let mut machine = MachineState::new(2);
        assert_eq!(machine.free_horizon(), 0.0);
        machine.commit_at(0, 2, 0.0, 3.0);
        assert_eq!(machine.free_horizon(), 3.0);
        machine.advance_to(1.0);
        assert_eq!(machine.free_horizon(), 3.0);
        machine.advance_to(5.0);
        assert_eq!(machine.free_horizon(), 5.0);
    }

    #[test]
    fn idle_flag_follows_completions() {
        let mut machine = MachineState::new(2);
        assert!(machine.is_idle());
        machine.place_earliest(1, 1.0);
        machine.place_earliest(1, 2.0);
        assert!(!machine.is_idle());
        machine.complete_one();
        assert!(!machine.is_idle());
        machine.complete_one();
        assert!(machine.is_idle());
    }

    #[test]
    #[should_panic(expected = "before the clock")]
    fn past_commitments_are_rejected() {
        let mut machine = MachineState::new(2);
        machine.advance_to(4.0);
        machine.commit_at(0, 1, 1.0, 1.0);
    }

    #[test]
    fn earliest_start_matches_place_earliest() {
        let mut machine = MachineState::new(3);
        machine.place_earliest(3, 2.0);
        let probe = machine.earliest_start(2, 1.0);
        let placement = machine.place_earliest(2, 1.0);
        assert_eq!(probe, placement.start);
        assert_eq!(probe, 2.0);
    }

    #[test]
    fn frontier_mode_hides_holes_backfill_mode_reuses_them() {
        // A long 1-wide task plus a short 2-wide one leave a hole on one
        // processor; a subsequent 1-unit task lands in the hole only with
        // backfill enabled.
        let build = |backfill: bool| {
            let mut machine = if backfill {
                MachineState::with_backfill(2)
            } else {
                MachineState::new(2)
            };
            machine.commit_at(0, 1, 0.0, 4.0);
            machine.commit_at(1, 1, 0.0, 1.0);
            machine.commit_at(1, 1, 3.0, 2.0); // hole on p1 over [1, 3)
            machine.place_earliest(1, 1.0)
        };
        let frontier = build(false);
        assert!(frontier.start >= 4.0 - 1e-9, "frontier mode must wait");
        let backfill = build(true);
        assert_eq!((backfill.first, backfill.start), (1, 1.0));
    }

    #[test]
    fn revoked_commitments_free_their_space() {
        let mut machine = MachineState::new(2);
        machine.commit_at(0, 2, 0.0, 1.0);
        let queued = machine.commit_at(0, 2, 1.0, 5.0);
        assert_eq!(machine.free_horizon(), 6.0);
        assert_eq!(machine.unfinished(), 2);
        machine.revoke(queued).unwrap();
        assert_eq!(machine.free_horizon(), 1.0);
        assert_eq!(machine.unfinished(), 1);
        let placement = machine.place_earliest(2, 1.0);
        assert_eq!(placement.start, 1.0, "the revoked space is reusable");
    }

    #[test]
    fn running_commitments_cannot_be_revoked_but_can_be_truncated() {
        let mut machine = MachineState::new(1);
        let id = machine.commit_at(0, 1, 0.0, 4.0);
        machine.advance_to(2.0);
        assert!(matches!(
            machine.revoke(id),
            Err(ReservationError::StartedBeforeFloor { .. })
        ));
        assert_eq!(machine.unfinished(), 1, "failed revoke must not mutate");
        // A cut at or after the end is a no-op: the commitment stands and
        // still counts as unfinished.
        assert!(!machine.truncate_at(id, 5.0).unwrap());
        assert_eq!(machine.unfinished(), 1, "no-op cut must not mutate");
        // Mid-execution preemption: the tail [2, 4) is freed, the head stays.
        assert!(machine.truncate_at(id, 2.0).unwrap());
        assert_eq!(machine.unfinished(), 0);
        assert_eq!(machine.free_horizon(), 2.0);
        let placement = machine.place_earliest(1, 1.0);
        assert_eq!(placement.start, 2.0, "the freed tail is reusable");
    }

    #[test]
    fn advance_preserves_holes_in_backfill_mode() {
        let mut machine = MachineState::with_backfill(1);
        machine.commit_at(0, 1, 5.0, 1.0);
        machine.advance_to(2.0);
        // The hole [2, 5) survives the clock advance.
        let placement = machine.place_earliest(1, 2.0);
        assert_eq!(placement.start, 2.0);
    }
}
