//! Pluggable online scheduling policies.
//!
//! A policy answers two questions for the engine: *when* should the pending
//! queue be planned (in reaction to which events), and *how* are the pending
//! tasks mapped onto the machine.  Three policies are provided:
//!
//! * [`GreedyList`] — plan every task the moment it arrives, at the
//!   processor count minimising its completion time on the current frontier
//!   (the online analogue of the §3 list algorithms);
//! * [`EpochReplan`] — collect arrivals and re-plan on a fixed epoch grid by
//!   invoking an offline solver on the whole pending set, committing its
//!   shelf schedule after the machine's free horizon;
//! * [`BatchUntilIdle`] — collect arrivals while the machine is busy and
//!   plan the whole batch the instant it drains (the classical batch-mode
//!   online-to-offline reduction, as in Shmoys–Wein–Williamson).
//!
//! The offline-driven policies hold a [`SolverHandle`] — any implementation
//! of the unified `malleable_core::solver::Solver` trait, typically resolved
//! by name from the workspace `solver` crate's registry.  The policy adapts
//! to the solver's capabilities: when the solver supports warm starts, the
//! probe workspace and the previous epoch's accepted guess are threaded into
//! every solve.
//!
//! Three cross-cutting resource-model capabilities ride on every policy (see
//! [`PolicyOptions`]): **backfill** switches the machine to the
//! interval-reservation model so placements first-fit into idle holes below
//! the frontier; **preempt-queued** (epoch policies) makes the engine
//! revoke not-yet-started commitments at every epoch boundary and re-solve
//! them jointly with the new arrivals; and **preempt-running** (epoch
//! policies) additionally truncates *running* commitments at the boundary —
//! the executed segment stays on the books and the task re-enters the
//! pending set as a residual ([`workload::residual`]), so the solver may
//! shrink, widen or move the unexecuted tail.  True malleable re-allotment
//! mid-execution, with work conserved under the speed-up model.

use std::sync::Arc;

use crate::machine::{MachineState, ReservationId};
use ::telemetry::{names, SharedRecorder};
use malleable_core::prelude::*;

/// A task waiting in the pending queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingTask {
    /// Global task id (= arrival index of the trace).
    pub id: TaskId,
    /// When the task arrived.
    pub arrived_at: f64,
    /// Fraction of the task's work still unexecuted: `1.0` for a fresh
    /// arrival, less for a *residual* — a running task preempted
    /// mid-execution and handed back for re-allotment.  Policies plan the
    /// residual task (the profile scaled by this fraction, see
    /// [`workload::residual`]), so work executed at the old allotment is
    /// conserved.
    pub remaining: f64,
}

impl PendingTask {
    /// A fresh (fully unexecuted) pending task.
    pub fn new(id: TaskId, arrived_at: f64) -> Self {
        PendingTask {
            id,
            arrived_at,
            remaining: 1.0,
        }
    }
}

/// One scheduling decision: a task pinned to a processor block and a start
/// time.  A commitment is revocable while it is still queued (the engine
/// revokes on task departures and, under preemptive re-planning, at epoch
/// boundaries); once the task has started it runs to completion unless the
/// policy opts into mid-execution re-allotment
/// ([`OnlinePolicy::preempt_running`]), in which case an epoch boundary may
/// truncate the commitment and re-plan the task's residual.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Commitment {
    /// Global task id.
    pub task: TaskId,
    /// Start time on the global timeline.
    pub start: f64,
    /// Execution time at the committed processor count.
    pub duration: f64,
    /// First processor of the contiguous block.
    pub first: usize,
    /// Number of processors.
    pub count: usize,
    /// Handle for revoking the commitment while it is still queued.
    pub reservation: ReservationId,
}

/// The event class that triggered a planning opportunity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// A task arrived.
    Arrival,
    /// A committed task finished.
    Completion,
    /// A task departed (withdrawn from the pending queue or revoked while
    /// still queued).
    Departure,
    /// A fault event fired (a task attempt failed, a processor crashed and
    /// displaced work, or a processor was repaired) — fault runs only.
    /// Immediate policies treat it like an arrival so displaced work is
    /// re-placed at once; epoch policies wait for the next tick.
    Fault,
    /// An epoch boundary fired.
    EpochTick,
}

/// An online scheduling policy.
///
/// The engine calls [`OnlinePolicy::should_plan`] after every event; when it
/// returns `true` (and tasks are pending) it calls [`OnlinePolicy::plan`],
/// which commits the pending tasks into the machine and returns the
/// commitments for the engine to record.
pub trait OnlinePolicy {
    /// Human-readable name used in reports.
    fn name(&self) -> String;

    /// Epoch period, for policies driven by a periodic tick.
    fn epoch(&self) -> Option<f64> {
        None
    }

    /// Whether the engine should run the machine in backfill mode: new
    /// placements first-fit into idle holes below the processor frontier
    /// instead of always waiting for it.  Defaults to the frontier-only
    /// model of the paper's list schedules.
    fn backfill(&self) -> bool {
        false
    }

    /// Whether the engine should, at every epoch tick, revoke commitments
    /// that have not started yet and hand their tasks back to this policy as
    /// part of the pending set (preemptive re-allotment of *queued* work).
    fn preempt_queued(&self) -> bool {
        false
    }

    /// Whether the engine should, at every epoch tick with fresh work,
    /// additionally truncate *running* commitments at the clock and hand
    /// their tasks back as residuals — mid-execution re-allotment: the
    /// executed segment stays on the books, the unexecuted tail (profile
    /// scaled by the remaining work fraction) is re-solved jointly with the
    /// pending set and may restart at a different allotment.  Implies the
    /// queued preemption of [`OnlinePolicy::preempt_queued`].
    fn preempt_running(&self) -> bool {
        false
    }

    /// Whether the engine should apply *structural delta-planning* at epoch
    /// boundaries: when an epoch added only new arrivals since the previous
    /// plan (no departures, no faults), skip the preemptive
    /// revocation/truncation pass and plan just the fresh arrivals against
    /// the surviving schedule.  Epochs that saw structural changes fall back
    /// to the full preemptive re-solve.  Only meaningful together with
    /// [`OnlinePolicy::preempt_queued`]/[`OnlinePolicy::preempt_running`];
    /// off by default.
    fn delta_planning(&self) -> bool {
        false
    }

    /// Whether the pending queue should be planned in reaction to `trigger`.
    fn should_plan(&self, trigger: Trigger, machine: &MachineState) -> bool;

    /// Plan (and commit) every pending task.  Implementations must commit
    /// each returned placement into `machine` and never start a task before
    /// `machine.now()` or before its arrival.
    fn plan(
        &mut self,
        instance: &Instance,
        pending: &[PendingTask],
        machine: &mut MachineState,
    ) -> Result<Vec<Commitment>>;

    /// Attach a telemetry recorder.  Policies with an inner solve pipeline
    /// ([`EpochReplan`]) feed it probe and workspace counters; the default
    /// implementation ignores the handle.
    fn set_recorder(&mut self, recorder: SharedRecorder) {
        let _ = recorder;
    }

    /// Registry name of the offline solver behind this policy — the
    /// telemetry identity stamped on solve-span events.  Policies without an
    /// inner solver report their own name.
    fn solver_name(&self) -> String {
        self.name()
    }

    /// Whether the *next* solve will be seeded from cross-epoch warm state
    /// (telemetry only; `false` for policies without warm starts).
    fn warm_start(&self) -> bool {
        false
    }

    /// Cumulative oracle probes issued by this policy's solves so far
    /// (0 for probe-free policies).  The engine diffs consecutive values to
    /// attribute probes to individual solve spans.
    fn probes_issued(&self) -> usize {
        0
    }
}

/// Build the offline sub-instance of the pending tasks, as if released
/// together on an empty machine.  Residual tasks (preempted mid-execution,
/// `remaining < 1`) enter with their profile scaled by the remaining work
/// fraction, so the solver sees exactly the unexecuted tails.
fn pending_sub_instance(
    instance: &Instance,
    pending: &[PendingTask],
    processors: usize,
) -> Result<Instance> {
    let tasks: Vec<MalleableTask> = pending
        .iter()
        .map(|p| workload::residual_task(instance.task(p.id), p.remaining))
        .collect::<Result<_>>()?;
    Instance::new(tasks, processors)
}

/// Replay an offline schedule of the pending sub-instance onto the live
/// machine frontier, preserving the offline processor counts and priorities.
///
/// The offline schedule assumes an empty machine, so its placements cannot be
/// committed verbatim while earlier commitments are still running.  Instead
/// of a barrier shift past the free horizon (which idles the whole machine
/// between planning rounds), each task keeps its offline *processor count*
/// and *priority* and is list-scheduled onto the earliest contiguous window —
/// the same engine the offline list algorithms use, so the replay is
/// work-conserving with respect to the frontier and exactly reproduces the
/// offline schedule when the machine is empty.
fn replay_offline(
    offline: &Schedule,
    pending: &[PendingTask],
    machine: &mut MachineState,
) -> Vec<Commitment> {
    let mut entries: Vec<&ScheduledTask> = offline.entries().iter().collect();
    // Replay in offline start order (ties: wider tasks first, then task id,
    // for determinism), the priority the offline schedule chose.
    entries.sort_by(|a, b| {
        a.start
            .total_cmp(&b.start)
            .then(b.processors.count.cmp(&a.processors.count))
            .then(a.task.cmp(&b.task))
    });
    let mut commitments = Vec::with_capacity(entries.len());
    for entry in entries {
        let placement = machine.place_earliest(entry.processors.count, entry.duration);
        commitments.push(Commitment {
            task: pending[entry.task].id,
            start: placement.start,
            duration: entry.duration,
            first: placement.first,
            count: entry.processors.count,
            reservation: placement.reservation,
        });
    }
    commitments
}

/// Immediate list scheduling: every arrival is planned on the spot at the
/// processor count minimising its completion time on the current machine
/// state (the frontier, or with [`GreedyList::backfilling`] the earliest
/// fitting hole).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyList {
    /// First-fit new arrivals into idle holes below the frontier.
    pub backfill: bool,
}

impl GreedyList {
    /// The classical frontier-only greedy list policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A greedy list policy that backfills into idle holes.
    pub fn backfilling() -> Self {
        GreedyList { backfill: true }
    }
}

impl OnlinePolicy for GreedyList {
    fn name(&self) -> String {
        if self.backfill {
            "greedy-list+backfill".to_string()
        } else {
            "greedy-list".to_string()
        }
    }

    fn backfill(&self) -> bool {
        self.backfill
    }

    fn should_plan(&self, trigger: Trigger, _machine: &MachineState) -> bool {
        matches!(trigger, Trigger::Arrival | Trigger::Fault)
    }

    fn plan(
        &mut self,
        instance: &Instance,
        pending: &[PendingTask],
        machine: &mut MachineState,
    ) -> Result<Vec<Commitment>> {
        let mut commitments = Vec::with_capacity(pending.len());
        for task in pending {
            // Residual-aware: a preempted task is planned as its unexecuted
            // tail (greedy policies never produce residuals themselves, but
            // the `plan` contract accepts them).  Fresh tasks — the entire
            // greedy hot path — borrow their profile without cloning.
            let residual;
            let profile = if task.remaining < 1.0 {
                residual = workload::residual_task(instance.task(task.id), task.remaining)?;
                &residual.profile
            } else {
                &instance.task(task.id).profile
            };
            // Clamp to the widest contiguous *online* block so crashes never
            // leave a width with no feasible window.
            let widest = profile
                .max_processors()
                .min(machine.max_contiguous_online().max(1));
            // Minimise the completion time over all processor counts; prefer
            // the narrower count on ties (it wastes less work).
            let mut best = (1usize, f64::INFINITY);
            for count in 1..=widest {
                let finish =
                    machine.earliest_start(count, profile.time(count)) + profile.time(count);
                if finish < best.1 - 1e-12 {
                    best = (count, finish);
                }
            }
            let (count, _) = best;
            let placement = machine.place_earliest(count, profile.time(count));
            commitments.push(Commitment {
                task: task.id,
                start: placement.start,
                duration: profile.time(count),
                first: placement.first,
                count,
                reservation: placement.reservation,
            });
        }
        Ok(commitments)
    }
}

/// Periodic re-planning: pending tasks are batched and solved offline on a
/// fixed epoch grid.
///
/// The policy is generic over the offline solver: any [`SolverHandle`] works.
/// When the solver's [`SolverCapabilities::supports_warm_start`] is set (the
/// MRT dual search), the policy keeps state between epochs — the probe
/// workspace (canonical-allotment cache, packing scratch, knapsack DP tables)
/// survives across solves, and the next epoch's search interval is seeded
/// from the previous epoch's accepted guess (scaled to the new pending set's
/// lower bound).  Per-epoch cost drops from a full cold solve to an
/// incremental warm-started one.
#[derive(Clone)]
pub struct EpochReplan {
    /// Distance between epoch boundaries.
    pub period: f64,
    /// The offline solver invoked on every epoch's pending set.
    pub solver: SolverHandle,
    /// Search mode of warm-start-capable solvers (breakpoint-exact by
    /// default; ignored by one-shot constructions).
    pub search: SearchMode,
    /// Keep the probe workspace and the interval hint across epochs
    /// (default).  Off, every epoch solves cold — the pre-warm-start
    /// behaviour, kept as the benchmark baseline.
    pub warm_start: bool,
    /// Run the machine in backfill mode: replayed shelf schedules first-fit
    /// into idle holes below the frontier.
    pub backfill: bool,
    /// Revoke queued (not yet started) commitments at every epoch boundary
    /// and re-solve them together with the new arrivals.  Running tasks stay
    /// committed unless [`EpochReplan::preempt_running`] is also set.
    pub preempt_queued: bool,
    /// Truncate *running* commitments at epoch boundaries with fresh work
    /// and re-solve their residuals (profiles scaled by the remaining work
    /// fraction) jointly with the pending set — true malleable
    /// re-allotment mid-execution.  Implies the queued preemption of
    /// [`EpochReplan::preempt_queued`].
    pub preempt_running: bool,
    /// Structural delta-planning: epochs that added only new arrivals plan
    /// them against the surviving schedule instead of revoking and
    /// re-solving the whole backlog; departures and faults force the full
    /// preemptive re-solve.  Meaningful only with one of the preemption
    /// flags set.
    pub delta_plan: bool,
    /// Probe workspace kept across epochs (the warm state).
    workspace: ProbeWorkspace,
    /// `feasible ω / lower bound` of the previous epoch's solve, used to seed
    /// the next search interval.
    previous_omega_ratio: Option<f64>,
    /// Optional telemetry sink: per-solve probe and workspace-growth counter
    /// deltas flow through it (see [`telemetry::names::WORKSPACE_PROBES`]).
    recorder: Option<SharedRecorder>,
}

impl std::fmt::Debug for EpochReplan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochReplan")
            .field("period", &self.period)
            .field("solver", &self.solver.name())
            .field("search", &self.search)
            .field("warm_start", &self.warm_start)
            .field("backfill", &self.backfill)
            .field("preempt_queued", &self.preempt_queued)
            .field("preempt_running", &self.preempt_running)
            .field("delta_plan", &self.delta_plan)
            .finish()
    }
}

impl EpochReplan {
    /// An epoch policy with the given period, solving with the MRT scheduler.
    pub fn mrt(period: f64) -> Result<Self> {
        Self::with_solver(period, Arc::new(MrtSolver))
    }

    /// Same, with an explicit solver handle (resolve one by name through the
    /// workspace `solver` crate's registry).
    pub fn with_solver(period: f64, solver: SolverHandle) -> Result<Self> {
        if !(period.is_finite() && period > 0.0) {
            return Err(Error::InvalidParameter {
                name: "epoch",
                value: period,
            });
        }
        Ok(EpochReplan {
            period,
            solver,
            search: SearchMode::Exact,
            warm_start: true,
            backfill: false,
            preempt_queued: false,
            preempt_running: false,
            delta_plan: false,
            workspace: ProbeWorkspace::new(),
            previous_omega_ratio: None,
            recorder: None,
        })
    }

    /// Select the search mode of warm-start-capable solvers (builder style).
    pub fn with_search(mut self, search: SearchMode) -> Self {
        self.search = search;
        self
    }

    /// Enable or disable the cross-epoch warm start (builder style).
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Enable or disable backfilling into idle holes (builder style).
    pub fn with_backfill(mut self, backfill: bool) -> Self {
        self.backfill = backfill;
        self
    }

    /// Enable or disable preemptive re-planning of queued commitments at
    /// epoch boundaries (builder style).
    pub fn with_preempt_queued(mut self, preempt_queued: bool) -> Self {
        self.preempt_queued = preempt_queued;
        self
    }

    /// Enable or disable mid-execution re-allotment of running tasks at
    /// epoch boundaries (builder style).  Implies queued preemption.
    pub fn with_preempt_running(mut self, preempt_running: bool) -> Self {
        self.preempt_running = preempt_running;
        self
    }

    /// Enable or disable structural delta-planning at epoch boundaries
    /// (builder style); see [`OnlinePolicy::delta_planning`].
    pub fn with_delta_planning(mut self, delta_plan: bool) -> Self {
        self.delta_plan = delta_plan;
        self
    }

    /// Attach a telemetry recorder (builder style); see
    /// [`OnlinePolicy::set_recorder`].
    pub fn with_recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Number of oracle probes served by the warm-started solve path so far
    /// (0 for one-shot solvers); exposed for the benchmark reports.
    pub fn probes(&self) -> usize {
        self.workspace.probes()
    }
}

impl OnlinePolicy for EpochReplan {
    fn name(&self) -> String {
        let mut name = format!("epoch-{}(d={})", self.solver.name(), self.period);
        if self.backfill {
            name.push_str("+backfill");
        }
        if self.preempt_running {
            name.push_str("+preempt-running");
        } else if self.preempt_queued {
            name.push_str("+preempt");
        }
        if self.delta_plan {
            name.push_str("+delta");
        }
        name
    }

    fn epoch(&self) -> Option<f64> {
        Some(self.period)
    }

    fn backfill(&self) -> bool {
        self.backfill
    }

    fn preempt_queued(&self) -> bool {
        self.preempt_queued
    }

    fn preempt_running(&self) -> bool {
        self.preempt_running
    }

    fn delta_planning(&self) -> bool {
        self.delta_plan
    }

    fn should_plan(&self, trigger: Trigger, _machine: &MachineState) -> bool {
        trigger == Trigger::EpochTick
    }

    fn plan(
        &mut self,
        instance: &Instance,
        pending: &[PendingTask],
        machine: &mut MachineState,
    ) -> Result<Vec<Commitment>> {
        let counters_before = (self.workspace.probes(), self.workspace.grow_events());
        // Plan against the widest contiguous online block: during an outage
        // the offline oracle must not allot more processors than any window
        // the machine can actually serve.
        let capacity = machine.max_contiguous_online().max(1);
        let sub_instance = pending_sub_instance(instance, pending, capacity)?;
        let mut request = SolveRequest::new(&sub_instance).with_mode(self.search);
        // Seed the upper end slightly above the previous epoch's accepted
        // guess, rescaled to the new pending set.  An over-optimistic seed
        // only costs the doubling probes needed to climb back.  The static
        // lower bound is only computed when the solver can use the seed.
        let mut static_lb = 0.0;
        if self.warm_start && self.solver.capabilities().supports_warm_start {
            static_lb = malleable_core::bounds::lower_bound(&sub_instance);
            if static_lb > 0.0 {
                request.warm_start_hint = self.previous_omega_ratio.map(|r| r * static_lb * 1.05);
            }
        }
        if !self.warm_start {
            self.workspace.clear();
        }
        let outcome = self
            .solver
            .solve_with_workspace(&request, &mut self.workspace)?;
        if let Some(omega) = outcome.feasible_omega {
            if static_lb > 0.0 {
                self.previous_omega_ratio = Some(omega / static_lb);
            }
        }
        if let Some(recorder) = &self.recorder {
            // `ProbeWorkspace` counters are cumulative (they survive
            // `clear()`), so per-solve deltas are plain differences.
            recorder.add(
                names::WORKSPACE_PROBES,
                (self.workspace.probes() - counters_before.0) as u64,
            );
            recorder.add(
                names::WORKSPACE_GROW_EVENTS,
                (self.workspace.grow_events() - counters_before.1) as u64,
            );
        }
        Ok(replay_offline(&outcome.schedule, pending, machine))
    }

    fn set_recorder(&mut self, recorder: SharedRecorder) {
        self.recorder = Some(recorder);
    }

    fn solver_name(&self) -> String {
        self.solver.name().to_string()
    }

    fn warm_start(&self) -> bool {
        self.warm_start
            && self.solver.capabilities().supports_warm_start
            && self.previous_omega_ratio.is_some()
    }

    fn probes_issued(&self) -> usize {
        self.workspace.probes()
    }
}

/// Batch-mode scheduling: wait until the machine drains, then plan the whole
/// accumulated batch offline.
#[derive(Clone)]
pub struct BatchUntilIdle {
    /// The offline solver invoked on every batch.
    pub solver: SolverHandle,
    /// Run the machine in backfill mode (holes left by one batch are reusable
    /// by the next).
    pub backfill: bool,
}

impl BatchUntilIdle {
    /// A batch policy with an explicit solver handle.
    pub fn with_solver(solver: SolverHandle) -> Self {
        BatchUntilIdle {
            solver,
            backfill: false,
        }
    }
}

impl Default for BatchUntilIdle {
    fn default() -> Self {
        Self::with_solver(Arc::new(MrtSolver))
    }
}

impl std::fmt::Debug for BatchUntilIdle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchUntilIdle")
            .field("solver", &self.solver.name())
            .field("backfill", &self.backfill)
            .finish()
    }
}

impl OnlinePolicy for BatchUntilIdle {
    fn name(&self) -> String {
        if self.backfill {
            format!("batch-idle({})+backfill", self.solver.name())
        } else {
            format!("batch-idle({})", self.solver.name())
        }
    }

    fn backfill(&self) -> bool {
        self.backfill
    }

    fn should_plan(&self, trigger: Trigger, machine: &MachineState) -> bool {
        matches!(
            trigger,
            Trigger::Arrival | Trigger::Completion | Trigger::Fault
        ) && machine.is_idle()
    }

    fn plan(
        &mut self,
        instance: &Instance,
        pending: &[PendingTask],
        machine: &mut MachineState,
    ) -> Result<Vec<Commitment>> {
        let capacity = machine.max_contiguous_online().max(1);
        let sub_instance = pending_sub_instance(instance, pending, capacity)?;
        let outcome = self.solver.solve(&SolveRequest::new(&sub_instance))?;
        Ok(replay_offline(&outcome.schedule, pending, machine))
    }
}

/// A policy selection, convertible into a boxed policy (used by the CLI and
/// the benchmark harness).
#[derive(Clone)]
pub enum PolicyKind {
    /// [`GreedyList`].
    Greedy,
    /// [`EpochReplan`] with the given period and solver.
    Epoch {
        /// Epoch period.
        period: f64,
        /// Offline solver.
        solver: SolverHandle,
    },
    /// [`BatchUntilIdle`] with the given solver.
    Batch {
        /// Offline solver.
        solver: SolverHandle,
    },
}

impl std::fmt::Debug for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyKind::Greedy => f.debug_struct("Greedy").finish(),
            PolicyKind::Epoch { period, solver } => f
                .debug_struct("Epoch")
                .field("period", period)
                .field("solver", &solver.name())
                .finish(),
            PolicyKind::Batch { solver } => f
                .debug_struct("Batch")
                .field("solver", &solver.name())
                .finish(),
        }
    }
}

/// Cross-cutting policy options applied by [`PolicyKind::build_with`]: the
/// resource-model knobs the CLI exposes as `--backfill`, `--preempt-queued`
/// and `--preempt-running`, plus an optional telemetry recorder handed to
/// the built policy (CLI `--telemetry`).
#[derive(Clone, Default)]
pub struct PolicyOptions {
    /// First-fit placements into idle holes below the frontier.
    pub backfill: bool,
    /// Revoke queued commitments at epoch boundaries and re-solve them with
    /// the pending set (epoch policies only; ignored by the others).
    pub preempt_queued: bool,
    /// Truncate running commitments at epoch boundaries and re-solve their
    /// residuals jointly with the pending set — mid-execution re-allotment
    /// (epoch policies only; implies `preempt_queued`).
    pub preempt_running: bool,
    /// Structural delta-planning: arrival-only epochs skip the preemptive
    /// revocation pass and plan just the fresh arrivals (epoch policies
    /// only; meaningful with a preemption flag set).
    pub delta_plan: bool,
    /// Telemetry recorder attached to the built policy via
    /// [`OnlinePolicy::set_recorder`]; pass a clone of the handle given to
    /// [`crate::run_recorded`] so policy-side counters land in the same sink.
    pub recorder: Option<SharedRecorder>,
}

impl std::fmt::Debug for PolicyOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyOptions")
            .field("backfill", &self.backfill)
            .field("preempt_queued", &self.preempt_queued)
            .field("preempt_running", &self.preempt_running)
            .field("delta_plan", &self.delta_plan)
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl PolicyKind {
    /// Instantiate the policy with default options (frontier-only, no
    /// preemption — the historical engine behaviour).
    pub fn build(&self) -> Result<Box<dyn OnlinePolicy>> {
        self.build_with(PolicyOptions::default())
    }

    /// Instantiate the policy with explicit resource-model options.
    pub fn build_with(&self, options: PolicyOptions) -> Result<Box<dyn OnlinePolicy>> {
        let mut policy: Box<dyn OnlinePolicy> = match self {
            PolicyKind::Greedy => Box::new(GreedyList {
                backfill: options.backfill,
            }),
            PolicyKind::Epoch { period, solver } => Box::new(
                EpochReplan::with_solver(*period, Arc::clone(solver))?
                    .with_backfill(options.backfill)
                    .with_preempt_queued(options.preempt_queued)
                    .with_preempt_running(options.preempt_running)
                    .with_delta_planning(options.delta_plan),
            ),
            PolicyKind::Batch { solver } => Box::new(BatchUntilIdle {
                solver: Arc::clone(solver),
                backfill: options.backfill,
            }),
        };
        if let Some(recorder) = options.recorder {
            policy.set_recorder(recorder);
        }
        Ok(policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrt() -> SolverHandle {
        Arc::new(MrtSolver)
    }

    #[test]
    fn every_core_solver_produces_valid_schedules_through_batch_plan() {
        let instance = Instance::from_profiles(
            vec![
                SpeedupProfile::linear(6.0, 4).unwrap(),
                SpeedupProfile::new(vec![3.0, 1.8, 1.4]).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
            ],
            4,
        )
        .unwrap();
        let registry = malleable_core::solver::core_registry();
        for solver in registry.solvers() {
            let mut machine = MachineState::new(4);
            let pending: Vec<PendingTask> = (0..3).map(|id| PendingTask::new(id, 0.0)).collect();
            let mut policy = BatchUntilIdle::with_solver(Arc::clone(&solver));
            let commitments = policy.plan(&instance, &pending, &mut machine).unwrap();
            assert_eq!(commitments.len(), 3, "{}", solver.name());
        }
    }

    #[test]
    fn epoch_policy_rejects_bad_periods() {
        assert!(EpochReplan::mrt(0.0).is_err());
        assert!(EpochReplan::mrt(-1.0).is_err());
        assert!(EpochReplan::mrt(f64::NAN).is_err());
        assert!(EpochReplan::mrt(2.5).is_ok());
    }

    #[test]
    fn policy_kinds_build_their_policies() {
        assert_eq!(PolicyKind::Greedy.build().unwrap().name(), "greedy-list");
        let epoch = PolicyKind::Epoch {
            period: 2.0,
            solver: mrt(),
        };
        assert_eq!(epoch.build().unwrap().name(), "epoch-mrt(d=2)");
        assert_eq!(epoch.build().unwrap().epoch(), Some(2.0));
        let batch = PolicyKind::Batch {
            solver: Arc::new(CanonicalListSolver),
        };
        assert_eq!(batch.build().unwrap().name(), "batch-idle(list)");
    }

    #[test]
    fn greedy_prefers_the_count_minimising_completion() {
        // One linear task on an idle 4-processor machine: the full width
        // minimises the finish time.
        let instance =
            Instance::from_profiles(vec![SpeedupProfile::linear(4.0, 4).unwrap()], 4).unwrap();
        let mut machine = MachineState::new(4);
        let pending = [PendingTask::new(0, 0.0)];
        let commitments = GreedyList::new()
            .plan(&instance, &pending, &mut machine)
            .unwrap();
        assert_eq!(commitments.len(), 1);
        assert_eq!(commitments[0].count, 4);
        assert!((commitments[0].duration - 1.0).abs() < 1e-12);
    }

    #[test]
    fn offline_plans_never_overlap_running_commitments() {
        let instance = Instance::from_profiles(
            vec![
                SpeedupProfile::sequential(1.0).unwrap(),
                SpeedupProfile::sequential(2.0).unwrap(),
            ],
            2,
        )
        .unwrap();
        let mut machine = MachineState::new(2);
        machine.commit_at(0, 2, 0.0, 5.0);
        let pending = [PendingTask::new(0, 0.5), PendingTask::new(1, 0.5)];
        let mut policy = BatchUntilIdle::default();
        let commitments = policy.plan(&instance, &pending, &mut machine).unwrap();
        assert_eq!(commitments.len(), 2);
        for c in &commitments {
            assert!(
                c.start >= 5.0 - 1e-9,
                "commitment {c:?} overlaps the running task"
            );
        }
    }

    #[test]
    fn epoch_replan_ignores_warm_state_for_one_shot_solvers() {
        let instance = Instance::from_profiles(
            vec![
                SpeedupProfile::linear(4.0, 4).unwrap(),
                SpeedupProfile::sequential(1.0).unwrap(),
            ],
            4,
        )
        .unwrap();
        let mut machine = MachineState::new(4);
        let pending: Vec<PendingTask> = (0..2).map(|id| PendingTask::new(id, 0.0)).collect();
        let mut policy = EpochReplan::with_solver(1.0, Arc::new(CanonicalListSolver)).unwrap();
        let commitments = policy.plan(&instance, &pending, &mut machine).unwrap();
        assert_eq!(commitments.len(), 2);
        // One-shot solvers report no accepted guess, so no seed is stored and
        // no probes flow through the workspace.
        assert_eq!(policy.probes(), 0);
        assert!(policy.previous_omega_ratio.is_none());
    }
}
