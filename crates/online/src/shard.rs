//! The sharded parallel online engine.
//!
//! The event-driven engine in [`crate::engine`] is single-threaded over one
//! global event heap and one [`MachineState`] — per-event cost is small, but
//! a million-task trace pays it a million times over, serially.  This module
//! trades the per-event engine for an **epoch-driven coordinator over
//! per-shard timelines**:
//!
//! * the cluster's `m` processors are partitioned into `N` contiguous
//!   shards, each owning its own [`MachineState`] (reservation timeline), a
//!   private `ProbeWorkspace`, and its own cross-epoch warm-start state;
//! * arrivals are ingested **in batches through a bounded staging queue**
//!   (see [`ShardedConfig::batch`]) directly off a lazy iterator — a
//!   [`workload::ArrivalStream`] feeds a million-task trace without ever
//!   materialising it;
//! * on every epoch boundary the coordinator assigns the fresh arrivals
//!   round-robin to shards, **rebalances queued tasks from overloaded shards
//!   to idle ones** (work stealing, below), and dispatches one epoch solve
//!   per non-empty shard to long-lived worker threads under a single
//!   [`std::thread::scope`] — different shards solve concurrently;
//! * placements **stream incrementally** into a [`PlacementSink`] as each
//!   epoch resolves, instead of accumulating a full [`Schedule`] in memory
//!   (use [`CollectingSink`] when a schedule is wanted, [`NullSink`] when
//!   only the aggregate statistics matter).
//!
//! ## Work stealing
//!
//! Before dispatching an epoch, the coordinator estimates each shard's load
//! as its committed backlog beyond the clock (`free_horizon − now`) plus the
//! optimistic runtime of its queued tasks (sequential work over shard
//! width).  It then repeatedly moves one queued task from the most-loaded
//! shard to the least-loaded one — picking the task that minimises the
//! resulting maximum load, ties broken towards the lowest task id — until no
//! single move strictly improves the balance.  Every move is counted
//! (`engine.steals`) and emitted as a [`TelemetryEvent::Steal`].
//!
//! ## Equivalence contract
//!
//! With `shards == 1` the coordinator **delegates to the event-driven
//! engine** with an [`EpochReplan`] policy built from the same
//! configuration, so the single-shard behaviour is bit-for-bit identical to
//! the existing engine by construction — the equivalence suite in the
//! benchmark gates on it.  With `shards > 1` the partitioned run is a
//! different (parallel) algorithm: every placement still respects arrival
//! times and shard-local capacity (validated per round), but makespans may
//! differ from the single-shard run in either direction, Graham anomalies
//! included.
//!
//! Departures, faults and preemption are deliberately out of scope for the
//! partitioned path; [`run_sharded`] rejects traces that use them.
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread;

use crate::engine::{self, OnlineResult};
use crate::machine::MachineState;
use crate::policy::EpochReplan;
use ::telemetry::{names, SharedRecorder, SpanTimer, TelemetryEvent};
use malleable_core::prelude::*;
use packing::reservations::TimelineStats;
use workload::{Arrival, ArrivalTrace};

/// Configuration of a sharded run: the cluster partition plus the epoch
/// policy every shard runs locally.
#[derive(Clone)]
pub struct ShardedConfig {
    /// Number of shards the cluster is partitioned into (`1 ..= m`; with 1
    /// the run delegates to the event-driven engine).
    pub shards: usize,
    /// Epoch period of the per-shard re-planning grid.
    pub period: f64,
    /// The offline solver each shard invokes on its epoch batches.
    pub solver: SolverHandle,
    /// Search mode of warm-start-capable solvers.
    pub search: SearchMode,
    /// Keep each shard's probe workspace and interval hint across epochs.
    pub warm_start: bool,
    /// Run shard machines in backfill mode (placements first-fit into idle
    /// holes below the frontier).
    pub backfill: bool,
    /// Capacity of the bounded arrival staging queue: how many undispatched
    /// arrivals the coordinator holds in memory at once.  Ingestion refills
    /// the queue from the trace iterator as epochs drain it, so peak memory
    /// is `O(batch + arrivals per epoch)` regardless of trace length.
    pub batch: usize,
    /// Rebalance queued tasks from overloaded shards to idle ones at epoch
    /// boundaries (on by default; meaningless with one shard).
    pub steal: bool,
}

impl std::fmt::Debug for ShardedConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedConfig")
            .field("shards", &self.shards)
            .field("period", &self.period)
            .field("solver", &self.solver.name())
            .field("search", &self.search)
            .field("warm_start", &self.warm_start)
            .field("backfill", &self.backfill)
            .field("batch", &self.batch)
            .field("steal", &self.steal)
            .finish()
    }
}

impl ShardedConfig {
    /// A sharded configuration with the given partition, epoch period and
    /// solver, and the defaults of the event-driven epoch policy (exact
    /// search, warm starts on, no backfill, stealing on, 4096-arrival
    /// staging queue).
    pub fn new(shards: usize, period: f64, solver: SolverHandle) -> Self {
        ShardedConfig {
            shards,
            period,
            solver,
            search: SearchMode::Exact,
            warm_start: true,
            backfill: false,
            batch: 4096,
            steal: true,
        }
    }

    /// Enable or disable work stealing (builder style).
    pub fn with_steal(mut self, steal: bool) -> Self {
        self.steal = steal;
        self
    }

    /// Set the bounded ingestion queue capacity (builder style).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Enable or disable backfill mode on the shard machines (builder
    /// style).
    pub fn with_backfill(mut self, backfill: bool) -> Self {
        self.backfill = backfill;
        self
    }

    /// Report-facing name of the configured engine.
    pub fn policy_name(&self) -> String {
        let mut name = format!(
            "sharded-epoch-{}(d={})x{}",
            self.solver.name(),
            self.period,
            self.shards
        );
        if self.backfill {
            name.push_str("+backfill");
        }
        if !self.steal && self.shards > 1 {
            name.push_str("-nosteal");
        }
        name
    }

    fn validate(&self, processors: usize) -> Result<()> {
        if self.shards == 0 || self.shards > processors {
            return Err(Error::InvalidParameter {
                name: "shards",
                value: self.shards as f64,
            });
        }
        if !(self.period.is_finite() && self.period > 0.0) {
            return Err(Error::InvalidParameter {
                name: "epoch",
                value: self.period,
            });
        }
        if self.batch == 0 {
            return Err(Error::InvalidParameter {
                name: "batch",
                value: 0.0,
            });
        }
        Ok(())
    }
}

/// One placement streamed out of the sharded engine, on the *global*
/// processor numbering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamedPlacement {
    /// Global task id (= arrival index of the trace).
    pub task: TaskId,
    /// When the task arrived.
    pub arrived_at: f64,
    /// Start time on the global timeline.
    pub start: f64,
    /// Execution time at the committed processor count.
    pub duration: f64,
    /// First processor of the contiguous block (global numbering).
    pub first: usize,
    /// Number of processors.
    pub count: usize,
    /// Shard that served the placement (0 for the single-shard delegation).
    pub shard: usize,
}

/// A streaming consumer of placements: the sharded engine calls
/// [`PlacementSink::place`] once per committed task, in commit order, so a
/// million-task run never has to materialise its schedule.
pub trait PlacementSink {
    /// Accept one committed placement.
    fn place(&mut self, placement: &StreamedPlacement);
}

/// A sink that discards placements — the aggregate statistics in
/// [`ShardedResult`] are all that survives.  Use for throughput benchmarks
/// where the schedule itself would dominate memory.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl PlacementSink for NullSink {
    fn place(&mut self, _placement: &StreamedPlacement) {}
}

/// A sink that materialises the full [`Schedule`] (global processor
/// numbering) — use when the run's output feeds validation or a report.
#[derive(Debug, Clone)]
pub struct CollectingSink {
    schedule: Schedule,
}

impl CollectingSink {
    /// An empty sink for a machine with `processors` processors.
    pub fn new(processors: usize) -> Self {
        CollectingSink {
            schedule: Schedule::new(processors),
        }
    }

    /// The collected schedule, in commit order.
    pub fn into_schedule(self) -> Schedule {
        self.schedule
    }

    /// Borrow the collected schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }
}

impl PlacementSink for CollectingSink {
    fn place(&mut self, placement: &StreamedPlacement) {
        self.schedule.push(ScheduledTask {
            task: placement.task,
            start: placement.start,
            duration: placement.duration,
            processors: ProcessorRange::new(placement.first, placement.count),
        });
    }
}

/// Per-shard statistics of a sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// First processor of the shard's contiguous block (global numbering).
    pub first_processor: usize,
    /// Number of processors the shard owns.
    pub processors: usize,
    /// Placements the shard committed.
    pub placements: usize,
    /// Epoch solves the shard served.
    pub solves: usize,
    /// Total wall nanoseconds spent inside the shard's solver.
    pub solve_ns: u64,
    /// Oracle probes issued through the shard's workspace.
    pub probes: usize,
    /// Queued tasks stolen *into* this shard.
    pub steals_in: usize,
    /// Queued tasks stolen *out of* this shard.
    pub steals_out: usize,
    /// Completion time of the shard's last placement.
    pub makespan: f64,
    /// The shard timeline's own operation counters.  Per-timeline by
    /// construction — [`ShardedResult::timeline`] carries the correct
    /// cross-shard aggregate (see [`TimelineStats::aggregate`]).
    pub timeline: TimelineStats,
}

/// The outcome of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardedResult {
    /// Name of the engine configuration that produced the run.
    pub policy: String,
    /// Number of shards (1 for the delegated single-shard run).
    pub shards: usize,
    /// Number of tasks placed (every arrival, absent departures).
    pub placed: usize,
    /// Completion time of the last task on the global timeline.
    pub makespan: f64,
    /// Mean flow time (completion − arrival) over the placed tasks.
    pub mean_flow_time: f64,
    /// Largest flow time over the placed tasks.
    pub max_flow_time: f64,
    /// Integral of busy processors: `Σ duration × allotment`.
    pub busy_integral: f64,
    /// Epoch rounds the coordinator drove (planning rounds of the delegated
    /// engine when `shards == 1`).
    pub rounds: usize,
    /// Per-shard epoch solves across the run (= `rounds` when one shard).
    pub solves: usize,
    /// Queued tasks moved between shards by work stealing.
    pub steals: usize,
    /// Solve-phase **critical path**: the sum over rounds of the slowest
    /// shard's solve wall time — what a machine with one core per shard
    /// would spend in the solve phase.  Equal to
    /// [`ShardedResult::solve_total_ns`] when one shard.
    pub solve_critical_ns: u64,
    /// Total solver wall nanoseconds summed over every shard solve.
    pub solve_total_ns: u64,
    /// Wall nanoseconds for the whole run.
    pub run_ns: u64,
    /// Engine invariant violations observed (0 on every healthy run).
    pub invariant_violations: usize,
    /// Per-shard statistics (empty for the single-shard delegation, whose
    /// timeline counters flow through the recorder instead).
    pub per_shard: Vec<ShardStats>,
    /// Timeline operation counters **aggregated across every shard** — the
    /// figure telemetry summaries must use (each shard's own counters only
    /// see that shard's queries).
    pub timeline: TimelineStats,
}

impl ShardedResult {
    /// Time-weighted utilisation over the makespan horizon (`m × makespan`
    /// capacity; the sharded path injects no faults).
    pub fn utilization(&self, processors: usize) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.busy_integral / (processors as f64 * self.makespan)
    }
}

/// A solver wrapper that measures wall time spent inside `solve` /
/// `solve_with_workspace` — pure pass-through otherwise, so wrapping cannot
/// change any outcome.  Used by the single-shard delegation (and the
/// benchmark baselines) to get an exact solve-phase total where log-scale
/// histograms would lose precision.
pub struct TimedSolver {
    inner: SolverHandle,
    total_ns: AtomicU64,
    solves: AtomicU64,
}

impl std::fmt::Debug for TimedSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedSolver")
            .field("inner", &self.inner.name())
            .field("total_ns", &self.total_ns())
            .field("solves", &self.solves())
            .finish()
    }
}

impl TimedSolver {
    /// Wrap a solver handle.
    pub fn new(inner: SolverHandle) -> Arc<Self> {
        Arc::new(TimedSolver {
            inner,
            total_ns: AtomicU64::new(0),
            solves: AtomicU64::new(0),
        })
    }

    /// Total wall nanoseconds spent inside the wrapped solver so far.
    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Ordering::Relaxed)
    }

    /// Number of solves served so far.
    pub fn solves(&self) -> u64 {
        self.solves.load(Ordering::Relaxed)
    }
}

impl Solver for TimedSolver {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn capabilities(&self) -> SolverCapabilities {
        self.inner.capabilities()
    }

    fn solve(&self, request: &SolveRequest<'_>) -> Result<SolveOutcome> {
        let timer = SpanTimer::start();
        let outcome = self.inner.solve(request);
        self.total_ns
            .fetch_add(timer.elapsed_ns(), Ordering::Relaxed);
        self.solves.fetch_add(1, Ordering::Relaxed);
        outcome
    }

    fn solve_with_workspace(
        &self,
        request: &SolveRequest<'_>,
        workspace: &mut ProbeWorkspace,
    ) -> Result<SolveOutcome> {
        let timer = SpanTimer::start();
        let outcome = self.inner.solve_with_workspace(request, workspace);
        self.total_ns
            .fetch_add(timer.elapsed_ns(), Ordering::Relaxed);
        self.solves.fetch_add(1, Ordering::Relaxed);
        outcome
    }
}

/// A task queued on a shard, carrying its (cloned) profile so shard workers
/// never touch shared trace state.
#[derive(Debug, Clone)]
struct ShardTask {
    id: TaskId,
    arrived_at: f64,
    task: MalleableTask,
}

/// Coordinator → worker messages.
enum ToShard {
    /// Solve this epoch's batch at the given boundary time.
    Epoch { time: f64, tasks: Vec<ShardTask> },
    /// Report final statistics and exit.
    Finish,
}

/// One epoch's reply from a shard worker.
struct EpochReply {
    placements: Vec<StreamedPlacement>,
    solve_ns: u64,
    probes: usize,
    free_horizon: f64,
}

/// Worker → coordinator messages.
enum FromShard {
    Epoch(Result<EpochReply>),
    Final(Box<ShardStats>),
}

/// Bounded, batched arrival ingestion: at most `capacity` undispatched
/// arrivals are staged in memory; the queue refills from the (lazy) source
/// as epochs drain it.
struct BoundedIngest<I> {
    source: I,
    staged: VecDeque<Arrival>,
    capacity: usize,
    next_id: usize,
    last_at: f64,
}

impl<I: Iterator<Item = Result<Arrival>>> BoundedIngest<I> {
    fn new(source: I, capacity: usize) -> Self {
        BoundedIngest {
            source,
            staged: VecDeque::with_capacity(capacity),
            capacity,
            next_id: 0,
            last_at: 0.0,
        }
    }

    /// Pull from the source until the staging queue is full or the source
    /// is exhausted, validating that arrivals come sorted by time.
    fn refill(&mut self) -> Result<()> {
        while self.staged.len() < self.capacity {
            match self.source.next() {
                Some(arrival) => {
                    let arrival = arrival?;
                    if !(arrival.at.is_finite() && arrival.at >= self.last_at - 1e-9) {
                        return Err(Error::InvalidParameter {
                            name: "unsorted-arrival",
                            value: arrival.at,
                        });
                    }
                    if arrival.departs_at.is_some() {
                        return Err(Error::InvalidParameter {
                            name: "sharded-departures",
                            value: arrival.at,
                        });
                    }
                    self.last_at = self.last_at.max(arrival.at);
                    self.staged.push_back(arrival);
                }
                None => break,
            }
        }
        Ok(())
    }

    /// Arrival time of the next undispatched task, if any.
    fn next_arrival_time(&mut self) -> Result<Option<f64>> {
        if self.staged.is_empty() {
            self.refill()?;
        }
        Ok(self.staged.front().map(|a| a.at))
    }

    /// Move every arrival due at or before `time` into `out` (with its
    /// global task id), refilling the staging queue as it drains.
    fn drain_due(&mut self, time: f64, out: &mut Vec<(usize, Arrival)>) -> Result<()> {
        loop {
            if self.staged.is_empty() {
                self.refill()?;
                if self.staged.is_empty() {
                    return Ok(());
                }
            }
            match self.staged.front() {
                Some(front) if front.at <= time + 1e-9 => {
                    // The front was just checked; pop_front cannot miss.
                    let Some(arrival) = self.staged.pop_front() else {
                        return Ok(());
                    };
                    out.push((self.next_id, arrival));
                    self.next_id += 1;
                }
                _ => return Ok(()),
            }
        }
    }
}

/// Run the sharded engine over a materialised trace.
///
/// With `config.shards == 1` this delegates to the event-driven engine
/// ([`engine::run`] / [`engine::run_recorded`]) with an [`EpochReplan`]
/// policy built from the same configuration — bit-for-bit the existing
/// behaviour.  With more shards the cluster is partitioned and epochs solve
/// concurrently; see the module docs.  The trace must be fault-free and
/// departure-free.
pub fn run_sharded(
    trace: &ArrivalTrace,
    config: &ShardedConfig,
    sink: &mut dyn PlacementSink,
    recorder: Option<SharedRecorder>,
) -> Result<ShardedResult> {
    if trace.has_departures() {
        return Err(Error::InvalidParameter {
            name: "sharded-departures",
            value: trace.len() as f64,
        });
    }
    config.validate(trace.processors())?;
    if config.shards == 1 {
        return run_single(trace, config, sink, recorder);
    }
    run_partitioned(
        trace.arrivals().iter().cloned().map(Ok),
        trace.processors(),
        config,
        sink,
        recorder,
    )
}

/// Run the sharded engine directly off a lazy arrival iterator (sorted by
/// time, e.g. a [`workload::ArrivalStream`]) — the million-task ingestion
/// path, which never materialises the trace.  `shards == 1` falls back to
/// collecting the stream and delegating to the event-driven engine, which
/// needs the materialised trace.
pub fn run_sharded_stream<I>(
    arrivals: I,
    processors: usize,
    config: &ShardedConfig,
    sink: &mut dyn PlacementSink,
    recorder: Option<SharedRecorder>,
) -> Result<ShardedResult>
where
    I: Iterator<Item = Result<Arrival>>,
{
    config.validate(processors)?;
    if config.shards == 1 {
        let collected = arrivals.collect::<Result<Vec<_>>>()?;
        let trace = ArrivalTrace::new(processors, collected)?;
        return run_single(&trace, config, sink, recorder);
    }
    run_partitioned(arrivals, processors, config, sink, recorder)
}

/// The single-shard delegation: the event-driven engine with an equivalent
/// [`EpochReplan`] policy, its schedule streamed into the sink.
fn run_single(
    trace: &ArrivalTrace,
    config: &ShardedConfig,
    sink: &mut dyn PlacementSink,
    recorder: Option<SharedRecorder>,
) -> Result<ShardedResult> {
    let run_timer = SpanTimer::start();
    let timed = TimedSolver::new(Arc::clone(&config.solver));
    let handle: SolverHandle = Arc::clone(&timed) as SolverHandle;
    let mut policy = EpochReplan::with_solver(config.period, handle)?
        .with_search(config.search)
        .with_warm_start(config.warm_start)
        .with_backfill(config.backfill);
    let result: OnlineResult = match &recorder {
        Some(rec) => {
            policy = policy.with_recorder(Arc::clone(rec));
            engine::run_recorded(trace, &mut policy, rec.as_ref())?
        }
        None => engine::run(trace, &mut policy)?,
    };
    for entry in result.schedule.entries() {
        sink.place(&StreamedPlacement {
            task: entry.task,
            arrived_at: trace.arrivals()[entry.task].at,
            start: entry.start,
            duration: entry.duration,
            first: entry.processors.first,
            count: entry.processors.count,
            shard: 0,
        });
    }
    let solve_ns = timed.total_ns();
    Ok(ShardedResult {
        policy: result.policy.clone(),
        shards: 1,
        placed: result.schedule.entries().len(),
        makespan: result.makespan,
        mean_flow_time: result.mean_flow_time,
        max_flow_time: result.max_flow_time,
        busy_integral: result.busy_integral,
        rounds: result.replans,
        solves: timed.solves() as usize,
        steals: 0,
        solve_critical_ns: solve_ns,
        solve_total_ns: solve_ns,
        run_ns: run_timer.elapsed_ns(),
        invariant_violations: 0,
        per_shard: Vec::new(),
        timeline: TimelineStats::default(),
    })
}

/// Width of shard `s` in an `m`-processor, `n`-shard partition (the first
/// `m mod n` shards take the remainder).
fn shard_width(processors: usize, shards: usize, shard: usize) -> usize {
    processors / shards + usize::from(shard < processors % shards)
}

/// The state a shard worker owns for the whole run.
struct ShardWorker {
    shard: usize,
    first_processor: usize,
    width: usize,
    machine: MachineState,
    workspace: ProbeWorkspace,
    previous_omega_ratio: Option<f64>,
    solver: SolverHandle,
    search: SearchMode,
    warm_start: bool,
    stats: ShardStats,
}

impl ShardWorker {
    /// Serve one epoch: advance the clock, solve the batch as an offline
    /// sub-instance on the shard's width (the same warm-started pipeline as
    /// [`EpochReplan`]), and replay the offline schedule onto the shard
    /// timeline in offline start order.
    fn epoch(&mut self, time: f64, batch: &[ShardTask]) -> Result<EpochReply> {
        self.machine.advance_to(time);
        let probes_before = self.workspace.probes();
        let tasks: Vec<MalleableTask> = batch.iter().map(|t| t.task.clone()).collect();
        let sub = Instance::new(tasks, self.width)?;
        let mut request = SolveRequest::new(&sub).with_mode(self.search);
        let mut static_lb = 0.0;
        if self.warm_start && self.solver.capabilities().supports_warm_start {
            static_lb = malleable_core::bounds::lower_bound(&sub);
            if static_lb > 0.0 {
                request.warm_start_hint = self.previous_omega_ratio.map(|r| r * static_lb * 1.05);
            }
        }
        if !self.warm_start {
            self.workspace.clear();
        }
        let timer = SpanTimer::start();
        let outcome = self
            .solver
            .solve_with_workspace(&request, &mut self.workspace)?;
        let solve_ns = timer.elapsed_ns();
        if let Some(omega) = outcome.feasible_omega {
            if static_lb > 0.0 {
                self.previous_omega_ratio = Some(omega / static_lb);
            }
        }
        // Replay in offline start order (ties: wider first, then task id),
        // exactly like the event-driven engine's `replay_offline`.
        let mut entries: Vec<&ScheduledTask> = outcome.schedule.entries().iter().collect();
        entries.sort_by(|a, b| {
            a.start
                .total_cmp(&b.start)
                .then(b.processors.count.cmp(&a.processors.count))
                .then(a.task.cmp(&b.task))
        });
        let mut placements = Vec::with_capacity(entries.len());
        for entry in entries {
            let placement = self
                .machine
                .place_earliest(entry.processors.count, entry.duration);
            self.machine.complete_one();
            let end = placement.start + entry.duration;
            self.stats.makespan = self.stats.makespan.max(end);
            placements.push(StreamedPlacement {
                task: batch[entry.task].id,
                arrived_at: batch[entry.task].arrived_at,
                start: placement.start,
                duration: entry.duration,
                first: self.first_processor + placement.first,
                count: entry.processors.count,
                shard: self.shard,
            });
        }
        let probes = self.workspace.probes() - probes_before;
        self.stats.placements += placements.len();
        self.stats.solves += 1;
        self.stats.solve_ns += solve_ns;
        self.stats.probes += probes;
        Ok(EpochReply {
            placements,
            solve_ns,
            probes,
            free_horizon: self.machine.free_horizon(),
        })
    }

    fn run(mut self, requests: Receiver<ToShard>, replies: Sender<FromShard>) {
        for request in requests {
            match request {
                ToShard::Epoch { time, tasks } => {
                    let reply = self.epoch(time, &tasks);
                    if replies.send(FromShard::Epoch(reply)).is_err() {
                        return;
                    }
                }
                ToShard::Finish => {
                    self.stats.timeline = self.machine.timeline_stats();
                    let _ = replies.send(FromShard::Final(Box::new(self.stats)));
                    return;
                }
            }
        }
    }
}

/// The work-stealing rebalance: move queued tasks from the most-loaded
/// shard to the least-loaded one while a single move strictly lowers the
/// maximum estimated load.  Deterministic: ties break towards the lower
/// shard index and the lower task id.  Returns `(task, from, to)` for every
/// move applied.
fn rebalance(
    queued: &mut [Vec<ShardTask>],
    horizons: &[f64],
    widths: &[usize],
    now: f64,
) -> Vec<(TaskId, usize, usize)> {
    let shards = queued.len();
    let mut loads: Vec<f64> = (0..shards)
        .map(|s| {
            let backlog = (horizons[s] - now).max(0.0);
            let queued_work: f64 = queued[s]
                .iter()
                .map(|t| t.task.profile.time(1) / widths[s] as f64)
                .sum();
            backlog + queued_work
        })
        .collect();
    let mut moves = Vec::new();
    // One move per queued task is a natural ceiling; the strict-improvement
    // rule stops far earlier in practice.
    let cap = queued.iter().map(Vec::len).sum::<usize>();
    for _ in 0..cap {
        // `max_by`/`min_by` only return None on an empty range, i.e. a
        // zero-shard coordinator, which cannot rebalance anything.
        let Some(donor) =
            (0..shards).max_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(b.cmp(&a)))
        else {
            break;
        };
        let Some(receiver) =
            (0..shards).min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
        else {
            break;
        };
        if donor == receiver || queued[donor].is_empty() {
            break;
        }
        let before = loads[donor];
        // The best single move: minimise max(donor', receiver') over the
        // donor's queue, ties towards the lowest task id.
        let mut best: Option<(usize, f64, TaskId)> = None;
        for (index, task) in queued[donor].iter().enumerate() {
            let work = task.task.profile.time(1);
            let donor_after = loads[donor] - work / widths[donor] as f64;
            let receiver_after = loads[receiver] + work / widths[receiver] as f64;
            let peak = donor_after.max(receiver_after);
            let better = match &best {
                None => true,
                Some((_, best_peak, best_id)) => {
                    peak < best_peak - 1e-12
                        || ((peak - best_peak).abs() <= 1e-12 && task.id < *best_id)
                }
            };
            if better {
                best = Some((index, peak, task.id));
            }
        }
        // The donor's queue was just checked non-empty, so a best move
        // exists; bail out of the rebalance rather than panic if not.
        let Some((index, peak, _)) = best else {
            break;
        };
        if peak >= before - 1e-12 {
            break;
        }
        let task = queued[donor].remove(index);
        let work = task.task.profile.time(1);
        loads[donor] -= work / widths[donor] as f64;
        loads[receiver] += work / widths[receiver] as f64;
        moves.push((task.id, donor, receiver));
        queued[receiver].push(task);
    }
    moves
}

/// The partitioned (`shards ≥ 2`) coordinator.
fn run_partitioned<I>(
    arrivals: I,
    processors: usize,
    config: &ShardedConfig,
    sink: &mut dyn PlacementSink,
    recorder: Option<SharedRecorder>,
) -> Result<ShardedResult>
where
    I: Iterator<Item = Result<Arrival>>,
{
    let run_timer = SpanTimer::start();
    let shards = config.shards;
    let widths: Vec<usize> = (0..shards)
        .map(|s| shard_width(processors, shards, s))
        .collect();
    let firsts: Vec<usize> = widths
        .iter()
        .scan(0usize, |acc, &w| {
            let first = *acc;
            *acc += w;
            Some(first)
        })
        .collect();

    thread::scope(|scope| -> Result<ShardedResult> {
        let mut to_shards: Vec<Sender<ToShard>> = Vec::with_capacity(shards);
        let mut from_shards: Vec<Receiver<FromShard>> = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (req_tx, req_rx) = channel::<ToShard>();
            let (rep_tx, rep_rx) = channel::<FromShard>();
            let width = widths[shard];
            let worker = ShardWorker {
                shard,
                first_processor: firsts[shard],
                width,
                machine: if config.backfill {
                    MachineState::with_backfill(width)
                } else {
                    MachineState::new(width)
                },
                workspace: ProbeWorkspace::new(),
                previous_omega_ratio: None,
                solver: Arc::clone(&config.solver),
                search: config.search,
                warm_start: config.warm_start,
                stats: ShardStats {
                    shard,
                    first_processor: firsts[shard],
                    processors: width,
                    placements: 0,
                    solves: 0,
                    solve_ns: 0,
                    probes: 0,
                    steals_in: 0,
                    steals_out: 0,
                    makespan: 0.0,
                    timeline: TimelineStats::default(),
                },
            };
            scope.spawn(move || worker.run(req_rx, rep_tx));
            to_shards.push(req_tx);
            from_shards.push(rep_rx);
        }

        // The coordinator proper, separated so every exit path below still
        // drops the request senders (ending the workers) before the scope
        // joins them.
        let coordinated = coordinate(
            arrivals,
            config,
            &widths,
            sink,
            recorder.as_deref(),
            &to_shards,
            &from_shards,
        );

        // Collect final stats (on success) and release the workers.
        let mut per_shard = Vec::with_capacity(shards);
        let mut finish_ok = true;
        for tx in &to_shards {
            finish_ok &= tx.send(ToShard::Finish).is_ok();
        }
        if coordinated.is_ok() && finish_ok {
            for rx in &from_shards {
                match rx.recv() {
                    Ok(FromShard::Final(stats)) => per_shard.push(*stats),
                    _ => {
                        return Err(Error::NoFeasibleSchedule);
                    }
                }
            }
        }
        drop(to_shards);

        let mut tally = coordinated?;
        for (stats, steals) in per_shard.iter_mut().zip(&tally.shard_steals) {
            stats.steals_in = steals.0;
            stats.steals_out = steals.1;
        }
        let timeline = TimelineStats::aggregate(per_shard.iter().map(|s| s.timeline));
        if let Some(rec) = recorder.as_deref() {
            rec.add(names::TIMELINE_RESERVATIONS, timeline.reservations);
            rec.add(names::TIMELINE_CANCELS, timeline.cancels);
            rec.add(names::TIMELINE_TRUNCATIONS, timeline.truncations);
            rec.add(names::TIMELINE_HOLES_SCANNED, timeline.holes_scanned);
            rec.add(names::RUN_NS, run_timer.elapsed_ns());
        }
        tally.result.per_shard = per_shard;
        tally.result.timeline = timeline;
        tally.result.run_ns = run_timer.elapsed_ns();
        Ok(tally.result)
    })
}

/// What [`coordinate`] accumulates for [`run_partitioned`] to finish.
struct CoordinatorTally {
    result: ShardedResult,
    /// Per-shard `(steals_in, steals_out)`.
    shard_steals: Vec<(usize, usize)>,
}

/// Drive the epoch rounds: batch-ingest arrivals, assign round-robin,
/// rebalance, dispatch to the shard workers, and stream the placements.
#[allow(clippy::too_many_arguments)]
fn coordinate<I>(
    arrivals: I,
    config: &ShardedConfig,
    widths: &[usize],
    sink: &mut dyn PlacementSink,
    recorder: Option<&dyn ::telemetry::Recorder>,
    to_shards: &[Sender<ToShard>],
    from_shards: &[Receiver<FromShard>],
) -> Result<CoordinatorTally>
where
    I: Iterator<Item = Result<Arrival>>,
{
    let shards = widths.len();
    let period = config.period;
    let mut ingest = BoundedIngest::new(arrivals, config.batch);
    let mut queued: Vec<Vec<ShardTask>> = vec![Vec::new(); shards];
    let mut horizons: Vec<f64> = vec![0.0; shards];
    let mut shard_steals: Vec<(usize, usize)> = vec![(0, 0); shards];
    let mut due: Vec<(usize, Arrival)> = Vec::new();

    let mut result = ShardedResult {
        policy: config.policy_name(),
        shards,
        placed: 0,
        makespan: 0.0,
        mean_flow_time: 0.0,
        max_flow_time: 0.0,
        busy_integral: 0.0,
        rounds: 0,
        solves: 0,
        steals: 0,
        solve_critical_ns: 0,
        solve_total_ns: 0,
        run_ns: 0,
        invariant_violations: 0,
        per_shard: Vec::new(),
        timeline: TimelineStats::default(),
    };
    let mut flow_sum = 0.0f64;

    // Next epoch boundary: the first grid point after the next arrival
    // (the same `floor(now / period) + 1` grid the event-driven engine
    // uses; rounds only fire when there is work to plan).
    while let Some(at) = ingest.next_arrival_time()? {
        let tick = (at / period).floor() * period + period;
        due.clear();
        ingest.drain_due(tick, &mut due)?;
        debug_assert!(!due.is_empty(), "a tick was scheduled without arrivals");

        let round_timer = SpanTimer::start();
        // Round-robin assignment by arrival index keeps the partition
        // deterministic; the rebalance below corrects imbalance.
        for (id, arrival) in due.drain(..) {
            queued[id % shards].push(ShardTask {
                id,
                arrived_at: arrival.at,
                task: arrival.task,
            });
        }
        if config.steal && shards > 1 {
            for (task, from, to) in rebalance(&mut queued, &horizons, widths, tick) {
                result.steals += 1;
                shard_steals[from].1 += 1;
                shard_steals[to].0 += 1;
                if let Some(rec) = recorder {
                    rec.add(names::STEALS, 1);
                    if rec.enabled() {
                        rec.event(TelemetryEvent::Steal {
                            time: tick,
                            task: task as u64,
                            from_shard: from,
                            to_shard: to,
                        });
                    }
                }
            }
        }

        // Dispatch non-empty shards, then collect replies in shard order so
        // the run is deterministic regardless of worker timing.
        let mut dispatched = Vec::new();
        for shard in 0..shards {
            if queued[shard].is_empty() {
                continue;
            }
            let tasks = std::mem::take(&mut queued[shard]);
            if to_shards[shard]
                .send(ToShard::Epoch { time: tick, tasks })
                .is_err()
            {
                return Err(Error::NoFeasibleSchedule);
            }
            dispatched.push(shard);
        }
        let mut round_max_ns = 0u64;
        for &shard in &dispatched {
            let reply = match from_shards[shard].recv() {
                Ok(FromShard::Epoch(reply)) => reply?,
                _ => return Err(Error::NoFeasibleSchedule),
            };
            horizons[shard] = reply.free_horizon;
            round_max_ns = round_max_ns.max(reply.solve_ns);
            result.solve_total_ns += reply.solve_ns;
            result.solves += 1;
            if let Some(rec) = recorder {
                rec.sample(names::SOLVE_NS, reply.solve_ns);
                rec.sample(names::SOLVE_PROBES, reply.probes as u64);
                rec.add(names::REPLANS, 1);
                rec.add(names::WORKSPACE_PROBES, reply.probes as u64);
            }
            for placement in &reply.placements {
                // The shard planned at the boundary, so a start before the
                // arrival or outside the shard block is an engine invariant
                // violation, not a bad schedule.
                let first = firsts_of(widths, placement.shard);
                if placement.start < placement.arrived_at - 1e-9
                    || !placement.start.is_finite()
                    || placement.first < first
                    || placement.first + placement.count > first + widths[placement.shard]
                {
                    result.invariant_violations += 1;
                    if let Some(rec) = recorder {
                        rec.add(names::INVARIANT_VIOLATIONS, 1);
                        if rec.enabled() {
                            rec.event(TelemetryEvent::InvariantViolation {
                                time: tick,
                                detail: format!(
                                    "task {} placed at [{}, p{}+{}) outside its contract",
                                    placement.task,
                                    placement.start,
                                    placement.first,
                                    placement.count
                                ),
                            });
                        }
                    }
                    return Err(Error::InvalidParameter {
                        name: "sharded-placement",
                        value: placement.start,
                    });
                }
                let finish = placement.start + placement.duration;
                let flow = finish - placement.arrived_at;
                result.placed += 1;
                result.makespan = result.makespan.max(finish);
                result.busy_integral += placement.duration * placement.count as f64;
                flow_sum += flow;
                result.max_flow_time = result.max_flow_time.max(flow);
                if let Some(rec) = recorder {
                    rec.add(names::PLACEMENTS, 1);
                }
                sink.place(placement);
            }
        }
        result.solve_critical_ns += round_max_ns;
        result.rounds += 1;
        if let Some(rec) = recorder {
            rec.add(names::SHARD_ROUNDS, 1);
            rec.sample(names::DECISION_NS, round_timer.elapsed_ns());
        }
    }

    result.mean_flow_time = if result.placed > 0 {
        flow_sum / result.placed as f64
    } else {
        0.0
    };
    Ok(CoordinatorTally {
        result,
        shard_steals,
    })
}

/// First global processor of shard `s` given the partition widths.
fn firsts_of(widths: &[usize], shard: usize) -> usize {
    widths[..shard].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ::telemetry::CollectingRecorder;
    use proptest::prelude::*;
    use workload::{ArrivalPattern, TraceConfig, WorkloadConfig};

    fn mrt() -> SolverHandle {
        Arc::new(MrtSolver)
    }

    fn trace(tasks: usize, processors: usize, seed: u64) -> ArrivalTrace {
        ArrivalTrace::generate(&TraceConfig {
            workload: WorkloadConfig::mixed(tasks, processors, seed),
            pattern: ArrivalPattern::Poisson { rate: 3.0 },
        })
        .unwrap()
    }

    #[test]
    fn single_shard_delegation_is_bit_exact_with_the_engine() {
        for seed in [1, 5, 9] {
            let trace = trace(24, 8, seed);
            let mut policy = EpochReplan::mrt(1.0).unwrap();
            let expected = engine::run(&trace, &mut policy).unwrap();
            let config = ShardedConfig::new(1, 1.0, mrt());
            let mut sink = CollectingSink::new(trace.processors());
            let result = run_sharded(&trace, &config, &mut sink, None).unwrap();
            assert_eq!(sink.into_schedule(), expected.schedule, "seed {seed}");
            assert_eq!(result.makespan, expected.makespan, "seed {seed}");
            assert_eq!(result.rounds, expected.replans, "seed {seed}");
            assert_eq!(result.shards, 1);
            assert!(result.solve_total_ns > 0, "timed solver must observe work");
        }
    }

    #[test]
    fn partitioned_runs_validate_and_place_every_task() {
        let trace = trace(40, 8, 3);
        for shards in [2, 4, 8] {
            let config = ShardedConfig::new(shards, 1.0, mrt());
            let mut sink = CollectingSink::new(trace.processors());
            let result = run_sharded(&trace, &config, &mut sink, None).unwrap();
            assert_eq!(result.placed, trace.len(), "{shards} shards");
            assert_eq!(result.invariant_violations, 0);
            let schedule = sink.into_schedule();
            let issues = crate::validate_against_trace(&trace, &schedule);
            assert!(issues.is_empty(), "{shards} shards: {issues:?}");
            // Per-shard stats add up to the run's totals, including the
            // cross-shard timeline aggregation (satellite: the per-timeline
            // counters would undercount).
            assert_eq!(result.per_shard.len(), shards);
            assert_eq!(
                result.per_shard.iter().map(|s| s.placements).sum::<usize>(),
                result.placed
            );
            let aggregated = TimelineStats::aggregate(result.per_shard.iter().map(|s| s.timeline));
            assert_eq!(result.timeline, aggregated);
            assert!(
                result.timeline.reservations
                    >= result
                        .per_shard
                        .iter()
                        .map(|s| s.timeline.reservations)
                        .max()
                        .unwrap()
            );
        }
    }

    #[test]
    fn deterministic_stealing_rebalances_a_lopsided_round() {
        // Two single-processor shards; four sequential tasks arrive at time
        // 0 with works [4, 1, 4, 1].  Round-robin puts {t0, t2} (load 8) on
        // shard 0 and {t1, t3} (load 2) on shard 1.  The rebalance moves t0
        // (ties break towards the lowest id: donor peak 8 → 6 either way),
        // then t1 back (6 → 5), and stops — no single move beats a 5/5
        // split.  Everything dispatches at the first grid point t = 1, so
        // the stolen run finishes at 1 + 5 = 6 while the unstolen one ends
        // at 1 + 8 = 9.
        let works = [4.0, 1.0, 4.0, 1.0];
        let trace = ArrivalTrace::new(
            2,
            works
                .iter()
                .map(|&w| {
                    Arrival::new(
                        0.0,
                        MalleableTask::new(SpeedupProfile::sequential(w).unwrap()),
                    )
                })
                .collect(),
        )
        .unwrap();
        let run = |steal: bool| {
            let config = ShardedConfig::new(2, 1.0, mrt()).with_steal(steal);
            let recorder = CollectingRecorder::shared();
            let mut sink = CollectingSink::new(2);
            let result = run_sharded(
                &trace,
                &config,
                &mut sink,
                Some(recorder.clone() as SharedRecorder),
            )
            .unwrap();
            (result, sink.into_schedule(), recorder)
        };
        let (stolen, schedule, recorder) = run(true);
        assert_eq!(stolen.steals, 2);
        assert_eq!(recorder.counter(names::STEALS), 2);
        assert!((stolen.makespan - 6.0).abs() < 1e-9, "{}", stolen.makespan);
        assert!(crate::validate_against_trace(&trace, &schedule).is_empty());
        let steal_events: Vec<(u64, usize, usize)> = recorder
            .events()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Steal {
                    task,
                    from_shard,
                    to_shard,
                    ..
                } => Some((*task, *from_shard, *to_shard)),
                _ => None,
            })
            .collect();
        assert_eq!(steal_events, vec![(0, 0, 1), (1, 1, 0)]);
        let (unstolen, _, _) = run(false);
        assert_eq!(unstolen.steals, 0);
        assert!(
            (unstolen.makespan - 9.0).abs() < 1e-9,
            "{}",
            unstolen.makespan
        );
    }

    #[test]
    fn streaming_ingestion_matches_the_materialised_run() {
        // A tiny bounded queue forces many refills; the run must not depend
        // on the staging capacity.
        let config = TraceConfig {
            workload: WorkloadConfig::mixed(60, 8, 17),
            pattern: ArrivalPattern::Bursty {
                burst_size: 10,
                burst_gap: 2.0,
            },
        };
        let trace = ArrivalTrace::generate(&config).unwrap();
        let sharded = ShardedConfig::new(4, 1.0, mrt()).with_batch(3);
        let mut from_trace = CollectingSink::new(8);
        let a = run_sharded(&trace, &sharded, &mut from_trace, None).unwrap();
        let mut from_stream = CollectingSink::new(8);
        let stream = workload::ArrivalStream::new(&config).unwrap();
        let b = run_sharded_stream(stream, 8, &sharded, &mut from_stream, None).unwrap();
        assert_eq!(from_trace.into_schedule(), from_stream.into_schedule());
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.steals, b.steals);
        assert_eq!(a.rounds, b.rounds);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// On arbitrary small traces, every shard count places every task
        /// into a schedule that validates against the trace, never beats
        /// the physical lower bound, and reports zero invariant violations;
        /// with one shard the delegated run is bit-exact with the
        /// event-driven engine.
        #[test]
        fn partitioning_preserves_the_engine_contract(
            seed in 0u64..10_000,
            tasks in 4usize..28,
            rate in 0.5f64..6.0,
        ) {
            let trace = ArrivalTrace::generate(&TraceConfig {
                workload: WorkloadConfig::mixed(tasks, 8, seed),
                pattern: ArrivalPattern::Poisson { rate },
            })
            .unwrap();
            // The physical floor: a task cannot finish before its arrival
            // plus its fastest possible execution on the whole machine.
            let floor = trace
                .arrivals()
                .iter()
                .map(|a| a.at + a.task.profile.time(trace.processors()))
                .fold(0.0f64, f64::max);
            let mut policy = EpochReplan::mrt(1.0).unwrap();
            let legacy = engine::run(&trace, &mut policy).unwrap();
            for shards in [1usize, 2, 4, 8] {
                let config = ShardedConfig::new(shards, 1.0, mrt());
                let mut sink = CollectingSink::new(trace.processors());
                let result = run_sharded(&trace, &config, &mut sink, None).unwrap();
                let schedule = sink.into_schedule();
                prop_assert_eq!(result.placed, trace.len(), "{} shards", shards);
                prop_assert_eq!(result.invariant_violations, 0);
                let issues = crate::validate_against_trace(&trace, &schedule);
                prop_assert!(issues.is_empty(), "{} shards: {:?}", shards, issues);
                prop_assert!(
                    result.makespan >= floor - 1e-9,
                    "{} shards beat the lower bound: {} < {}",
                    shards,
                    result.makespan,
                    floor
                );
                if shards == 1 {
                    prop_assert_eq!(&schedule, &legacy.schedule);
                    prop_assert_eq!(result.makespan, legacy.makespan);
                }
            }
        }
    }

    #[test]
    fn sharded_configs_are_validated() {
        let trace = trace(10, 4, 1);
        let mut sink = NullSink;
        for config in [
            ShardedConfig::new(0, 1.0, mrt()),
            ShardedConfig::new(5, 1.0, mrt()),
            ShardedConfig::new(2, 0.0, mrt()),
            ShardedConfig::new(2, 1.0, mrt()).with_batch(0),
        ] {
            assert!(
                run_sharded(&trace, &config, &mut sink, None).is_err(),
                "{config:?}"
            );
        }
        // Departures are out of scope for the partitioned path.
        let departing = trace
            .clone()
            .with_departures(workload::DeparturePolicy::Patience { mean: 5.0 }, 1)
            .unwrap();
        assert!(run_sharded(
            &departing,
            &ShardedConfig::new(2, 1.0, mrt()),
            &mut sink,
            None
        )
        .is_err());
    }
}
