//! Telemetry surfacing for engine runs: the time-weighted utilisation
//! timeline and the summary the CLI table and the `online_report` bench
//! section are both built from.
//!
//! The raw signals are recorded by the engine (see [`crate::run_recorded`])
//! into a [`CollectingRecorder`]; this module turns them into one
//! [`RunTelemetry`] value so every surface — CLI text table, CLI JSON,
//! `BENCH_7.json` — reports identical numbers.

use ::telemetry::{names, CollectingRecorder};
use malleable_core::Schedule;
use serde_json::{json, Value};

use crate::engine::OnlineResult;

/// Mean busy fraction over one interval of the horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSample {
    /// Interval start (simulated time).
    pub start: f64,
    /// Interval end (simulated time); the last interval is clipped to the
    /// makespan.
    pub end: f64,
    /// Integral of busy processors over the interval divided by
    /// `m · (end - start)` — in `[0, 1]`.
    pub busy: f64,
}

/// The time-weighted utilisation timeline of a schedule: the horizon
/// `[0, makespan]` cut on a `period` grid, each interval reporting the exact
/// integral of busy processors (allotments are piecewise constant, so the
/// clipped-segment sum is exact, not sampled).  Empty when the schedule is
/// empty or `period` is not a positive finite number.
pub fn utilization_timeline(schedule: &Schedule, period: f64) -> Vec<UtilizationSample> {
    let horizon = schedule.makespan();
    // `!(… > 0.0)` deliberately sends a NaN horizon/period to the empty case.
    if !(horizon > 0.0 && period.is_finite() && period > 0.0) {
        return Vec::new();
    }
    let m = schedule.processors() as f64;
    let bins = (horizon / period).ceil() as usize;
    let mut busy = vec![0.0f64; bins];
    for entry in schedule.entries() {
        let finish = entry.finish();
        let width = entry.processors.count as f64;
        let first_bin = (entry.start / period).floor() as usize;
        let last_bin = (((finish / period).ceil() as usize).max(first_bin + 1) - 1).min(bins - 1);
        for (bin, slot) in busy
            .iter_mut()
            .enumerate()
            .take(last_bin + 1)
            .skip(first_bin)
        {
            let lo = entry.start.max(bin as f64 * period);
            let hi = finish.min((bin + 1) as f64 * period);
            if hi > lo {
                *slot += width * (hi - lo);
            }
        }
    }
    busy.iter()
        .enumerate()
        .map(|(bin, &integral)| {
            let start = bin as f64 * period;
            let end = ((bin + 1) as f64 * period).min(horizon);
            UtilizationSample {
                start,
                end,
                busy: if end > start {
                    (integral / (m * (end - start))).clamp(0.0, 1.0)
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// Percentile triple of one latency histogram, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyPercentiles {
    /// Samples recorded.
    pub count: u64,
    /// Median, at bucket resolution.
    pub p50_ns: u64,
    /// 90th percentile, at bucket resolution.
    pub p90_ns: u64,
    /// 99th percentile, at bucket resolution.
    pub p99_ns: u64,
    /// Exact maximum.
    pub max_ns: u64,
}

fn percentiles(recorder: &CollectingRecorder, name: &str) -> LatencyPercentiles {
    match recorder.histogram(name) {
        Some(hist) => LatencyPercentiles {
            count: hist.count(),
            p50_ns: hist.p50(),
            p90_ns: hist.p90(),
            p99_ns: hist.p99(),
            max_ns: hist.max(),
        },
        None => LatencyPercentiles::default(),
    }
}

/// Everything the telemetry surfaces report about one recorded engine run.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Per-event-loop-iteration decision latency.
    pub decision: LatencyPercentiles,
    /// Per-epoch solve span latency.
    pub solve: LatencyPercentiles,
    /// Oracle probes per epoch solve (p50/p99 in probe counts, not ns).
    pub probes: LatencyPercentiles,
    /// Commitments placed on the timeline.
    pub placements: u64,
    /// Placements that landed before the latest committed start (backfills).
    pub backfills: u64,
    /// Queued commitments revoked (preemption and departures).
    pub revocations: u64,
    /// Running commitments truncated for re-allotment.
    pub truncations: u64,
    /// Wall nanoseconds of the whole engine run.
    pub run_ns: u64,
    /// Placements per wall second — the throughput figure of the ROADMAP's
    /// scale item.
    pub tasks_per_sec: f64,
    /// Invariant violations recorded (events or counter; CI gates on 0).
    pub invariant_violations: u64,
    /// Time-weighted utilisation against the capacity that actually existed
    /// (busy-processor integral / online-capacity integral; see
    /// [`OnlineResult::time_weighted_utilization`]).
    pub utilization: f64,
    /// The historical figure: busy integral over `m · makespan` as if every
    /// processor had stayed online ([`OnlineResult::nominal_utilization`]).
    pub nominal_utilization: f64,
    /// Fraction of executed processor-time that landed in completed tasks
    /// ([`OnlineResult::goodput_fraction`]; 1.0 in a fault-free run).
    pub goodput: f64,
    /// Processor-time burned by failed attempts and abandoned tasks.
    pub wasted_integral: f64,
    /// Processor crashes applied during the run.
    pub processor_downs: u64,
    /// Injected task-attempt failures.
    pub task_failures: u64,
    /// Retries scheduled for failed attempts.
    pub retries_scheduled: u64,
    /// Tasks abandoned after exhausting their retry budget.
    pub retries_exhausted: u64,
    /// Epoch solves degraded from the primary to the fallback solver.
    pub solver_degraded: u64,
    /// Per-epoch utilisation timeline.
    pub utilization_timeline: Vec<UtilizationSample>,
}

/// Build the [`RunTelemetry`] summary of a recorded run.  `period` cuts the
/// utilisation timeline; pass the policy's epoch (the CLI and bench use
/// [`crate::OnlinePolicy::epoch`], falling back to the makespan for
/// epoch-free policies).
pub fn summarize(
    recorder: &CollectingRecorder,
    result: &OnlineResult,
    period: Option<f64>,
) -> RunTelemetry {
    let placements = recorder.counter(names::PLACEMENTS);
    let run_ns = recorder.counter(names::RUN_NS);
    let period = period.unwrap_or_else(|| result.schedule.makespan());
    RunTelemetry {
        decision: percentiles(recorder, names::DECISION_NS),
        solve: percentiles(recorder, names::SOLVE_NS),
        probes: percentiles(recorder, names::SOLVE_PROBES),
        placements,
        backfills: recorder.counter(names::BACKFILLS),
        revocations: recorder.counter(names::REVOCATIONS),
        truncations: recorder.counter(names::TRUNCATIONS),
        run_ns,
        tasks_per_sec: if run_ns > 0 {
            placements as f64 / (run_ns as f64 / 1e9)
        } else {
            0.0
        },
        invariant_violations: recorder.invariant_violations(),
        utilization: result.time_weighted_utilization(),
        nominal_utilization: result.nominal_utilization(),
        goodput: result.goodput_fraction(),
        wasted_integral: result.wasted_integral,
        processor_downs: recorder.counter(names::PROCESSOR_DOWNS),
        task_failures: recorder.counter(names::TASK_FAILURES),
        retries_scheduled: recorder.counter(names::RETRIES_SCHEDULED),
        retries_exhausted: recorder.counter(names::RETRIES_EXHAUSTED),
        solver_degraded: recorder.counter(names::SOLVER_DEGRADED),
        utilization_timeline: utilization_timeline(&result.schedule, period),
    }
}

impl RunTelemetry {
    /// JSON form — the `telemetry` object of the CLI `--json` output and of
    /// the `online_report` bench document.
    pub fn to_json(&self) -> Value {
        let timeline: Vec<Value> = self
            .utilization_timeline
            .iter()
            .map(|s| json!({ "start": s.start, "end": s.end, "busy": s.busy }))
            .collect();
        json!({
            "decision_latency_ns": json!({
                "count": self.decision.count,
                "p50": self.decision.p50_ns,
                "p90": self.decision.p90_ns,
                "p99": self.decision.p99_ns,
                "max": self.decision.max_ns,
            }),
            "solve_latency_ns": json!({
                "count": self.solve.count,
                "p50": self.solve.p50_ns,
                "p90": self.solve.p90_ns,
                "p99": self.solve.p99_ns,
                "max": self.solve.max_ns,
            }),
            "solve_probes": json!({
                "count": self.probes.count,
                "p50": self.probes.p50_ns,
                "p99": self.probes.p99_ns,
            }),
            "placements": self.placements,
            "backfills": self.backfills,
            "revocations": self.revocations,
            "truncations": self.truncations,
            "run_ns": self.run_ns,
            "tasks_per_sec": self.tasks_per_sec,
            "invariant_violations": self.invariant_violations,
            "time_weighted_utilization": self.utilization,
            "nominal_utilization": self.nominal_utilization,
            "goodput": self.goodput,
            "wasted_integral": self.wasted_integral,
            "processor_downs": self.processor_downs,
            "task_failures": self.task_failures,
            "retries_scheduled": self.retries_scheduled,
            "retries_exhausted": self.retries_exhausted,
            "solver_degraded": self.solver_degraded,
            "utilization_timeline": Value::Array(timeline),
        })
    }

    /// The human-readable summary table of the CLI `--telemetry` flag: one
    /// aligned `name  value` pair per line.
    pub fn render_table(&self) -> Vec<String> {
        fn ns(v: u64) -> String {
            if v >= 10_000_000 {
                format!("{:.1} ms", v as f64 / 1e6)
            } else if v >= 10_000 {
                format!("{:.1} µs", v as f64 / 1e3)
            } else {
                format!("{v} ns")
            }
        }
        let mut lines = vec![
            format!(
                "decision latency   p50 {:>10}   p90 {:>10}   p99 {:>10}   ({} events)",
                ns(self.decision.p50_ns),
                ns(self.decision.p90_ns),
                ns(self.decision.p99_ns),
                self.decision.count
            ),
            format!(
                "epoch solve        p50 {:>10}   p90 {:>10}   p99 {:>10}   ({} solves)",
                ns(self.solve.p50_ns),
                ns(self.solve.p90_ns),
                ns(self.solve.p99_ns),
                self.solve.count
            ),
            format!(
                "probes per solve   p50 {:>10}   p99 {:>10}",
                self.probes.p50_ns, self.probes.p99_ns
            ),
            format!(
                "tasks/sec placed   {:.0}   ({} placements, {} backfills, run {})",
                self.tasks_per_sec,
                self.placements,
                self.backfills,
                ns(self.run_ns)
            ),
            format!(
                "preemption         {} revocations, {} truncations",
                self.revocations, self.truncations
            ),
            format!(
                "utilisation        {:.3} time-weighted over online capacity ({:.3} nominal)",
                self.utilization, self.nominal_utilization
            ),
        ];
        let faulted = self.processor_downs + self.task_failures + self.solver_degraded > 0;
        if faulted || self.wasted_integral > 0.0 {
            lines.push(format!(
                "faults             {} crashes, {} task failures, {} retries, {} abandoned, \
                 {} degraded solves",
                self.processor_downs,
                self.task_failures,
                self.retries_scheduled,
                self.retries_exhausted,
                self.solver_degraded
            ));
            lines.push(format!(
                "goodput            {:.3} of executed processor-time ({:.3} wasted)",
                self.goodput, self.wasted_integral
            ));
        }
        if !self.utilization_timeline.is_empty() {
            let spark: String = self
                .utilization_timeline
                .iter()
                .map(|s| {
                    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                    LEVELS[((s.busy * 7.0).round() as usize).min(7)]
                })
                .collect();
            lines.push(format!(
                "utilisation/epoch  {spark}  ({} epochs)",
                self.utilization_timeline.len()
            ));
        }
        if self.invariant_violations > 0 {
            lines.push(format!(
                "INVARIANT VIOLATIONS: {}",
                self.invariant_violations
            ));
        }
        lines
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use malleable_core::{ProcessorRange, ScheduledTask};

    fn two_task_schedule() -> Schedule {
        let mut schedule = Schedule::new(2);
        // Processor 0 busy over [0, 2), both processors over [2, 3).
        schedule.push(ScheduledTask {
            task: 0,
            start: 0.0,
            duration: 2.0,
            processors: ProcessorRange::new(0, 1),
        });
        schedule.push(ScheduledTask {
            task: 1,
            start: 2.0,
            duration: 1.0,
            processors: ProcessorRange::new(0, 2),
        });
        schedule
    }

    #[test]
    fn timeline_integrates_clipped_segments_exactly() {
        let samples = utilization_timeline(&two_task_schedule(), 1.0);
        assert_eq!(samples.len(), 3);
        assert!((samples[0].busy - 0.5).abs() < 1e-12);
        assert!((samples[1].busy - 0.5).abs() < 1e-12);
        assert!((samples[2].busy - 1.0).abs() < 1e-12);
        // The weighted mean of the timeline equals the whole-horizon figure.
        let weighted: f64 = samples
            .iter()
            .map(|s| s.busy * (s.end - s.start))
            .sum::<f64>()
            / samples.last().unwrap().end;
        assert!((weighted - two_task_schedule().utilization()).abs() < 1e-12);
    }

    #[test]
    fn timeline_handles_period_larger_than_horizon() {
        let samples = utilization_timeline(&two_task_schedule(), 10.0);
        assert_eq!(samples.len(), 1);
        assert!((samples[0].end - 3.0).abs() < 1e-12);
        assert!((samples[0].busy - two_task_schedule().utilization()).abs() < 1e-12);
    }

    #[test]
    fn empty_schedule_has_no_timeline() {
        assert!(utilization_timeline(&Schedule::new(2), 1.0).is_empty());
    }
}
