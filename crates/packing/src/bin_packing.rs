//! One-dimensional bin packing heuristics.
//!
//! Bins have a fixed real capacity and items have real sizes.  The scheduling
//! layer uses a bin for "one processor over the length of a shelf" and an item
//! for "one small sequential task", following §4.1 of the paper where the set
//! `T₃` of tasks with canonical execution time at most `ω/2` is packed onto
//! the shelves with the First Fit algorithm of Johnson, Demers, Ullman, Garey
//! and Graham.

/// Result of a one-dimensional bin packing.
#[derive(Debug, Clone, PartialEq)]
pub struct BinPacking {
    /// `assignment[i]` is the bin index the `i`-th item was placed into.
    pub assignment: Vec<usize>,
    /// Remaining free capacity of every opened bin.
    pub residual: Vec<f64>,
    /// Capacity every bin started with.
    pub capacity: f64,
}

impl BinPacking {
    /// Number of bins opened by the packing.
    pub fn bins(&self) -> usize {
        self.residual.len()
    }

    /// Total size packed across all bins.
    pub fn packed_volume(&self) -> f64 {
        self.bins() as f64 * self.capacity - self.residual.iter().sum::<f64>()
    }

    /// Items assigned to the given bin, in placement order.
    pub fn items_in_bin(&self, bin: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| (b == bin).then_some(i))
            .collect()
    }

    /// Verify that no bin is over-full with respect to the item sizes.
    pub fn is_valid(&self, sizes: &[f64]) -> bool {
        if self.assignment.len() != sizes.len() {
            return false;
        }
        let mut load = vec![0.0f64; self.bins()];
        for (i, &b) in self.assignment.iter().enumerate() {
            if b >= load.len() {
                return false;
            }
            load[b] += sizes[i];
        }
        load.iter().all(|&l| l <= self.capacity + 1e-9)
    }
}

fn pack_with<F>(sizes: &[f64], capacity: f64, mut choose: F) -> BinPacking
where
    F: FnMut(&[f64], f64) -> Option<usize>,
{
    assert!(capacity > 0.0, "bin capacity must be positive");
    let mut residual: Vec<f64> = Vec::new();
    let mut assignment = Vec::with_capacity(sizes.len());
    for &size in sizes {
        assert!(
            size <= capacity + 1e-9,
            "item of size {size} exceeds bin capacity {capacity}"
        );
        let bin = match choose(&residual, size) {
            Some(b) => b,
            None => {
                residual.push(capacity);
                residual.len() - 1
            }
        };
        residual[bin] -= size;
        // Guard against tiny negative drift from floating point.
        if residual[bin] < 0.0 {
            residual[bin] = 0.0;
        }
        assignment.push(bin);
    }
    BinPacking {
        assignment,
        residual,
        capacity,
    }
}

/// First Fit: place each item into the lowest-indexed bin it fits in, opening
/// a new bin only when none fits.
pub fn first_fit(sizes: &[f64], capacity: f64) -> BinPacking {
    let mut assignment = Vec::with_capacity(sizes.len());
    let mut residual = Vec::new();
    first_fit_into(sizes, capacity, &mut assignment, &mut residual);
    BinPacking {
        assignment,
        residual,
        capacity,
    }
}

/// Allocation-free First Fit: same placement rule as [`first_fit`] (which
/// delegates here), but the per-item bin assignment and the per-bin residual
/// capacities are written into caller-provided buffers (cleared first), so
/// repeated packings — one per oracle probe in the scheduling layer — reuse
/// the same heap storage.  Returns the number of bins opened.
pub fn first_fit_into(
    sizes: &[f64],
    capacity: f64,
    assignment: &mut Vec<usize>,
    residual: &mut Vec<f64>,
) -> usize {
    assert!(capacity > 0.0, "bin capacity must be positive");
    assignment.clear();
    residual.clear();
    for &size in sizes {
        assert!(
            size <= capacity + 1e-9,
            "item of size {size} exceeds bin capacity {capacity}"
        );
        let bin = match residual.iter().position(|&r| r >= size - 1e-9) {
            Some(b) => b,
            None => {
                residual.push(capacity);
                residual.len() - 1
            }
        };
        residual[bin] -= size;
        // Guard against tiny negative drift from floating point.
        if residual[bin] < 0.0 {
            residual[bin] = 0.0;
        }
        assignment.push(bin);
    }
    residual.len()
}

/// First Fit Decreasing: sort items by decreasing size, then apply First Fit.
///
/// The returned assignment is indexed by the *original* item order.
pub fn first_fit_decreasing(sizes: &[f64], capacity: f64) -> BinPacking {
    let mut order: Vec<usize> = (0..sizes.len()).collect();
    order.sort_by(|&a, &b| sizes[b].partial_cmp(&sizes[a]).unwrap());
    let sorted: Vec<f64> = order.iter().map(|&i| sizes[i]).collect();
    let packed = first_fit(&sorted, capacity);
    let mut assignment = vec![0usize; sizes.len()];
    for (pos, &orig) in order.iter().enumerate() {
        assignment[orig] = packed.assignment[pos];
    }
    BinPacking {
        assignment,
        residual: packed.residual,
        capacity,
    }
}

/// Best Fit: place each item into the feasible bin with the least residual
/// capacity, opening a new bin only when none fits.
pub fn best_fit(sizes: &[f64], capacity: f64) -> BinPacking {
    pack_with(sizes, capacity, |residual, size| {
        residual
            .iter()
            .enumerate()
            .filter(|(_, &r)| r >= size - 1e-9)
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
    })
}

/// Next Fit: keep a single open bin; when the item does not fit, close it and
/// open a new one.
pub fn next_fit(sizes: &[f64], capacity: f64) -> BinPacking {
    let mut last_open: Option<usize> = None;
    pack_with(sizes, capacity, move |residual, size| {
        match last_open {
            Some(b) if residual[b] >= size - 1e-9 => Some(b),
            _ => {
                // A new bin will be opened by the caller; remember its index.
                last_open = Some(residual.len());
                None
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn first_fit_reuses_bins() {
        let packed = first_fit(&[0.6, 0.5, 0.4, 0.3], 1.0);
        // 0.6 -> bin0, 0.5 -> bin1, 0.4 -> bin0, 0.3 -> bin1
        assert_eq!(packed.assignment, vec![0, 1, 0, 1]);
        assert_eq!(packed.bins(), 2);
        assert!(packed.is_valid(&[0.6, 0.5, 0.4, 0.3]));
    }

    #[test]
    fn first_fit_into_matches_first_fit() {
        let sizes = [0.6, 0.5, 0.4, 0.3, 0.9, 0.1];
        let packed = first_fit(&sizes, 1.0);
        let mut assignment = Vec::new();
        let mut residual = Vec::new();
        let bins = first_fit_into(&sizes, 1.0, &mut assignment, &mut residual);
        assert_eq!(bins, packed.bins());
        assert_eq!(assignment, packed.assignment);
        assert_eq!(residual, packed.residual);
        // Buffers are reusable: a second run on different input clears them.
        let bins = first_fit_into(&[0.2, 0.2], 1.0, &mut assignment, &mut residual);
        assert_eq!(bins, 1);
        assert_eq!(assignment, vec![0, 0]);
    }

    #[test]
    fn ffd_never_uses_more_bins_than_ff_here() {
        let sizes = [0.2, 0.8, 0.5, 0.5, 0.7, 0.3];
        let ff = first_fit(&sizes, 1.0);
        let ffd = first_fit_decreasing(&sizes, 1.0);
        assert!(ffd.bins() <= ff.bins());
        assert!(ffd.is_valid(&sizes));
    }

    #[test]
    fn best_fit_prefers_tight_bin() {
        // bins after two items: residuals 0.4 (bin0), 0.7 (bin1).
        // Best fit puts 0.4 into bin0, first fit would too; 0.65 must open bin2
        // for FF but fits bin1 for both.  Use a case where they differ:
        let sizes = [0.6, 0.3, 0.35];
        let bf = best_fit(&sizes, 1.0);
        // 0.6 -> bin0 (res 0.4); 0.3 -> bin0 (res 0.1, tighter than nothing);
        // 0.35 -> new bin.
        assert_eq!(bf.assignment, vec![0, 0, 1]);
    }

    #[test]
    fn next_fit_does_not_look_back() {
        let sizes = [0.6, 0.6, 0.1];
        let nf = next_fit(&sizes, 1.0);
        // 0.6 -> bin0; 0.6 does not fit -> bin1; 0.1 fits the open bin1.
        assert_eq!(nf.assignment, vec![0, 1, 1]);
        let ff = first_fit(&sizes, 1.0);
        // FF would have put 0.1 back into bin0 — same bin count, different shape.
        assert_eq!(ff.assignment, vec![0, 1, 0]);
    }

    #[test]
    fn empty_input_opens_no_bins() {
        for pack in [
            first_fit(&[], 1.0),
            first_fit_decreasing(&[], 1.0),
            best_fit(&[], 1.0),
            next_fit(&[], 1.0),
        ] {
            assert_eq!(pack.bins(), 0);
            assert!(pack.is_valid(&[]));
        }
    }

    #[test]
    #[should_panic(expected = "exceeds bin capacity")]
    fn oversized_item_panics() {
        first_fit(&[1.5], 1.0);
    }

    #[test]
    fn packed_volume_matches_total_size() {
        let sizes = [0.2, 0.3, 0.4, 0.25];
        let packed = first_fit(&sizes, 0.5);
        let total: f64 = sizes.iter().sum();
        assert!((packed.packed_volume() - total).abs() < 1e-9);
    }

    /// The property the paper relies on (§4.1): when First Fit opens more than
    /// one bin, the total packed size is larger than half of `capacity · bins`.
    #[test]
    fn first_fit_half_full_property_example() {
        let sizes = [0.51, 0.51, 0.51, 0.2, 0.2];
        let packed = first_fit(&sizes, 1.0);
        assert!(packed.bins() > 1);
        let total: f64 = sizes.iter().sum();
        assert!(total > 0.5 * packed.capacity * packed.bins() as f64);
    }

    proptest! {
        #[test]
        fn all_heuristics_produce_valid_packings(
            sizes in prop::collection::vec(0.01f64..1.0, 0..40),
        ) {
            for pack in [
                first_fit(&sizes, 1.0),
                first_fit_decreasing(&sizes, 1.0),
                best_fit(&sizes, 1.0),
                next_fit(&sizes, 1.0),
            ] {
                prop_assert!(pack.is_valid(&sizes));
                prop_assert_eq!(pack.assignment.len(), sizes.len());
            }
        }

        /// First Fit never opens a bin while an earlier one could host the item,
        /// which implies the classical "at most one bin at most half full" bound:
        /// bins ≤ ceil(2 * total / capacity) when bins > 1 is replaced by the
        /// volume property used in the paper.
        #[test]
        fn first_fit_volume_property(
            sizes in prop::collection::vec(0.01f64..1.0, 1..40),
        ) {
            let packed = first_fit(&sizes, 1.0);
            let total: f64 = sizes.iter().sum();
            if packed.bins() > 1 {
                prop_assert!(
                    total > 0.5 * packed.bins() as f64 - 1e-9,
                    "total {} bins {}", total, packed.bins()
                );
            }
        }

        /// FFD is never worse than twice the volume lower bound.
        #[test]
        fn ffd_close_to_volume_bound(
            sizes in prop::collection::vec(0.01f64..1.0, 1..40),
        ) {
            let packed = first_fit_decreasing(&sizes, 1.0);
            let total: f64 = sizes.iter().sum();
            let lb = total.ceil().max(1.0);
            prop_assert!(packed.bins() as f64 <= 2.0 * lb + 1.0);
        }
    }
}
