//! # packing
//!
//! Packing substrates for the malleable-task scheduling algorithms of
//! Mounié, Rapine and Trystram (SPAA 1999) and for the baselines they are
//! compared against.
//!
//! The paper reduces the *non-malleable* scheduling problem (fixed allotment,
//! makespan objective) to two-dimensional strip packing, and repeatedly uses
//! three simpler packing building blocks:
//!
//! * **One-dimensional bin packing** ([`bin_packing`]): the "small" sequential
//!   tasks of the two-shelf construction (canonical time ≤ ω/2) are packed on
//!   individual processors with the First Fit algorithm of Johnson et al.
//!   The paper only needs the elementary property that when First Fit opens
//!   more than one bin, the packed volume exceeds half of the opened capacity;
//!   that property is exposed and tested here.
//! * **Contiguous processor timelines** ([`timeline`]): the list scheduling
//!   algorithms of §3 allocate each task to *contiguous* processors (the
//!   paper's footnote 2) at the earliest time a wide-enough window of
//!   processors is simultaneously free, with a leftmost/rightmost tie-breaking
//!   rule.  [`timeline::ProcessorTimeline`] implements exactly that model.
//! * **Level-based strip packing** ([`strip`]): the Turek/Wolf/Yu and Ludwig
//!   baselines schedule a fixed allotment with a strip-packing heuristic.  We
//!   provide Next-Fit-Decreasing-Height and First-Fit-Decreasing-Height level
//!   algorithms (Coffman–Garey–Johnson–Tarjan), which are the classical
//!   practical stand-ins for Steinberg's absolute 2-approximation used by
//!   Ludwig.  The substitution is documented in `DESIGN.md`.
//! * **Interval reservations** ([`reservations`]): the online engine's
//!   resource model — per-processor sorted busy/free interval sets with
//!   duration-aware contiguous-window queries inside holes, revocable
//!   reservation handles (cancel/truncate), and a frontier-compatible mode
//!   that reproduces [`timeline::ProcessorTimeline`] exactly for the offline
//!   list algorithms.
//!
//! The crate is deliberately independent of the task model: it works on plain
//! numbers (`f64` sizes/heights, `usize` widths) so it can be reused and
//! tested in isolation.

#![warn(missing_docs)]

pub mod bin_packing;
pub mod rect;
pub mod reservations;
pub mod shelf;
pub mod strip;
pub mod timeline;

pub use bin_packing::{best_fit, first_fit, first_fit_decreasing, next_fit, BinPacking};
pub use rect::Rect;
pub use reservations::{HolePolicy, ReservationId, ReservationTimeline, TimelineStats};
pub use shelf::Shelf;
pub use strip::{ffdh, nfdh, Placement, StripPacking};
pub use timeline::ProcessorTimeline;
