//! Rectangles for strip packing.

/// A rectangle to be placed in a strip of integer width.
///
/// In the scheduling application the width is a number of processors (an
/// integer) and the height is an execution time (a real).  This is precisely
/// the correspondence the paper uses when it observes that the non-malleable
/// scheduling problem "is identical to a 2-dimensional strip-packing problem".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Width in discrete columns (processors). Must be at least 1.
    pub width: usize,
    /// Height in continuous units (time). Must be non-negative.
    pub height: f64,
}

impl Rect {
    /// Create a new rectangle, validating its dimensions.
    pub fn new(width: usize, height: f64) -> Self {
        assert!(width >= 1, "rectangle width must be at least 1");
        assert!(
            height >= 0.0 && height.is_finite(),
            "rectangle height must be a finite non-negative number"
        );
        Rect { width, height }
    }

    /// Area of the rectangle (processors × time = work).
    pub fn area(&self) -> f64 {
        self.width as f64 * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_is_width_times_height() {
        let r = Rect::new(4, 2.5);
        assert!((r.area() - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width must be at least 1")]
    fn zero_width_rejected() {
        Rect::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn negative_height_rejected() {
        Rect::new(1, -1.0);
    }
}
